#!/usr/bin/env python
"""The paper's motivating measurement: why edge caching is slow.

Reproduces Table I — DNS resolution latency, RTT, and hop count to
Akamai cache servers from Michigan, Tokyo, and São Paulo — using the
simulated global topology, then prints the paper's takeaways.

Run:  python examples/akamai_study.py
"""

from repro.measurement.akamai import PAPER_TABLE1, AkamaiStudy


def main() -> None:
    study = AkamaiStudy()
    results = study.measure(runs=50)

    print(f"{'location':10s} {'service':10s} "
          f"{'DNS ms':>8s} {'paper':>6s} "
          f"{'RTT ms':>8s} {'paper':>6s} {'hops':>5s} {'paper':>6s}")
    for cell in results:
        paper_dns, paper_rtt, paper_hops = PAPER_TABLE1[
            (cell.site, cell.service)]
        print(f"{cell.site:10s} {cell.service:10s} "
              f"{cell.dns_ms:8.1f} {paper_dns:6.0f} "
              f"{cell.rtt_ms:8.1f} {paper_rtt:6.0f} "
              f"{cell.hops:5d} {paper_hops:6d}")

    regular = [cell for cell in results
               if not (cell.site == "SaoPaulo" and
                       cell.service == "yahoo")]
    mean_dns = sum(c.dns_ms for c in regular) / len(regular)
    mean_rtt = sum(c.rtt_ms for c in regular) / len(regular)
    print("\ntakeaways (paper Section II-B):")
    print(f"  1. locating the cache server costs ~{mean_dns:.0f} ms of "
          "DNS resolution")
    print(f"  2. the 'nearby' cache server is ~{mean_rtt:.0f} ms RTT / "
          "~12 hops away")
    print("  3. coverage is not universal: Yahoo users in Sao Paulo "
          "fall back to a distant origin "
          f"({PAPER_TABLE1[('SaoPaulo', 'yahoo')][1]:.0f} ms RTT)")
    print("\n=> a WiFi AP one hop (~2 ms) away can do much better, "
          "which is exactly APE-CACHE's premise.")


if __name__ == "__main__":
    main()
