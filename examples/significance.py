#!/usr/bin/env python
"""Is the headline claim statistically solid? Multi-seed replication.

Re-runs the workload at several seeds per system and puts confidence
intervals on the latency differences — APE-CACHE vs each baseline —
using paired per-seed comparisons.

Run:  python examples/significance.py
"""

from repro.analysis import paired_comparison, replicate
from repro.apps import DummyAppParams, WorkloadConfig
from repro.baselines import (
    ApeCacheLruSystem,
    ApeCacheSystem,
    EdgeCacheSystem,
    WiCacheSystem,
)
from repro.sim import MINUTE
from repro.testbed import TestbedConfig

SEEDS = (0, 1, 2, 3, 4)
METRIC = "mean_app_latency_ms"


def config():
    # 28 apps put the 5 MB AP cache under pressure (the regime where
    # PACM and LRU diverge — see Table VI's knee past ~15 apps).
    return WorkloadConfig(n_apps=28, duration_s=4 * MINUTE,
                          dummy_params=DummyAppParams(),
                          testbed=TestbedConfig())


def main() -> None:
    print(f"replicating across seeds {SEEDS}...\n")
    print(f"{'system':15s} {METRIC}")
    results = {}
    for factory in (ApeCacheSystem, ApeCacheLruSystem, WiCacheSystem,
                    EdgeCacheSystem):
        result = replicate(factory, config(), seeds=SEEDS)
        results[result.system_name] = result
        print(f"{result.system_name:15s} {result.summary(METRIC)}")

    ape = results["APE-CACHE"].samples[METRIC]
    print("\npaired differences (negative = APE-CACHE faster):")
    for rival in ("APE-CACHE-LRU", "Wi-Cache", "Edge Cache"):
        comparison = paired_comparison(ape, results[rival].samples[METRIC])
        print(f"  vs {rival:15s} {comparison}")


if __name__ == "__main__":
    main()
