#!/usr/bin/env python
"""MovieTrailer under all four caching systems (the paper's Fig. 12).

Runs the paper's motivating app — movie id lookup, then four concurrent
detail fetches — repeatedly under APE-CACHE, APE-CACHE-LRU, Wi-Cache,
and Edge Cache, printing mean and tail app-level latency per system.

Run:  python examples/movie_trailer_demo.py
"""

from repro.apps import AppRunner, movietrailer_app
from repro.baselines import all_systems
from repro.sim import percentile
from repro.testbed import Testbed, TestbedConfig

EXECUTIONS = 40


def run_system(system) -> list[float]:
    bed = Testbed(TestbedConfig(seed=7))
    system.install(bed)
    app = movietrailer_app()
    phone = bed.add_client("phone")
    fetcher = system.new_fetcher(bed, phone, app.app_id)
    for obj in app.objects:
        bed.host_object(obj.url, obj.size_bytes,
                        origin_delay_s=obj.origin_delay_s)
    runner = AppRunner(bed.sim, app, fetcher)

    latencies = []
    for index in range(EXECUTIONS):
        execution = bed.sim.run(until=bed.sim.process(runner.execute()))
        latencies.append(execution.latency_s * 1e3)
        # Users re-open the app every ~20 s; client DNS state ages out.
        bed.sim.run(until=bed.sim.now + 20.0)
    return latencies


def main() -> None:
    print(f"MovieTrailer, {EXECUTIONS} executions per system "
          "(first execution is the cold start)\n")
    print(f"{'system':15s} {'cold_ms':>8s} {'mean_ms':>8s} "
          f"{'p95_ms':>8s}")
    results = {}
    for system in all_systems():
        latencies = run_system(system)
        results[system.name] = latencies
        warm = latencies[1:]
        print(f"{system.name:15s} {latencies[0]:8.1f} "
              f"{sum(warm) / len(warm):8.1f} "
              f"{percentile(warm, 95):8.1f}")

    ape = results["APE-CACHE"][1:]
    edge = results["Edge Cache"][1:]
    reduction = 100 * (1 - (sum(ape) / len(ape)) /
                       (sum(edge) / len(edge)))
    print(f"\nAPE-CACHE cuts MovieTrailer's mean latency by "
          f"{reduction:.0f}% vs Edge Cache (paper: ~78%)")


if __name__ == "__main__":
    main()
