#!/usr/bin/env python
"""Extending APE-CACHE: plug a custom eviction policy into the AP.

The AP runtime accepts any :class:`~repro.cache.EvictionPolicy`.  This
example implements a size-aware "greedy dual" style policy, runs the
30-app workload under PACM, LRU, and the custom policy, and compares
hit ratios and app latency — a template for cache-management research
on top of this codebase.

Run:  python examples/custom_policy.py
"""

from repro.apps import Workload, WorkloadConfig
from repro.baselines import ApeCacheSystem
from repro.cache import CacheEntry, CacheStore
from repro.cache.policies import _RankedPolicy
from repro.core import ApeCacheConfig
from repro.sim import MINUTE
from repro.testbed import TestbedConfig


class GreedyDualPolicy(_RankedPolicy):
    """Retain objects by (latency saved x priority) per byte, aged.

    A simplified GreedyDual-Size: the retention score is the classic
    cost/size ratio, with recency as the aging term.
    """

    def score(self, entry: CacheEntry, now: float) -> float:
        cost = entry.fetch_latency_s * entry.priority
        age = now - entry.last_access
        return cost / max(entry.size_bytes, 1) - 1e-9 * age


class CustomPolicySystem(ApeCacheSystem):
    name = "APE-CACHE-GreedyDual"

    def _make_policy(self, runtime):
        return GreedyDualPolicy()


def main() -> None:
    config = WorkloadConfig(n_apps=30, duration_s=6 * MINUTE, seed=3,
                            testbed=TestbedConfig(seed=3))
    print(f"{'policy':25s} {'hit':>6s} {'hit_hi':>7s} "
          f"{'app_ms':>8s}")
    from repro.baselines import ApeCacheLruSystem
    for system in (ApeCacheSystem(ApeCacheConfig()),
                   ApeCacheLruSystem(),
                   CustomPolicySystem()):
        result = Workload(config).run(system)
        print(f"{system.name:25s} {result.hit_ratio():6.3f} "
              f"{result.hit_ratio(only_high_priority=True):7.3f} "
              f"{result.mean_app_latency_s() * 1e3:8.1f}")
    print("\nswap in your own EvictionPolicy subclass to join the race.")


def _check_store_api() -> None:
    """The policy interface in one paragraph (doc smoke test)."""
    assert hasattr(CacheStore, "admit")


if __name__ == "__main__":
    _check_store_api()
    main()
