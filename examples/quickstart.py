#!/usr/bin/env python
"""Quickstart: cache one app's objects on a simulated WiFi AP.

Builds the paper's testbed, installs APE-CACHE on the AP, declares two
cacheable objects with the annotation model, and fetches them twice —
showing the cold delegation, the warm millisecond-level hit, and the
dummy-IP DNS short circuit.

Run:  python examples/quickstart.py
"""

from repro.core import (
    ApRuntime,
    CacheableSpec,
    ClientRuntime,
    HIGH_PRIORITY,
    LOW_PRIORITY,
    cacheable,
    scan_cacheables,
)
from repro.testbed import Testbed, TestbedConfig


class WeatherApi:
    """App-side declarations: the only APE-CACHE integration needed."""

    current = cacheable("http://api.weather.example/current",
                        priority=HIGH_PRIORITY, ttl_minutes=10)
    radar_tiles = cacheable("http://img.weather.example/radar",
                            priority=LOW_PRIORITY, ttl_minutes=30)


def main() -> None:
    # 1. The deployment: client --wifi-- AP --7 hops-- edge cache.
    bed = Testbed(TestbedConfig(seed=42))
    ap = ApRuntime(bed.ap, bed.transport, bed.ldns.address)
    ap.install()

    phone = bed.add_client("phone")
    runtime = ClientRuntime(phone, bed.transport, bed.ap.address,
                            app_id="weather")

    # 2. Reflection finds the declarations; the testbed hosts the data.
    specs: list[CacheableSpec] = runtime.register(WeatherApi)
    print(f"registered {len(specs)} cacheable objects:")
    for spec in specs:
        print(f"  {spec.url}  priority={spec.priority} "
              f"ttl={spec.ttl_s / 60:.0f}min")
    bed.host_object(WeatherApi().current, 4 * 1024,
                    origin_delay_s=0.030)
    bed.host_object(WeatherApi().radar_tiles, 60 * 1024,
                    origin_delay_s=0.045)

    # 3. Fetch everything twice and watch the latency collapse.
    def fetch_all(round_name: str):
        for spec in specs:
            result = yield from runtime.fetch(spec.url)
            print(f"  [{round_name}] {spec.url.split('/')[-1]:8s} "
                  f"source={result.source:13s} "
                  f"lookup={result.lookup_latency_s * 1e3:6.2f}ms "
                  f"retrieval={result.retrieval_latency_s * 1e3:6.2f}ms")

    print("\ncold run (objects delegated to the AP):")
    bed.sim.run(until=bed.sim.process(fetch_all("cold")))
    runtime.flush()  # force a fresh DNS-Cache lookup next round
    print("\nwarm run (AP cache hits, dummy-IP short circuit):")
    bed.sim.run(until=bed.sim.process(fetch_all("warm")))

    print(f"\nAP stats: {ap.delegations} delegations, "
          f"{ap.hits_served} hits served, "
          f"{ap.store.used_bytes / 1024:.0f} KB cached, "
          f"memory overhead {ap.memory_bytes() / 1024:.0f} KB")


if __name__ == "__main__":
    main()
