#!/usr/bin/env python
"""Telemetry demo: watch one request cross the DNS→AP→edge path.

Builds an instrumented testbed, installs APE-CACHE, fetches two
objects twice, and then reads everything the unified observability
layer captured: the per-request span trees (cold delegation vs warm
hit), the labelled instrument snapshot, and the deterministic JSONL
export the regression tests hash.

Run:  python examples/telemetry_demo.py
"""

from repro.baselines import ApeCacheSystem
from repro.core.annotations import CacheableSpec
from repro.sim import HOUR
from repro.telemetry import snapshot_table, spans_to_jsonl
from repro.testbed import Testbed, TestbedConfig

URLS = ("http://demo.example/manifest", "http://demo.example/poster")


def build_and_run(seed: int = 42) -> Testbed:
    """An instrumented APE-CACHE run: two objects, fetched twice."""
    bed = Testbed(TestbedConfig(seed=seed, enable_telemetry=True))
    system = ApeCacheSystem()
    system.install(bed)
    phone = bed.add_client("phone")
    fetcher = system.new_fetcher(bed, phone, "demoapp")
    for url in URLS:
        bed.host_object(url, 16 * 1024, origin_delay_s=0.030)
        fetcher.register_spec(CacheableSpec(url, 2, 1 * HOUR))

    def fetch_everything_twice():
        for round_name in ("cold", "warm"):
            for url in URLS:
                result = yield from fetcher.fetch(url)
                print(f"  [{round_name}] {url.rsplit('/', 1)[-1]:9s} "
                      f"source={result.source:13s} "
                      f"total={result.total_latency_s * 1e3:6.2f}ms")

    bed.sim.run(until=bed.sim.process(fetch_everything_twice()))
    return bed


def main() -> None:
    print("fetching (cold round delegates to the edge, warm round "
          "hits the AP):")
    bed = build_and_run()
    telemetry = bed.telemetry

    # 1. Spans: every request is a trace tree, stitched across the
    #    client and AP tiers by the zero-cost x-ape-trace header.
    requests = telemetry.spans.finished("request")
    cold, warm = requests[0], requests[-1]
    print(f"\ncold request trace (#{cold.trace_id}):")
    print(telemetry.spans.render_trace(cold.trace_id))
    print(f"\nwarm request trace (#{warm.trace_id}):")
    print(telemetry.spans.render_trace(warm.trace_id))

    # 2. Instruments: labelled counters/gauges/histograms, one snapshot.
    print("\ninstrument snapshot:")
    print(snapshot_table(telemetry))

    # 3. Exports: deterministic JSONL — same seed, same bytes.
    dump = spans_to_jsonl(telemetry)
    print(f"\nJSONL export: {len(dump.splitlines())} span records, "
          f"{len(dump)} bytes (byte-identical across same-seed runs)")


if __name__ == "__main__":
    main()
