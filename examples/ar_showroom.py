#!/usr/bin/env python
"""VirtualHome AR scenario: many users behind one AP share the cache.

An AR furniture app (the paper's second real-world app) is used by
several phones on the same WiFi network.  The first user's fetches
populate the AP cache; everyone after that gets millisecond-level AR
asset loads — the "almost for free" of the paper's title.  Also shows
the priority annotations at work: when a low-priority flood squeezes the
cache, the big high-priority AR mesh survives eviction.

Run:  python examples/ar_showroom.py
"""

from repro.apps import AppRunner, virtualhome_app
from repro.core import ApRuntime, ApeCacheConfig, CacheableSpec
from repro.core.client_runtime import ClientRuntime
from repro.testbed import Testbed, TestbedConfig

KB = 1024
USERS = 4


def main() -> None:
    bed = Testbed(TestbedConfig(seed=11))
    # A deliberately small AP cache to make eviction pressure visible.
    ap = ApRuntime(bed.ap, bed.transport, bed.ldns.address,
                   config=ApeCacheConfig(cache_capacity_bytes=256 * KB))
    ap.install()

    app = virtualhome_app()
    for obj in app.objects:
        bed.host_object(obj.url, obj.size_bytes,
                        origin_delay_s=obj.origin_delay_s)

    print(f"{USERS} shoppers walk into the showroom...\n")
    for user in range(1, USERS + 1):
        phone = bed.add_client(f"phone{user}")
        runtime = ClientRuntime(phone, bed.transport, bed.ap.address,
                                app_id="virtualhome")
        runner = AppRunner(bed.sim, app, runtime)
        execution = bed.sim.run(until=bed.sim.process(runner.execute()))
        sources = {name: result.source
                   for name, result in execution.fetches.items()}
        print(f"user {user}: app latency "
              f"{execution.latency_s * 1e3:6.1f} ms   "
              f"ARObjects via {sources['ARObjects']}")

    # A burst of low-priority clutter tries to push the mesh out.
    print("\nlow-priority clutter floods the AP cache...")
    clutter_runtime = ClientRuntime(bed.add_client("kiosk"),
                                    bed.transport, bed.ap.address,
                                    app_id="clutter")
    for index in range(12):
        url = f"http://clutterapp.example/banner{index}"
        bed.host_object(url, 30 * KB)
        clutter_runtime.register_spec(CacheableSpec(url, priority=1,
                                                    ttl_s=1800.0))
        bed.sim.run(until=bed.sim.process(clutter_runtime.fetch(url)))

    mesh_url = next(obj.url for obj in app.objects
                    if obj.name == "ARObjects")
    survived = mesh_url in ap.store
    print(f"high-priority AR mesh still cached: {survived}")
    print(f"cache: {ap.store.used_bytes / KB:.0f}/"
          f"{ap.store.capacity_bytes / KB:.0f} KB used, "
          f"{ap.store.evictions} evictions "
          f"(PACM kept the critical object)" if survived else "")


if __name__ == "__main__":
    main()
