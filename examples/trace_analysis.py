#!/usr/bin/env python
"""Offline cache-policy research workflow.

Generates the evaluation workload's request trace (no network needed),
replays it through PACM, the classic policies, and a clairvoyant Belady
reference, and prints the league table plus a capacity sweep — the
fast inner loop for anyone experimenting with AP cache management.

Run:  python examples/trace_analysis.py
"""

from repro.apps import DummyAppParams, generate_apps
from repro.apps.trace import generate_request_trace
from repro.cache import (
    BeladyPolicy,
    FifoPolicy,
    LfuPolicy,
    LruPolicy,
    OfflineCacheSimulator,
    PacmPolicy,
    RequestFrequencyTracker,
)
from repro.sim import MINUTE

MB = 1024 * 1024


def replay_all(trace, capacity_bytes):
    simulator = OfflineCacheSimulator(capacity_bytes)
    results = {}

    tracker = RequestFrequencyTracker()
    results["PACM"] = simulator.replay(
        trace, PacmPolicy(tracker),
        observe=lambda req: tracker.observe(req.app_id, req.time_s))
    for name, policy in (("LRU", LruPolicy()), ("LFU", LfuPolicy()),
                         ("FIFO", FifoPolicy()),
                         ("Belady*", BeladyPolicy(trace))):
        results[name] = simulator.replay(trace, policy)
    return results


def main() -> None:
    apps = generate_apps(30, seed=7, params=DummyAppParams())
    trace = generate_request_trace(apps, duration_s=30 * MINUTE, seed=7)
    print(f"trace: {len(trace)} requests from {len(apps)} apps over "
          f"30 simulated minutes\n")

    print("league table at the paper's 5 MB cache:")
    print(f"{'policy':8s} {'hit':>6s} {'hit_hi':>7s} {'fetched':>9s}")
    results = replay_all(trace, 5 * MB)
    for name, result in sorted(results.items(),
                               key=lambda kv: -kv[1].hit_ratio):
        print(f"{name:8s} {result.hit_ratio:6.3f} "
              f"{result.high_priority_hit_ratio:7.3f} "
              f"{result.bytes_fetched / MB:7.1f}MB")
    print("(* clairvoyant upper bound)\n")

    print("PACM vs LRU across cache sizes:")
    print(f"{'cache':>7s} {'pacm':>6s} {'lru':>6s} {'belady':>7s}")
    for capacity_mb in (1, 2, 5, 10, 20):
        results = replay_all(trace, capacity_mb * MB)
        print(f"{capacity_mb:5d}MB "
              f"{results['PACM'].hit_ratio:6.3f} "
              f"{results['LRU'].hit_ratio:6.3f} "
              f"{results['Belady*'].hit_ratio:7.3f}")
    print("\nthe gap closes as capacity grows — priority-awareness "
          "matters exactly when the cache is scarce (the AP's regime).")


if __name__ == "__main__":
    main()
