"""Setuptools shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs fail; this shim enables the legacy editable path:

    pip install -e . --no-build-isolation --no-use-pep517

All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
