"""HTTP/1.1 byte codec for the live engine.

The simulator hands :class:`~repro.httplib.messages.HttpRequest` /
:class:`HttpResponse` objects across the transport directly; the live
stack (:mod:`repro.engine.livenet`) must put them on real sockets.  This
codec speaks minimal, connection-close HTTP/1.1 — one request, one
response, matching the simulated ``tcp_exchange`` semantics exactly.

Bodies in this library are *size-only* :class:`DataObject` metadata, so
the payload on the wire is ``size_bytes`` filler octets (the real bytes
matter for transfer timing, not their content) and the object's
metadata rides in ``x-repro-*`` headers:

=========================  =========================================
``x-repro-url``            the request's full URL (identity + query)
``x-repro-object-url``     response body's basic URL
``x-repro-object-version`` response body's version counter
``x-repro-object-created`` response body's creation timestamp (s)
``x-repro-body-bytes``     request body size (requests carry no data)
=========================  =========================================

Round-tripping a message through ``encode_* -> read_*`` reproduces it
field for field, which is what keeps the interceptor chain and the AP
runtime byte-path-agnostic.
"""

from __future__ import annotations

import asyncio

from repro.errors import HttpError
from repro.httplib.content import DataObject
from repro.httplib.messages import HttpRequest, HttpResponse
from repro.httplib.url import Url

__all__ = [
    "encode_request", "encode_response", "encode_payload_response",
    "read_request", "read_response",
    "MAX_HEADER_BYTES",
]

#: Ceiling on the header block of one message; a live peer sending more
#: is malformed (or not speaking this protocol at all).
MAX_HEADER_BYTES = 64 * 1024

#: Reserved metadata header names, stripped on decode so they never leak
#: into the reconstructed message's header dict.
_RESERVED = frozenset({
    "x-repro-url", "x-repro-object-url", "x-repro-object-version",
    "x-repro-object-created", "x-repro-body-bytes", "content-length",
})

_CRLF = b"\r\n"

_REASONS = {200: "OK", 404: "Not Found", 500: "Internal Server Error",
            502: "Bad Gateway", 503: "Service Unavailable",
            504: "Gateway Timeout"}


def encode_request(request: HttpRequest) -> bytes:
    """Serialize a request as one connection-close HTTP/1.1 message."""
    url = request.url
    path = url.full[len(f"{url.scheme}://{url.host}"):] or "/"
    lines = [f"{request.method} {path} HTTP/1.1",
             f"host: {url.host}",
             f"x-repro-url: {url.full}",
             f"x-repro-body-bytes: {request.body_bytes}"]
    lines.extend(f"{name}: {value}"
                 for name, value in request.headers.items()
                 if name not in _RESERVED)
    lines.append("content-length: 0")
    return _CRLF.join(line.encode("latin-1") for line in lines) + 2 * _CRLF


def encode_response(response: HttpResponse) -> bytes:
    """Serialize a response; the body becomes ``size_bytes`` filler."""
    reason = _REASONS.get(response.status, "Status")
    lines = [f"HTTP/1.1 {response.status} {reason}"]
    lines.extend(f"{name}: {value}"
                 for name, value in response.headers.items()
                 if name not in _RESERVED)
    body = response.body
    size = 0
    if body is not None:
        size = body.size_bytes
        lines.append(f"x-repro-object-url: {body.url}")
        lines.append(f"x-repro-object-version: {body.version}")
        lines.append(f"x-repro-object-created: {body.created_at!r}")
    lines.append(f"content-length: {size}")
    head = _CRLF.join(line.encode("latin-1") for line in lines) + 2 * _CRLF
    return head + b"\0" * size


def encode_payload_response(status: int, payload: bytes,
                            content_type: str = "text/plain") -> bytes:
    """Serialize a response that carries a *real* byte payload.

    The cache path ships size-only filler bodies
    (:func:`encode_response`); the admin plane needs actual content —
    exposition text, health JSON — so this variant writes the given
    bytes verbatim with a content type, still connection-close HTTP/1.1
    that ``curl``/``urllib`` read directly.
    """
    reason = _REASONS.get(status, "Status")
    lines = [f"HTTP/1.1 {status} {reason}",
             f"content-type: {content_type}",
             f"content-length: {len(payload)}",
             "connection: close"]
    head = _CRLF.join(line.encode("latin-1") for line in lines) + 2 * _CRLF
    return head + payload


async def read_request(reader: asyncio.StreamReader) -> HttpRequest:
    """Parse one request from a live connection."""
    start_line, headers = await _read_head(reader)
    parts = start_line.split(" ")
    if len(parts) != 3:
        raise HttpError(f"malformed request line {start_line!r}")
    method = parts[0]
    full_url = headers.get("x-repro-url")
    if full_url is None:
        # A foreign client (curl, a browser) — reconstruct from the
        # request line and host header; scheme is http on loopback.
        host = headers.get("host", "localhost")
        full_url = f"http://{host}{parts[1]}"
    body_bytes = int(headers.get("x-repro-body-bytes", "0"))
    await _drain_body(reader, int(headers.get("content-length", "0")))
    return HttpRequest(
        Url.parse(full_url), method,
        {name: value for name, value in headers.items()
         if name not in _RESERVED and name != "host"},
        body_bytes)


async def read_response(reader: asyncio.StreamReader) -> HttpResponse:
    """Parse one response from a live connection."""
    start_line, headers = await _read_head(reader)
    parts = start_line.split(" ", 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise HttpError(f"malformed status line {start_line!r}")
    status = int(parts[1])
    size = int(headers.get("content-length", "0"))
    await _drain_body(reader, size)
    body: DataObject | None = None
    object_url = headers.get("x-repro-object-url")
    if object_url is not None:
        body = DataObject(
            object_url, size,
            version=int(headers.get("x-repro-object-version", "1")),
            created_at=float(headers.get("x-repro-object-created", "0.0")))
    return HttpResponse(
        status,
        {name: value for name, value in headers.items()
         if name not in _RESERVED},
        body)


async def _read_head(reader: asyncio.StreamReader,
                     ) -> tuple[str, dict[str, str]]:
    """Read up to the blank line; return (start line, header dict)."""
    try:
        block = await reader.readuntil(2 * _CRLF)
    except asyncio.LimitOverrunError as err:
        raise HttpError(f"header block exceeds reader limit: {err}")
    except asyncio.IncompleteReadError as err:
        raise HttpError("connection closed mid-message") from err
    if len(block) > MAX_HEADER_BYTES:
        raise HttpError(f"header block of {len(block)} bytes exceeds "
                        f"{MAX_HEADER_BYTES}")
    lines = block.decode("latin-1").split("\r\n")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return lines[0], headers


async def _drain_body(reader: asyncio.StreamReader, size: int) -> None:
    """Consume and discard ``size`` filler octets."""
    remaining = size
    while remaining > 0:
        chunk = await reader.read(min(remaining, 1 << 16))
        if not chunk:
            raise HttpError("connection closed mid-body")
        remaining -= len(chunk)
