"""Content objects: what gets cached and transferred.

A :class:`DataObject` stands in for the payload of one cacheable URL —
the simulator tracks its size and freshness epoch rather than real bytes.
"""

from __future__ import annotations

import dataclasses

from repro.errors import HttpError

__all__ = ["DataObject"]


@dataclasses.dataclass
class DataObject:
    """One cacheable payload.

    Parameters
    ----------
    url:
        The object's basic URL (no query string) — its identity.
    size_bytes:
        Payload size; drives transfer and cache-occupancy modeling.
    version:
        Bumped each time the origin regenerates the object, so tests can
        assert that a cache served a stale or fresh copy.
    created_at:
        Simulated time the current version was produced.
    """

    url: str
    size_bytes: int
    version: int = 1
    created_at: float = 0.0

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise HttpError(f"negative object size: {self.size_bytes}")

    def refreshed(self, now: float) -> "DataObject":
        """A new version of the same object produced at ``now``."""
        return DataObject(self.url, self.size_bytes,
                          version=self.version + 1, created_at=now)

    def __repr__(self) -> str:
        return (f"<DataObject {self.url} {self.size_bytes}B "
                f"v{self.version}>")
