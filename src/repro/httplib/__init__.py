"""HTTP substrate: URLs, messages, origin/edge servers, interceptor client."""

from repro.httplib.client import Chain, HttpClient, Interceptor
from repro.httplib.content import DataObject
from repro.httplib.messages import HttpRequest, HttpResponse
from repro.httplib.server import (
    EdgeCacheServer,
    HostingDirectory,
    OriginServer,
)
from repro.httplib.url import Url

__all__ = [
    "Chain",
    "DataObject",
    "EdgeCacheServer",
    "HostingDirectory",
    "HttpClient",
    "HttpRequest",
    "HttpResponse",
    "Interceptor",
    "OriginServer",
    "Url",
]
