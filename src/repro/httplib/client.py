"""An HTTP client with an OkHttp-style interceptor chain.

The paper's reference implementation "extends OkHttp" by inserting a
cache lookup/fetching module that intercepts outgoing requests whose base
URL matches a cacheable object.  This client reproduces that extension
point: interceptors see every request and may short-circuit it, rewrite
it, or let it proceed down the chain to the network.
"""

from __future__ import annotations

import typing as _t

from repro.errors import HttpError
from repro.dnslib.resolver import StubResolver
from repro.httplib.messages import HttpRequest, HttpResponse
from repro.httplib.url import Url
from repro.net.address import IPv4Address
from repro.net.node import Node, TCP_HTTP_PORT
from repro.net.transport import Transport
from repro.telemetry.registry import NULL

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry import Telemetry

__all__ = ["HttpClient", "Interceptor", "Chain", "TLS_CLIENT_HELLO_BYTES",
           "TLS_SERVER_HELLO_BYTES"]

#: Pseudo-header carrying an already-resolved destination address, used
#: when a caching layer has done its own lookup (APE-CACHE's DNS-Cache
#: response supplies the edge server's IP directly).
TARGET_IP_HEADER = "x-resolved-ip"

#: TLS 1.3 handshake sizes: one extra round trip before the request
#: (ClientHello out; ServerHello + certificate + Finished back).
TLS_CLIENT_HELLO_BYTES = 350
TLS_SERVER_HELLO_BYTES = 2900


class Chain:
    """One position in the interceptor chain."""

    def __init__(self, client: "HttpClient", index: int) -> None:
        self._client = client
        self._index = index

    def proceed(self, request: HttpRequest,
                ) -> _t.Generator[object, object, HttpResponse]:
        """Pass ``request`` to the next interceptor (or the network)."""
        interceptors = self._client.interceptors
        if self._index < len(interceptors):
            next_chain = Chain(self._client, self._index + 1)
            response = yield from interceptors[self._index].intercept(
                next_chain, request)
        else:
            response = yield from self._client.transport_call(request)
        return response


class Interceptor:
    """Base class for request interceptors."""

    def intercept(self, chain: Chain, request: HttpRequest,
                  ) -> _t.Generator[object, object, HttpResponse]:
        """Handle ``request``; default behaviour is pass-through."""
        response = yield from chain.proceed(request)
        return response


class HttpClient:
    """A client bound to one node, resolving names via a stub resolver."""

    def __init__(self, node: Node, transport: Transport,
                 resolver: StubResolver | None = None,
                 telemetry: "Telemetry | None" = None) -> None:
        self.node = node
        self.sim = node.sim
        self.transport = transport
        self.resolver = resolver
        self.interceptors: list[Interceptor] = []
        self.requests_sent = 0
        self._t_requests = (telemetry if telemetry is not None
                            else NULL).counter(
            "http.requests", help="requests entering the interceptor chain")

    def add_interceptor(self, interceptor: Interceptor) -> None:
        self.interceptors.append(interceptor)

    # ------------------------------------------------------------------
    # Public request API
    # ------------------------------------------------------------------
    def get(self, url: "Url | str", headers: dict[str, str] | None = None,
            ) -> _t.Generator[object, object, HttpResponse]:
        """Issue a GET through the interceptor chain."""
        request = HttpRequest(
            Url.parse(url) if isinstance(url, str) else url,
            headers=dict(headers or {}))
        response = yield from self.execute(request)
        return response

    def execute(self, request: HttpRequest,
                ) -> _t.Generator[object, object, HttpResponse]:
        """Run ``request`` through interceptors and the network."""
        self.requests_sent += 1
        self._t_requests.inc(scheme=request.url.scheme)
        response = yield from Chain(self, 0).proceed(request)
        return response

    # ------------------------------------------------------------------
    # Terminal network step
    # ------------------------------------------------------------------
    def transport_call(self, request: HttpRequest,
                       ) -> _t.Generator[object, object, HttpResponse]:
        """Resolve the destination and perform the TCP(+TLS) exchange.

        ``https`` URLs pay one extra round trip for the TLS 1.3
        handshake before the request goes out.
        """
        address = yield from self._destination(request)
        if request.url.scheme == "https":
            peer = self.transport.network.node_by_address(address).name
            yield self.sim.timeout(self.transport.one_way(
                self.node.name, peer, TLS_CLIENT_HELLO_BYTES))
            yield self.sim.timeout(self.transport.one_way(
                peer, self.node.name, TLS_SERVER_HELLO_BYTES))
        response = yield self.sim.process(self.transport.tcp_exchange(
            self.node.name, address, TCP_HTTP_PORT, request))
        return _t.cast(HttpResponse, response)

    def _destination(self, request: HttpRequest,
                     ) -> _t.Generator[object, object, IPv4Address]:
        pinned = request.header(TARGET_IP_HEADER)
        if pinned is not None:
            return IPv4Address(pinned)
        host = request.url.host
        literal = self._ip_literal(host)
        if literal is not None:
            return literal
        if self.resolver is None:
            raise HttpError(
                f"no resolver configured and {host!r} is not an IP literal")
        result = yield from self.resolver.resolve(host)
        return result.address

    @staticmethod
    def _ip_literal(host: str) -> IPv4Address | None:
        if host.count(".") == 3 and \
                all(part.isdigit() for part in host.split(".")):
            return IPv4Address(host)
        return None
