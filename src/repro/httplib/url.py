"""URL parsing tuned to what APE-CACHE needs.

The paper's programming model identifies cacheable objects by their "basic
URLs without parameters", so :class:`Url` exposes :attr:`base` (scheme +
host + path, query stripped) alongside the full text.
"""

from __future__ import annotations

import dataclasses

from repro.errors import HttpError
from repro.dnslib.name import DomainName

__all__ = ["Url"]

_SUPPORTED_SCHEMES = ("http", "https")


@dataclasses.dataclass(frozen=True)
class Url:
    """An absolute http(s) URL broken into its parts."""

    scheme: str
    host: str
    path: str
    query: str = ""

    @classmethod
    def parse(cls, text: str) -> "Url":
        """Parse ``scheme://host/path?query``; path defaults to ``/``."""
        if "://" not in text:
            raise HttpError(f"URL missing scheme: {text!r}")
        scheme, _, rest = text.partition("://")
        scheme = scheme.lower()
        if scheme not in _SUPPORTED_SCHEMES:
            raise HttpError(f"unsupported scheme {scheme!r} in {text!r}")
        host, slash, path_and_query = rest.partition("/")
        if not host:
            raise HttpError(f"URL missing host: {text!r}")
        path_and_query = (slash + path_and_query) if slash else "/"
        path, _, query = path_and_query.partition("?")
        return cls(scheme, host.lower(), path or "/", query)

    def __post_init__(self) -> None:
        if not self.host:
            raise HttpError("URL host must be non-empty")
        if not self.path.startswith("/"):
            raise HttpError(f"URL path must start with '/': {self.path!r}")

    @property
    def base(self) -> str:
        """The URL without its query string — the paper's object ``id``."""
        return f"{self.scheme}://{self.host}{self.path}"

    @property
    def full(self) -> str:
        if self.query:
            return f"{self.base}?{self.query}"
        return self.base

    @property
    def domain(self) -> DomainName:
        return DomainName(self.host)

    def with_query(self, query: str) -> "Url":
        return Url(self.scheme, self.host, self.path, query)

    def __str__(self) -> str:
        return self.full
