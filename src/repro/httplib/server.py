"""HTTP servers: origins and the edge cache tier.

*Origin servers* own the authoritative copy of each object and add a
per-object service delay — this reproduces the paper's setup where
synthetic objects carried a configured "retrieval latency" (20–50 ms) to
emulate fetching from assorted remote backends.

*Edge cache servers* model the paper's edge tier: capacity is assumed
ample ("eliminating the need for cache replacement"), so they keep every
object they ever fetch and serve it warm.
"""

from __future__ import annotations

import typing as _t

from repro.errors import HttpError
from repro.httplib.content import DataObject
from repro.httplib.messages import HttpRequest, HttpResponse
from repro.httplib.url import Url
from repro.net.address import IPv4Address
from repro.net.node import Node, TCP_HTTP_PORT
from repro.net.transport import Transport
from repro.engine.api import MS

__all__ = ["OriginServer", "EdgeCacheServer", "HostingDirectory"]

#: CPU time for a server to process one HTTP request.
DEFAULT_HTTP_SERVICE_TIME = 0.3 * MS


class HostingDirectory:
    """Maps base URLs to the origin server that owns them.

    Edge caches consult this directory on a cold miss, standing in for
    the real world's "the CDN knows the customer's origin" configuration.
    """

    def __init__(self) -> None:
        self._origins: dict[str, IPv4Address] = {}

    def register(self, base_url: str, origin: "IPv4Address | str") -> None:
        self._origins[Url.parse(base_url).base] = IPv4Address(origin)

    def origin_for(self, url: "Url | str") -> IPv4Address:
        base = Url.parse(url).base if isinstance(url, str) else url.base
        try:
            return self._origins[base]
        except KeyError:
            raise HttpError(f"no origin registered for {base}") from None

    def __len__(self) -> int:
        return len(self._origins)


class OriginServer:
    """The authoritative source of a set of objects."""

    def __init__(self, node: Node,
                 service_time_s: float = DEFAULT_HTTP_SERVICE_TIME) -> None:
        self.node = node
        self.sim = node.sim
        self.service_time_s = service_time_s
        self._objects: dict[str, DataObject] = {}
        self._delays: dict[str, float] = {}
        self.requests_served = 0

    def install(self, port: int = TCP_HTTP_PORT) -> None:
        self.node.bind_tcp(port, self._handle)

    def host(self, data_object: DataObject,
             service_delay_s: float = 0.0) -> None:
        """Host ``data_object``; ``service_delay_s`` is the paper's
        per-object simulated retrieval latency."""
        if service_delay_s < 0:
            raise HttpError(f"negative service delay {service_delay_s}")
        base = Url.parse(data_object.url).base
        self._objects[base] = data_object
        self._delays[base] = service_delay_s

    def hosts(self, url: "Url | str") -> bool:
        base = Url.parse(url).base if isinstance(url, str) else url.base
        return base in self._objects

    def object_for(self, url: "Url | str") -> DataObject:
        base = Url.parse(url).base if isinstance(url, str) else url.base
        try:
            return self._objects[base]
        except KeyError:
            raise HttpError(f"{self.node.name} does not host {base}") \
                from None

    def refresh(self, url: "Url | str") -> DataObject:
        """Regenerate an object (bump its version) and return the new copy."""
        base = Url.parse(url).base if isinstance(url, str) else url.base
        self._objects[base] = self._objects[base].refreshed(self.sim.now)
        return self._objects[base]

    def _handle(self, request: object, _source: IPv4Address,
                ) -> _t.Generator[object, object, HttpResponse]:
        if not isinstance(request, HttpRequest):
            raise HttpError(f"origin got a {type(request).__name__}")
        self.requests_served += 1
        base = request.url.base
        yield self.node.occupy_cpu(self.service_time_s)
        if base not in self._objects:
            return HttpResponse.not_found(request.url)
        delay = self._delays.get(base, 0.0)
        if delay:
            yield self.sim.timeout(delay)
        return HttpResponse(status=200, body=self._objects[base])


class EdgeCacheServer:
    """An edge cache with effectively unlimited capacity.

    Serves cached objects immediately; on a miss it fetches from the
    owning origin (per the hosting directory), stores the object, and
    serves it.  ``preload`` warms the cache the way a long-running CDN
    node would be warm in steady state.
    """

    def __init__(self, node: Node, transport: Transport,
                 directory: HostingDirectory,
                 service_time_s: float = DEFAULT_HTTP_SERVICE_TIME) -> None:
        self.node = node
        self.sim = node.sim
        self.transport = transport
        self.directory = directory
        self.service_time_s = service_time_s
        self._cache: dict[str, DataObject] = {}
        self._serve_delays: dict[str, float] = {}
        self.hits = 0
        self.cold_misses = 0

    def install(self, port: int = TCP_HTTP_PORT) -> None:
        self.node.bind_tcp(port, self._handle)

    def preload(self, objects: _t.Iterable[DataObject]) -> None:
        for data_object in objects:
            self._cache[Url.parse(data_object.url).base] = data_object

    def set_serve_delay(self, url: "Url | str", delay_s: float) -> None:
        """Add a per-object delay to every serve of ``url``.

        Reproduces the paper's evaluation setup: synthetic objects are
        hosted on the edge server "with an added delay (retrieval
        latency) to simulate the latency experienced when retrieving
        them from various servers" (20–50 ms).
        """
        if delay_s < 0:
            raise HttpError(f"negative serve delay {delay_s}")
        base = Url.parse(url).base if isinstance(url, str) else url.base
        self._serve_delays[base] = delay_s

    def is_cached(self, url: "Url | str") -> bool:
        base = Url.parse(url).base if isinstance(url, str) else url.base
        return base in self._cache

    def evict(self, url: "Url | str") -> None:
        base = Url.parse(url).base if isinstance(url, str) else url.base
        self._cache.pop(base, None)

    def _handle(self, request: object, _source: IPv4Address,
                ) -> _t.Generator[object, object, HttpResponse]:
        if not isinstance(request, HttpRequest):
            raise HttpError(f"edge cache got a {type(request).__name__}")
        base = request.url.base
        yield self.node.occupy_cpu(self.service_time_s)
        cached = self._cache.get(base)
        if cached is not None:
            self.hits += 1
            delay = self._serve_delays.get(base, 0.0)
            if delay:
                yield self.sim.timeout(delay)
            return HttpResponse(status=200, body=cached)
        self.cold_misses += 1
        try:
            origin = self.directory.origin_for(request.url)
        except HttpError:
            # Nobody publishes this URL through the CDN: not found.
            return HttpResponse.not_found(request.url)
        response = yield self.sim.process(self.transport.tcp_exchange(
            self.node.name, origin, TCP_HTTP_PORT, request))
        http_response = _t.cast(HttpResponse, response)
        if http_response.ok and http_response.body is not None:
            self._cache[base] = http_response.body
        return http_response
