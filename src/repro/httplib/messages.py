"""HTTP request and response messages.

Bodies are :class:`~repro.httplib.content.DataObject` instances rather
than byte strings; ``wire_size`` accounts for headers plus body size so
the transport can charge realistic serialization delay.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import HttpError, HttpStatusError
from repro.httplib.content import DataObject
from repro.httplib.url import Url

__all__ = ["HttpRequest", "HttpResponse", "REQUEST_HEADER_BYTES",
           "RESPONSE_HEADER_BYTES"]

#: Typical header overhead of a mobile HTTP GET.
REQUEST_HEADER_BYTES = 220
#: Typical response header overhead.
RESPONSE_HEADER_BYTES = 180

#: Sim-internal annotation headers (telemetry trace propagation) that
#: ride on the message object but are excluded from wire accounting:
#: enabling observability must not perturb simulated timings.
ZERO_COST_HEADERS = frozenset({"x-ape-trace"})

_METHODS = ("GET", "POST", "PUT", "DELETE", "HEAD")


def _header_wire_bytes(headers: dict[str, str]) -> int:
    return sum(len(key) + len(value) + 4
               for key, value in headers.items()
               if key not in ZERO_COST_HEADERS)


@dataclasses.dataclass
class HttpRequest:
    """A client request."""

    url: Url
    method: str = "GET"
    headers: dict[str, str] = dataclasses.field(default_factory=dict)
    body_bytes: int = 0

    def __post_init__(self) -> None:
        if isinstance(self.url, str):
            self.url = Url.parse(self.url)
        if self.method not in _METHODS:
            raise HttpError(f"unsupported method {self.method!r}")
        if self.body_bytes < 0:
            raise HttpError(f"negative body size {self.body_bytes}")

    @property
    def wire_size(self) -> int:
        return (REQUEST_HEADER_BYTES + len(self.url.full) +
                _header_wire_bytes(self.headers) + self.body_bytes)

    def header(self, name: str, default: str | None = None) -> str | None:
        return self.headers.get(name.lower(), default)

    def with_header(self, name: str, value: str) -> "HttpRequest":
        headers = dict(self.headers)
        headers[name.lower()] = value
        return HttpRequest(self.url, self.method, headers, self.body_bytes)

    def __repr__(self) -> str:
        return f"<HttpRequest {self.method} {self.url}>"


@dataclasses.dataclass
class HttpResponse:
    """A server response, optionally carrying a data object."""

    status: int = 200
    headers: dict[str, str] = dataclasses.field(default_factory=dict)
    body: DataObject | None = None

    def __post_init__(self) -> None:
        if not 100 <= self.status <= 599:
            raise HttpError(f"implausible status code {self.status}")

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def body_bytes(self) -> int:
        return self.body.size_bytes if self.body is not None else 0

    @property
    def wire_size(self) -> int:
        return (RESPONSE_HEADER_BYTES +
                _header_wire_bytes(self.headers) + self.body_bytes)

    def header(self, name: str, default: str | None = None) -> str | None:
        return self.headers.get(name.lower(), default)

    def require_ok(self) -> "HttpResponse":
        """Return self, or raise :class:`HttpStatusError` on failure."""
        if not self.ok:
            raise HttpStatusError(self.status,
                                  self.headers.get("reason", ""))
        return self

    def require_body(self) -> DataObject:
        """The body object; raises when the response has none."""
        self.require_ok()
        if self.body is None:
            raise HttpError("response has no body")
        return self.body

    @classmethod
    def not_found(cls, url: _t.Union[Url, str]) -> "HttpResponse":
        return cls(status=404, headers={"reason": f"no object at {url}"})

    def __repr__(self) -> str:
        return f"<HttpResponse {self.status} {self.body!r}>"
