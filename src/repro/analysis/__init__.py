"""Multi-seed replication and statistics for experiment claims."""

from repro.analysis.multiseed import (
    MultiSeedResult,
    compare_systems,
    replicate,
)
from repro.analysis.stats import (
    PairedComparison,
    SampleSummary,
    confidence_interval,
    paired_comparison,
    summarize,
)

__all__ = [
    "MultiSeedResult",
    "PairedComparison",
    "SampleSummary",
    "compare_systems",
    "confidence_interval",
    "paired_comparison",
    "replicate",
    "summarize",
]
