"""Multi-seed replication of workload experiments.

Runs the same workload configuration across several seeds per caching
system and reduces each metric to a mean with a confidence interval —
the replication discipline a single simulation run lacks.

Since the scenario engine landed (:mod:`repro.runner`), these are thin
wrappers over :class:`~repro.runner.engine.SweepEngine`: the seed loop
becomes a one-axis-free :class:`~repro.runner.spec.ScenarioSpec`, which
also unlocks ``jobs=N`` fan-out across cores with byte-identical
results.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.apps.workload import WorkloadConfig
from repro.baselines.base import CachingSystem
from repro.analysis.stats import (
    PairedComparison,
    SampleSummary,
    paired_comparison,
    summarize,
)

__all__ = ["MultiSeedResult", "replicate", "compare_systems"]


@dataclasses.dataclass
class MultiSeedResult:
    """Per-seed metric samples for one system."""

    system_name: str
    seeds: list[int]
    #: metric name -> one value per seed, in seed order.
    samples: dict[str, list[float]]

    def summary(self, metric: str,
                confidence: float = 0.95) -> SampleSummary:
        return summarize(self.samples[metric], confidence)

    def metrics(self) -> list[str]:
        return sorted(self.samples)


def replicate(system_factory: _t.Callable[[], CachingSystem],
              config: WorkloadConfig,
              seeds: _t.Sequence[int] = (0, 1, 2, 3, 4),
              jobs: int = 1,
              ) -> MultiSeedResult:
    """Run ``config`` once per seed against fresh system instances.

    ``system_factory`` may be a registered system name or any picklable
    zero-argument factory (a top-level class like ``ApeCacheSystem``).
    ``jobs > 1`` fans the seeds out over a spawn pool; the fold is
    seed-ordered either way, so results are identical.
    """
    from repro.runner.engine import SweepEngine
    from repro.runner.reduce import fold_multiseed
    from repro.runner.spec import ScenarioSpec

    if not seeds:
        raise ValueError("need at least one seed")
    spec = ScenarioSpec(name="replicate", systems=(system_factory,),
                        seeds=tuple(seeds), workload=config)
    result = SweepEngine(jobs=jobs).run(spec)
    folded = fold_multiseed(result)
    (replicated,) = folded.values()
    return replicated


def compare_systems(first_factory: _t.Callable[[], CachingSystem],
                    second_factory: _t.Callable[[], CachingSystem],
                    config: WorkloadConfig,
                    metric: str = "mean_app_latency_ms",
                    seeds: _t.Sequence[int] = (0, 1, 2, 3, 4),
                    confidence: float = 0.95,
                    jobs: int = 1) -> PairedComparison:
    """Paired per-seed comparison of two systems on one metric.

    A negative ``mean_difference`` means the *first* system scores lower
    (better, for latency metrics).
    """
    first = replicate(first_factory, config, seeds, jobs=jobs)
    second = replicate(second_factory, config, seeds, jobs=jobs)
    return paired_comparison(first.samples[metric],
                             second.samples[metric], confidence)
