"""Multi-seed replication of workload experiments.

Runs the same workload configuration across several seeds per caching
system and reduces each metric to a mean with a confidence interval —
the replication discipline a single simulation run lacks.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.apps.workload import Workload, WorkloadConfig
from repro.baselines.base import CachingSystem
from repro.analysis.stats import (
    PairedComparison,
    SampleSummary,
    paired_comparison,
    summarize,
)

__all__ = ["MultiSeedResult", "replicate", "compare_systems"]


@dataclasses.dataclass
class MultiSeedResult:
    """Per-seed metric samples for one system."""

    system_name: str
    seeds: list[int]
    #: metric name -> one value per seed, in seed order.
    samples: dict[str, list[float]]

    def summary(self, metric: str,
                confidence: float = 0.95) -> SampleSummary:
        return summarize(self.samples[metric], confidence)

    def metrics(self) -> list[str]:
        return sorted(self.samples)


def replicate(system_factory: _t.Callable[[], CachingSystem],
              config: WorkloadConfig,
              seeds: _t.Sequence[int] = (0, 1, 2, 3, 4),
              ) -> MultiSeedResult:
    """Run ``config`` once per seed against fresh system instances."""
    if not seeds:
        raise ValueError("need at least one seed")
    samples: dict[str, list[float]] = {}
    name = ""
    for seed in seeds:
        seeded = dataclasses.replace(config, seed=seed)
        system = system_factory()
        name = system.name
        result = Workload(seeded).run(system)
        for metric, value in result.summary().items():
            samples.setdefault(metric, []).append(value)
    return MultiSeedResult(system_name=name, seeds=list(seeds),
                           samples=samples)


def compare_systems(first_factory: _t.Callable[[], CachingSystem],
                    second_factory: _t.Callable[[], CachingSystem],
                    config: WorkloadConfig,
                    metric: str = "mean_app_latency_ms",
                    seeds: _t.Sequence[int] = (0, 1, 2, 3, 4),
                    confidence: float = 0.95) -> PairedComparison:
    """Paired per-seed comparison of two systems on one metric.

    A negative ``mean_difference`` means the *first* system scores lower
    (better, for latency metrics).
    """
    first = replicate(first_factory, config, seeds)
    second = replicate(second_factory, config, seeds)
    return paired_comparison(first.samples[metric],
                             second.samples[metric], confidence)
