"""Statistics for multi-seed experiment analysis.

Single-seed simulation results carry run-to-run noise; a credible claim
("APE-CACHE is faster than Wi-Cache") needs replication across seeds
and an interval on the difference.  This module provides the small set
of tools that workflow needs: summary statistics, Student-t confidence
intervals, and a paired comparison.
"""

from __future__ import annotations

import dataclasses
import math
import typing as _t

from scipy import stats as _scipy_stats

__all__ = ["SampleSummary", "summarize", "confidence_interval",
           "paired_comparison", "PairedComparison"]


@dataclasses.dataclass(frozen=True)
class SampleSummary:
    """Mean, spread, and a confidence interval for one metric."""

    count: int
    mean: float
    stddev: float
    ci_low: float
    ci_high: float
    confidence: float

    @property
    def ci_half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    def __str__(self) -> str:
        return (f"{self.mean:.4g} ± {self.ci_half_width:.2g} "
                f"({self.confidence:.0%} CI, n={self.count})")


def _mean_std(values: _t.Sequence[float]) -> tuple[float, float]:
    n = len(values)
    mean = math.fsum(values) / n
    if n < 2:
        return mean, 0.0
    variance = math.fsum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, math.sqrt(variance)


def confidence_interval(values: _t.Sequence[float],
                        confidence: float = 0.95,
                        ) -> tuple[float, float]:
    """Student-t interval for the mean of ``values``."""
    if not values:
        raise ValueError("confidence interval of an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    mean, stddev = _mean_std(values)
    n = len(values)
    if n < 2 or stddev == 0.0:
        return (mean, mean)
    t_critical = float(_scipy_stats.t.ppf((1 + confidence) / 2, n - 1))
    half = t_critical * stddev / math.sqrt(n)
    return (mean - half, mean + half)


def summarize(values: _t.Sequence[float],
              confidence: float = 0.95) -> SampleSummary:
    """Full summary of one sample."""
    mean, stddev = _mean_std(values)
    low, high = confidence_interval(values, confidence)
    return SampleSummary(count=len(values), mean=mean, stddev=stddev,
                         ci_low=low, ci_high=high,
                         confidence=confidence)


@dataclasses.dataclass(frozen=True)
class PairedComparison:
    """A paired (same-seed) comparison of two systems on one metric."""

    mean_difference: float
    ci_low: float
    ci_high: float
    confidence: float
    #: True when the interval excludes zero: the sign of the difference
    #: is resolved at this confidence.
    significant: bool

    def __str__(self) -> str:
        verdict = "significant" if self.significant else "inconclusive"
        return (f"Δ = {self.mean_difference:.4g} "
                f"[{self.ci_low:.4g}, {self.ci_high:.4g}] "
                f"({self.confidence:.0%} CI, {verdict})")


def paired_comparison(first: _t.Sequence[float],
                      second: _t.Sequence[float],
                      confidence: float = 0.95) -> PairedComparison:
    """Interval on ``mean(first - second)`` over paired (per-seed) runs.

    Pairing on the seed removes the workload's common-mode variance,
    which is what makes small fleets of simulation runs conclusive.
    """
    if len(first) != len(second):
        raise ValueError("paired samples must have equal length")
    differences = [a - b for a, b in zip(first, second)]
    low, high = confidence_interval(differences, confidence)
    mean, _ = _mean_std(differences)
    return PairedComparison(
        mean_difference=mean, ci_low=low, ci_high=high,
        confidence=confidence,
        significant=(low > 0.0) or (high < 0.0))
