"""Reducers: fold per-cell metrics back into tables and seed samples.

The engine hands back one metrics dict per cell; experiments want the
paper's shapes — an :class:`~repro.experiments.common.ExperimentTable`
with one row per axis point and one column per system, or a
:class:`~repro.analysis.multiseed.MultiSeedResult` with one sample per
seed.  These folds are pure functions of the (deterministically
ordered) sweep result, so serial and parallel runs reduce identically.
"""

from __future__ import annotations

import typing as _t

from repro.errors import ConfigError
from repro.experiments.common import ExperimentTable
from repro.runner.engine import CellResult, SweepResult

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.multiseed import MultiSeedResult

__all__ = ["fold_multiseed", "sweep_table", "cells_table",
           "common_numeric_metrics"]


def common_numeric_metrics(cells: _t.Iterable[CellResult]) -> list[str]:
    """Every numeric metric name across cells, first-seen order.

    The shared discovery step behind :func:`cells_table` and the
    trace-analysis run diff (:func:`repro.telemetry.analysis.
    compare_systems`): insertion-ordered so serial and parallel sweeps
    list columns identically.
    """
    seen: dict[str, None] = {}
    for cr in cells:
        for name, value in cr.metrics.items():
            if isinstance(value, (int, float)):
                seen.setdefault(name)
    return list(seen)


def fold_multiseed(result: SweepResult,
                   ) -> dict[str, "MultiSeedResult"]:
    """Per-system seed samples: system name -> MultiSeedResult.

    Every numeric metric becomes one sample list in seed order.  The
    sweep must be axis-free (one cell per system x seed); sweeping an
    axis and folding over seeds at once would silently mix populations.
    """
    from repro.analysis.multiseed import MultiSeedResult

    folded: dict[str, MultiSeedResult] = {}
    for system_name, cell_results in result.by_system().items():
        if any(cr.cell.coords for cr in cell_results):
            raise ConfigError(
                "fold_multiseed needs an axis-free sweep; got axis "
                f"coordinates on cells of {system_name!r}")
        seeds = [cr.cell.seed for cr in cell_results]
        samples: dict[str, list[float]] = {}
        for cr in cell_results:
            for metric, value in cr.metrics.items():
                if isinstance(value, (int, float)):
                    samples.setdefault(metric, []).append(float(value))
        folded[system_name] = MultiSeedResult(
            system_name=system_name, seeds=seeds, samples=samples)
    return folded


def sweep_table(result: SweepResult, title: str, axis: str,
                metric: str,
                axis_column: str | None = None,
                reducer: _t.Callable[[list[float]], float] | None = None,
                ) -> ExperimentTable:
    """The paper's sweep shape: axis points as rows, systems as columns.

    ``metric`` is read from every cell; multiple seeds per (point,
    system) reduce via ``reducer`` (default: mean).
    """
    axis_column = axis_column or axis
    systems = _output_systems(result)
    table = ExperimentTable(title=title,
                            columns=[axis_column, *systems])
    grouped: dict[object, dict[str, list[float]]] = {}
    labels: list[object] = []
    for cr in result.cells:
        label = cr.cell.coords.get(axis)
        if label not in grouped:
            grouped[label] = {}
            labels.append(label)
        grouped[label].setdefault(cr.system_name, []).append(
            _numeric(cr, metric))
    fold = reducer or (lambda values: sum(values) / len(values))
    for label in labels:
        row: dict[str, object] = {axis_column: label}
        for system in systems:
            values = grouped[label].get(system)
            if values:
                row[system] = fold(values)
        table.rows.append(row)
    return table


def cells_table(result: SweepResult, title: str | None = None,
                metrics: _t.Sequence[str] | None = None,
                ) -> ExperimentTable:
    """The generic flat shape: one row per cell (CLI `sweep` output)."""
    axis_columns = list(result.spec.axes)
    if metrics is None:
        metrics = common_numeric_metrics(result.cells)
    table = ExperimentTable(
        title=title or f"Sweep: {result.spec.name}",
        columns=["system", "seed", *axis_columns, *metrics])
    for cr in result.cells:
        row: dict[str, object] = {"system": cr.system_name,
                                  "seed": cr.cell.seed}
        for axis in axis_columns:
            row[axis] = cr.cell.coords.get(axis)
        for name in metrics:
            if name in cr.metrics:
                row[name] = cr.metrics[name]
        table.rows.append(row)
    return table


def _output_systems(result: SweepResult) -> list[str]:
    ordered: dict[str, None] = {}
    for cr in result.cells:
        ordered.setdefault(cr.system_name)
    return list(ordered)


def _numeric(cr: CellResult, metric: str) -> float:
    value = cr.metrics.get(metric)
    if not isinstance(value, (int, float)):
        raise ConfigError(
            f"cell {cr.cell.index} ({cr.system_name}, seed "
            f"{cr.cell.seed}) has no numeric metric {metric!r}")
    return float(value)
