"""A certified-pure demo runner: one PACM placement decision per cell.

This is the reference runner for sweep-cell memoization.  It derives a
synthetic cache catalog from the cell's seed alone, scores every entry
with the paper's utility function, and solves the placement knapsack —
no simulator, no registries, no IO, no clock.  The effect analysis
certifies it pure-modulo-seed (``repro.lint`` enforces that via
``effects-require-pure`` in ``pyproject.toml``), which is what lets the
:class:`~repro.runner.memo.Memoizer` replay its cells from cache.

Keep it certifiable when editing: no calls through locals holding
functions, no IO, no globals, no unseeded randomness.
"""

from __future__ import annotations

import random
import typing as _t

from repro.cache.entry import CacheEntry
from repro.cache.knapsack import solve_knapsack
from repro.cache.pacm import utility_of
from repro.httplib.content import DataObject
from repro.runner.registry import register_runner

if _t.TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.runner.spec import Cell

__all__ = ["pacm_demo_cell"]

#: Defaults, overridable through ``params.*`` sweep overrides.
DEFAULT_CATALOG = 64
DEFAULT_CAPACITY_BYTES = 256 * 1024


@register_runner("pacm-demo")
def pacm_demo_cell(cell: "Cell") -> dict[str, object]:
    """Score a seeded synthetic catalog and place it under a knapsack."""
    rng = random.Random(cell.seed)
    catalog = int(_t.cast(int, cell.params.get("catalog",
                                               DEFAULT_CATALOG)))
    capacity = int(_t.cast(int, cell.params.get("capacity_bytes",
                                                DEFAULT_CAPACITY_BYTES)))
    now = 0.0
    entries = []
    frequencies = []
    for number in range(catalog):
        size = rng.randint(512, 64 * 1024)
        ttl = rng.uniform(30.0, 3600.0)
        entries.append(CacheEntry(
            data_object=DataObject(url=f"app{number % 8}/obj{number}",
                                   size_bytes=size),
            app_id=f"app{number % 8}",
            priority=rng.randint(1, 3),
            stored_at=now,
            expires_at=now + ttl,
            fetch_latency_s=rng.uniform(0.010, 0.200)))
        frequencies.append(rng.uniform(0.01, 5.0))
    utilities = [utility_of(entry, frequency, now)
                 for entry, frequency in zip(entries, frequencies)]
    sizes = [entry.size_bytes for entry in entries]
    kept = solve_knapsack(utilities, sizes, capacity)
    kept_utility = sum(utilities[index] for index in kept)
    kept_bytes = sum(sizes[index] for index in kept)
    return {
        "catalog": catalog,
        "kept": len(kept),
        "kept_bytes": kept_bytes,
        "kept_utility": round(kept_utility, 6),
        "total_utility": round(sum(utilities), 6),
        "occupancy": round(kept_bytes / capacity, 6) if capacity else 0.0,
    }
