"""The sweep engine: execute cells in-process or across a worker pool.

Execution contract:

* Cells are **independent** — each builds its own simulator, testbed,
  and system from its picklable spec, so running them in any order, in
  any process, yields the same per-cell numbers.
* Ordering is **deterministic** — results always come back in cell
  index order (the spec's expansion order), whatever the completion
  order across workers, so serial and parallel runs render
  byte-identical tables and JSON.
* The pool is **spawn-based** — workers re-import ``repro`` from
  scratch and resolve systems/runners through the registry; forked
  state (open simulators, RNG positions) can never leak into a cell.

A cell runner returns either a bare metrics dict or an envelope
``{"metrics": ..., "system_name": ..., "telemetry": ...}``; the engine
normalises both into :class:`CellResult`.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import sys
import typing as _t

from repro.errors import ConfigError
from repro.runner.registry import resolve_runner
from repro.runner.spec import Cell, ScenarioSpec

if _t.TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.runner.memo import Memoizer
    from repro.telemetry.registry import Telemetry

__all__ = ["CellResult", "SweepResult", "SweepEngine", "run_cell"]


@dataclasses.dataclass
class CellResult:
    """One executed cell: its spec plus the metrics it produced."""

    cell: Cell
    #: Resolved system name ("-" for system-less runners).
    system_name: str
    #: JSON-able metric name -> value.
    metrics: dict[str, object]
    #: Telemetry metric records, when the cell asked for a snapshot.
    telemetry: list[dict[str, object]] | None = None
    #: Mergeable registry shard (``Telemetry.state_dict``), when the
    #: cell asked for telemetry; folds via ``merged_telemetry``.
    telemetry_state: dict[str, object] | None = None

    def row(self) -> dict[str, object]:
        """Identity columns + metrics, the generic table row shape."""
        row: dict[str, object] = {"scenario": self.cell.scenario,
                                  "system": self.system_name,
                                  "seed": self.cell.seed}
        row.update(self.cell.coords)
        row.update(self.metrics)
        return row


@dataclasses.dataclass
class SweepResult:
    """All cell results of one scenario, in cell-index order."""

    spec: ScenarioSpec
    cells: list[CellResult]

    def by_system(self) -> dict[str, list[CellResult]]:
        grouped: dict[str, list[CellResult]] = {}
        for result in self.cells:
            grouped.setdefault(result.system_name, []).append(result)
        return grouped

    def metric(self, name: str) -> list[object]:
        return [result.metrics.get(name) for result in self.cells]

    def to_json(self) -> str:
        """Deterministic JSON: sorted keys, cells in expansion order."""
        payload = {
            "scenario": self.spec.name,
            "cells": [{
                "index": result.cell.index,
                "system": result.system_name,
                "seed": result.cell.seed,
                "coords": result.cell.coords,
                "metrics": result.metrics,
            } for result in self.cells],
        }
        return json.dumps(payload, sort_keys=True, indent=2, default=str)

    def merged_telemetry(self) -> "Telemetry":
        """Every cell's registry shard folded into one fleet registry.

        Counters/gauges sum, histograms merge (exact sample multisets
        or sketch buckets), and the fold is order-independent — the
        merged registry's exports are byte-identical whether the sweep
        ran serial, pooled, or memoized.  Cells that carried no shard
        (telemetry off, bespoke runners) contribute nothing; raises
        when *no* cell carried one, since silently returning an empty
        registry would read as "the sweep recorded nothing".
        """
        from repro.errors import TelemetryError
        from repro.telemetry.registry import Telemetry

        states = [result.telemetry_state for result in self.cells
                  if result.telemetry_state is not None]
        if not states:
            raise TelemetryError(
                f"sweep {self.spec.name!r} carried no telemetry "
                f"shards (run with telemetry enabled)")
        return Telemetry.from_states(states)


def run_cell(cell: Cell) -> dict[str, object]:
    """Execute one cell in the current process (the pool's map target).

    Returns a plain dict (never a :class:`CellResult`) so the payload
    crossing the process boundary stays primitive and picklable.
    """
    runner = resolve_runner(cell.runner)
    outcome = runner(cell)
    if not isinstance(outcome, dict):
        raise ConfigError(
            f"runner {cell.runner!r} returned {type(outcome).__name__}, "
            "expected a dict of metrics")
    if "metrics" in outcome:
        envelope = dict(outcome)
    else:
        envelope = {"metrics": outcome}
    envelope.setdefault("system_name", cell.system_label())
    envelope["index"] = cell.index
    return envelope


class SweepEngine:
    """Executes a :class:`ScenarioSpec`'s cells and collects results.

    ``jobs=1`` runs everything in-process (no pool, easiest to debug);
    ``jobs>1`` fans cells out over a spawn pool of at most ``jobs``
    workers.  Both paths produce identical :class:`SweepResult`\\ s.

    An optional :class:`~repro.runner.memo.Memoizer` serves cells whose
    runner the effect analysis certified pure-modulo-seed straight from
    its content-addressed cache; uncertified cells always run live.
    """

    def __init__(self, jobs: int = 1, mp_context: str = "spawn",
                 memo: "Memoizer | None" = None) -> None:
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.mp_context = mp_context
        self.memo = memo
        #: Why the last :meth:`run` dropped to serial execution despite
        #: ``jobs>1`` (None when the pool ran or was never requested).
        self.serial_fallback_reason: str | None = None

    def run(self, spec: ScenarioSpec) -> SweepResult:
        cells = spec.expand()
        self.serial_fallback_reason = None
        served: list[dict[str, object]] = []
        pending = cells
        if self.memo is not None:
            pending = []
            for cell in cells:
                envelope = self.memo.lookup(cell)
                if envelope is None:
                    pending.append(cell)
                else:
                    served.append(envelope)
        jobs = self.jobs
        if jobs > 1 and (os.cpu_count() or 1) <= 1:
            # A pool of spawn workers on a single-CPU host only adds
            # process startup cost; run the cells in-process instead.
            self.serial_fallback_reason = (
                f"single-CPU host (os.cpu_count()={os.cpu_count()!r})")
            print(f"sweep {spec.name!r}: falling back to serial "
                  f"execution: {self.serial_fallback_reason}",
                  file=sys.stderr)
            jobs = 1
        if jobs == 1 or len(pending) <= 1:
            envelopes = [run_cell(cell) for cell in pending]
        else:
            envelopes = self._run_pool(pending)
        if self.memo is not None:
            for cell, envelope in zip(pending, envelopes):
                self.memo.record(cell, envelope)
            self.memo.save()
        envelopes = envelopes + served
        by_index = {int(_t.cast(int, envelope["index"])): envelope
                    for envelope in envelopes}
        results = []
        for cell in cells:
            envelope = by_index[cell.index]
            results.append(CellResult(
                cell=cell,
                system_name=_t.cast(str, envelope["system_name"]),
                metrics=_t.cast(dict, envelope["metrics"]),
                telemetry=_t.cast("list | None",
                                  envelope.get("telemetry")),
                telemetry_state=_t.cast(
                    "dict | None", envelope.get("telemetry_state"))))
        return SweepResult(spec=spec, cells=results)

    def _run_pool(self, cells: list[Cell]) -> list[dict[str, object]]:
        context = multiprocessing.get_context(self.mp_context)
        workers = min(self.jobs, len(cells))
        with context.Pool(processes=workers) as pool:
            return pool.map(run_cell, cells)
