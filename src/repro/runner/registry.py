"""Name -> factory registries for systems and cell runners.

Cells travel between processes as data; the registry is how a worker
turns the data back into live objects after ``spawn`` re-imports the
package.  Two registries live here:

* **systems** — the caching architectures under evaluation.  The four
  paper systems register at import; extensions add theirs via
  :func:`register_system`.
* **runners** — functions executing one :class:`~repro.runner.spec.Cell`
  and returning a metrics dict.  Short names cover the built-ins
  (``"workload"``); experiment-specific runners resolve through their
  ``"module:function"`` path, so workers find them by importing the
  module — nothing needs to be registered before the pool starts.
"""

from __future__ import annotations

import importlib
import typing as _t

from repro.errors import ConfigError

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.baselines.base import CachingSystem
    from repro.runner.spec import Cell

__all__ = ["register_system", "resolve_system", "system_names",
           "register_runner", "resolve_runner", "runner_names"]

SystemFactory = _t.Callable[[], "CachingSystem"]
CellRunner = _t.Callable[["Cell"], dict]

_SYSTEMS: dict[str, SystemFactory] = {}
_RUNNERS: dict[str, CellRunner] = {}


def register_system(name: str, factory: SystemFactory,
                    replace: bool = False) -> SystemFactory:
    """Register a caching-system factory under ``name``."""
    if name in _SYSTEMS and _SYSTEMS[name] is not factory and not replace:
        raise ConfigError(f"system {name!r} is already registered")
    _SYSTEMS[name] = factory
    return factory


def _ensure_builtin_systems() -> None:
    """Lazily register the paper's four systems (import-cycle safe)."""
    if _SYSTEMS:
        return
    from repro.baselines import (
        ApeCacheLruSystem,
        ApeCacheSystem,
        EdgeCacheSystem,
        WiCacheSystem,
    )

    register_system("APE-CACHE", ApeCacheSystem)
    register_system("APE-CACHE-LRU", ApeCacheLruSystem)
    register_system("Wi-Cache", WiCacheSystem)
    register_system("Edge Cache", EdgeCacheSystem)


def system_names() -> list[str]:
    """Registered system names, registration order (paper order first)."""
    _ensure_builtin_systems()
    return list(_SYSTEMS)


def resolve_system(ref: str | SystemFactory | None,
                   ) -> "CachingSystem | None":
    """A fresh system instance for ``ref`` (name or factory)."""
    if ref is None:
        return None
    if callable(ref):
        return ref()
    _ensure_builtin_systems()
    try:
        factory = _SYSTEMS[ref]
    except KeyError:
        raise ConfigError(
            f"unknown system {ref!r}; registered: "
            f"{sorted(_SYSTEMS)}") from None
    return factory()


def register_runner(name: str,
                    ) -> _t.Callable[[CellRunner], CellRunner]:
    """Decorator registering a cell runner under a short ``name``."""

    def decorate(func: CellRunner) -> CellRunner:
        existing = _RUNNERS.get(name)
        if existing is not None and existing is not func:
            raise ConfigError(f"runner {name!r} is already registered")
        _RUNNERS[name] = func
        return func

    return decorate


def _ensure_builtin_runners() -> None:
    if "workload" not in _RUNNERS:
        importlib.import_module("repro.runner.cells")
    if "pacm-demo" not in _RUNNERS:
        importlib.import_module("repro.runner.pacm_demo")


def runner_names() -> list[str]:
    """Short-named runners currently registered."""
    _ensure_builtin_runners()
    return sorted(_RUNNERS)


def resolve_runner(name: str) -> CellRunner:
    """Look up a runner: a registered short name or ``module:function``.

    The dotted form imports the module first, so a freshly spawned
    worker resolves experiment-local runners without any pre-seeding.
    """
    _ensure_builtin_runners()
    if name in _RUNNERS:
        return _RUNNERS[name]
    if ":" in name:
        module_name, _, attr = name.partition(":")
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            raise ConfigError(
                f"runner {name!r}: cannot import {module_name!r} "
                f"({exc})") from exc
        if name in _RUNNERS:  # importing may have registered it
            return _RUNNERS[name]
        runner = getattr(module, attr, None)
        if runner is None or not callable(runner):
            raise ConfigError(
                f"runner {name!r}: {module_name!r} has no callable "
                f"{attr!r}")
        return _t.cast(CellRunner, runner)
    raise ConfigError(f"unknown runner {name!r}; registered: "
                      f"{sorted(_RUNNERS)} (or use 'module:function')")
