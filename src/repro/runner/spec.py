"""Scenario declaration and expansion into independent cells.

A :class:`ScenarioSpec` is the declarative description of one sweep:
the base workload, the systems under test, the seed fleet, and the swept
axes.  :meth:`ScenarioSpec.expand` turns it into a flat list of
:class:`Cell` objects — one per (axis point x system x seed) — with a
stable, deterministic ordering that the engine preserves no matter how
cells are scheduled across workers.

Cells are plain picklable dataclasses: a worker process reconstructs
everything it needs from the cell's config and the registry
(:mod:`repro.runner.registry`); no live simulator, testbed, or system
object ever crosses a process boundary.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.apps.workload import WorkloadConfig
from repro.errors import ConfigError

__all__ = ["ScenarioSpec", "SweepPoint", "Cell", "apply_overrides"]

#: Override keys with this prefix target the cell runner's parameters
#: instead of the workload config (e.g. ``params.theta`` for ablation
#: runners whose knob is not a workload field).
PARAMS_PREFIX = "params."

#: Nested workload sections reachable through dotted override keys.
_NESTED_FIELDS = ("dummy_params", "testbed")


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One point of a sweep axis: a display label plus its overrides.

    Plain axis values (floats, ints, strings) are promoted to
    ``SweepPoint(value, {axis_name: value})`` automatically; explicit
    points exist for paired knobs, e.g. a size *range* that sets both
    ``dummy_params.min_size_bytes`` and ``dummy_params.max_size_bytes``.
    """

    label: object
    overrides: _t.Mapping[str, object]


@dataclasses.dataclass(frozen=True)
class Cell:
    """One independent unit of sweep work, picklable end to end."""

    #: Position in the spec's deterministic expansion order.
    index: int
    #: Owning scenario's name (for labelling and logs).
    scenario: str
    #: Cell runner: a registry name or a ``module:function`` path.
    runner: str
    #: Caching system under test: a registry name, a picklable
    #: zero-argument factory (e.g. a top-level class), or ``None`` for
    #: runners that do not install a system.
    system: str | _t.Callable[[], object] | None
    #: Master seed for this cell.
    seed: int
    #: Fully resolved workload configuration (overrides applied).
    workload: WorkloadConfig | None
    #: Runner-specific parameters (must stay picklable).
    params: dict[str, object]
    #: Axis name -> point label, identifying this cell's sweep position.
    coords: dict[str, object]
    #: Capture a telemetry snapshot alongside the metrics.
    telemetry: bool = False

    def system_label(self) -> str:
        if self.system is None:
            return "-"
        if isinstance(self.system, str):
            return self.system
        return getattr(self.system, "__name__", repr(self.system))


@dataclasses.dataclass
class ScenarioSpec:
    """Declarative description of one experiment sweep."""

    #: Scenario name (labels tables, logs, and JSON exports).
    name: str
    #: Systems under test, in output order.  Names resolve through
    #: :func:`repro.runner.registry.resolve_system`; ``(None,)`` runs
    #: system-less cells (measurement studies, static analyses).
    systems: _t.Sequence[str | _t.Callable[[], object] | None] = (
        "APE-CACHE",)
    #: Seed fleet; every (axis point x system) runs once per seed.
    seeds: _t.Sequence[int] = (0,)
    #: Base workload configuration each cell derives from.
    workload: WorkloadConfig | None = dataclasses.field(
        default_factory=WorkloadConfig)
    #: Sweep axes, outermost first: axis name -> points.  Plain values
    #: become single-key overrides; :class:`SweepPoint` carries several.
    axes: _t.Mapping[str, _t.Sequence[object]] = dataclasses.field(
        default_factory=dict)
    #: Spec-wide overrides applied to every cell (dotted keys reach
    #: ``dummy_params.*`` / ``testbed.*``; ``params.*`` reach the runner).
    overrides: _t.Mapping[str, object] = dataclasses.field(
        default_factory=dict)
    #: Cell runner (see :mod:`repro.runner.registry`).
    runner: str = "workload"
    #: Base runner parameters, merged under ``params.*`` overrides.
    params: _t.Mapping[str, object] = dataclasses.field(
        default_factory=dict)
    #: Simulated duration override; ``None`` keeps the workload's own.
    duration_s: float | None = None
    #: Thread a telemetry snapshot through every cell.
    telemetry: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("scenario needs a non-empty name")
        if not self.seeds:
            raise ConfigError(f"scenario {self.name!r}: empty seed list; "
                              "declare at least one seed")
        if len(set(self.seeds)) != len(list(self.seeds)):
            raise ConfigError(f"scenario {self.name!r}: duplicate seeds")
        if not self.systems:
            raise ConfigError(f"scenario {self.name!r}: empty system list")
        self._check_collisions()

    def _check_collisions(self) -> None:
        """Reject overrides that would silently fight a sweep axis."""
        axis_keys: set[str] = set()
        for axis, points in self.axes.items():
            for point in points:
                axis_keys.update(self._point(axis, point).overrides)
        clashes = axis_keys & set(self.overrides)
        if clashes:
            raise ConfigError(
                f"scenario {self.name!r}: overrides {sorted(clashes)} "
                "collide with sweep axes; a per-cell override may not "
                "also be swept")
        if self.duration_s is not None and "duration_s" in axis_keys:
            raise ConfigError(
                f"scenario {self.name!r}: duration_s is both a spec "
                "field and a sweep axis")

    @staticmethod
    def _point(axis: str, point: object) -> SweepPoint:
        if isinstance(point, SweepPoint):
            return point
        return SweepPoint(label=point, overrides={axis: point})

    def axis_points(self) -> list[dict[str, SweepPoint]]:
        """The cross product of all axes, outermost axis slowest."""
        combos: list[dict[str, SweepPoint]] = [{}]
        for axis, points in self.axes.items():
            if not points:
                raise ConfigError(
                    f"scenario {self.name!r}: axis {axis!r} has no points")
            combos = [dict(combo, **{axis: self._point(axis, point)})
                      for combo in combos for point in points]
        return combos

    def expand(self) -> list[Cell]:
        """Enumerate cells: axes (outermost first) x systems x seeds."""
        cells: list[Cell] = []
        base_duration = self.duration_s
        for combo in self.axis_points():
            merged: dict[str, object] = dict(self.overrides)
            for point in combo.values():
                merged.update(point.overrides)
            if base_duration is not None:
                merged.setdefault("duration_s", base_duration)
            workload_overrides = {key: value for key, value
                                  in merged.items()
                                  if not key.startswith(PARAMS_PREFIX)}
            param_overrides = {key[len(PARAMS_PREFIX):]: value
                               for key, value in merged.items()
                               if key.startswith(PARAMS_PREFIX)}
            coords = {axis: point.label for axis, point in combo.items()}
            for system in self.systems:
                for seed in self.seeds:
                    workload = None
                    if self.workload is not None:
                        seeded = apply_overrides(self.workload,
                                                 workload_overrides)
                        workload = dataclasses.replace(
                            seeded, seed=seed,
                            testbed=dataclasses.replace(
                                seeded.testbed, seed=seed))
                    cells.append(Cell(
                        index=len(cells), scenario=self.name,
                        runner=self.runner, system=system, seed=seed,
                        workload=workload,
                        params={**dict(self.params), **param_overrides},
                        coords=coords, telemetry=self.telemetry))
        return cells


def apply_overrides(config: WorkloadConfig,
                    overrides: _t.Mapping[str, object]) -> WorkloadConfig:
    """A copy of ``config`` with dotted/plain overrides applied.

    Plain keys name :class:`WorkloadConfig` fields; dotted keys reach one
    level into ``dummy_params`` or ``testbed``.  Unknown targets raise
    :class:`~repro.errors.ConfigError` — a typo must not silently become
    a no-op sweep.
    """
    plain: dict[str, object] = {}
    nested: dict[str, dict[str, object]] = {}
    field_names = {field.name for field in dataclasses.fields(config)}
    for key, value in overrides.items():
        if "." in key:
            section, _, attr = key.partition(".")
            if section not in _NESTED_FIELDS:
                raise ConfigError(
                    f"override {key!r}: unknown section {section!r} "
                    f"(expected one of {_NESTED_FIELDS})")
            section_value = getattr(config, section)
            valid = {field.name
                     for field in dataclasses.fields(section_value)}
            if attr not in valid:
                raise ConfigError(
                    f"override {key!r}: {type(section_value).__name__} "
                    f"has no field {attr!r}")
            nested.setdefault(section, {})[attr] = value
        else:
            if key not in field_names:
                raise ConfigError(
                    f"override {key!r}: WorkloadConfig has no such field")
            plain[key] = value
    for section, attrs in nested.items():
        if section in plain:
            raise ConfigError(
                f"override {section!r} replaces the whole section while "
                f"{sorted(attrs)} patch inside it; use one or the other")
        plain[section] = dataclasses.replace(getattr(config, section),
                                             **attrs)
    return dataclasses.replace(config, **plain) if plain else config
