"""Content-addressed memoization of sweep cells, gated by certification.

A sweep cell is a pure function of its spec **only if** its runner (and
everything the runner transitively calls) is certified pure-modulo-seed
by the effect analysis (:mod:`repro.lint.program.effects`).  The
:class:`Memoizer` enforces exactly that contract:

* The certification source of truth is the ``build/effects.json``
  manifest the linter emits.  A runner whose manifest entry is missing,
  uncertified, or **stale** (any file in its transitive code closure
  changed since the manifest was generated) is never served from cache
  — those cells always run live, silently.
* A cell's cache key is the SHA-256 over its JSON identity (runner,
  system label, seed, workload, params, coords, telemetry flag — the
  envelope index and scenario name are excluded: the same cell under a
  renamed scenario is still the same computation) **plus** the runner's
  closure digest, so editing any file the runner depends on
  automatically invalidates its cells.
* The cache file is plain JSON and corruption-tolerant: an unreadable,
  truncated, or version-mismatched file behaves as an empty cache.

The memo layer deliberately does not import the linter at runtime — it
only reads the manifest file — so sweeps stay importable in stripped
environments.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runner.spec import Cell

__all__ = ["MEMO_VERSION", "MemoStats", "MemoCache", "Memoizer"]

#: Bump to invalidate every existing cache entry (key derivation or
#: envelope schema changes).
MEMO_VERSION = 1

#: Default locations, relative to the project root.
DEFAULT_CACHE = "build/sweep-memo.json"
DEFAULT_MANIFEST = "build/effects.json"


@dataclasses.dataclass
class MemoStats:
    """Accounting for one sweep through the memo layer."""

    #: Cells served from cache (not executed).
    hits: int = 0
    #: Certified cells that had to run (and were then stored).
    misses: int = 0
    #: Cells whose runner is not certified — always executed live.
    uncertified: int = 0

    def executed(self) -> int:
        return self.misses + self.uncertified

    def summary(self) -> str:
        return (f"memo: {self.hits} hit(s), {self.misses} miss(es), "
                f"{self.uncertified} uncertified cell(s); "
                f"{self.executed()} executed live")


class MemoCache:
    """The on-disk JSON store: key → result envelope."""

    def __init__(self, path: pathlib.Path) -> None:
        self.path = path
        self._entries: dict[str, dict[str, object]] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            document = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(document, dict) \
                or document.get("version") != MEMO_VERSION:
            return
        cells = document.get("cells")
        if not isinstance(cells, dict):
            return
        for key, envelope in cells.items():
            if isinstance(envelope, dict):
                self._entries[str(key)] = envelope

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: str) -> dict[str, object] | None:
        """A deep copy of the stored envelope, or None."""
        envelope = self._entries.get(key)
        if envelope is None:
            return None
        return _t.cast("dict[str, object]",
                       json.loads(json.dumps(envelope)))

    def store(self, key: str, envelope: dict[str, object]) -> None:
        self._entries[key] = envelope
        self._dirty = True

    def save(self) -> None:
        """Persist (only when something changed since load)."""
        if not self._dirty:
            return
        payload = {
            "version": MEMO_VERSION,
            "cells": {key: self._entries[key]
                      for key in sorted(self._entries)},
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        self._dirty = False


def _find_root(start: pathlib.Path) -> pathlib.Path:
    """Nearest ancestor holding ``pyproject.toml`` (manifest paths are
    stored repo-relative)."""
    start = start.resolve()
    if start.is_file():  # pragma: no cover - callers pass directories
        start = start.parent
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return start


def _file_digest(path: pathlib.Path) -> str | None:
    try:
        return hashlib.sha256(path.read_bytes()).hexdigest()
    except OSError:
        return None


class Memoizer:
    """Certification lookups + the cell-level cache protocol.

    The :class:`~repro.runner.engine.SweepEngine` calls :meth:`lookup`
    before executing a cell and :meth:`record` after; everything else
    (manifest parsing, staleness, key derivation) is internal.
    """

    def __init__(self, cache_path: pathlib.Path | str | None = None,
                 manifest_path: pathlib.Path | str | None = None,
                 root: pathlib.Path | None = None) -> None:
        self.root = root if root is not None \
            else _find_root(pathlib.Path.cwd())
        self.cache = MemoCache(
            pathlib.Path(cache_path) if cache_path is not None
            else self.root / DEFAULT_CACHE)
        manifest = pathlib.Path(manifest_path) \
            if manifest_path is not None else self.root / DEFAULT_MANIFEST
        self.manifest_path = manifest
        self._manifest = self._load_manifest(manifest)
        self.stats = MemoStats()
        #: runner ref → closure digest (certified) or None; memoized.
        self._digests: dict[str, str | None] = {}

    @staticmethod
    def _load_manifest(path: pathlib.Path) -> dict[str, _t.Any] | None:
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(document, dict) \
                or not isinstance(document.get("functions"), dict) \
                or not isinstance(document.get("generated_from"), dict):
            return None
        return document

    # -- certification ---------------------------------------------------
    def closure_digest(self, runner_ref: str) -> str | None:
        """The certified runner's closure digest, or None.

        None means "do not memoize": unknown runner, uncertified, or a
        stale manifest (some closure file changed on disk).
        """
        if runner_ref in self._digests:
            return self._digests[runner_ref]
        digest = self._certify(runner_ref)
        self._digests[runner_ref] = digest
        return digest

    def _certify(self, runner_ref: str) -> str | None:
        if self._manifest is None:
            return None
        try:
            from repro.runner.registry import resolve_runner
            runner = resolve_runner(runner_ref)
        except Exception:  # noqa: BLE001 - unknown runner: run live
            return None
        qualname = f"{runner.__module__}.{runner.__qualname__}"
        entry = self._manifest["functions"].get(qualname)
        if not isinstance(entry, dict) or not entry.get("certified"):
            return None
        digest = entry.get("closure_digest")
        closure_paths = entry.get("closure_paths")
        if not isinstance(digest, str) \
                or not isinstance(closure_paths, list):
            return None
        recorded = self._manifest["generated_from"]
        for relpath in closure_paths:
            expected = recorded.get(relpath)
            actual = _file_digest(self.root / str(relpath))
            if expected is None or actual != expected:
                return None  # closure changed since certification
        return digest

    # -- cell protocol ---------------------------------------------------
    def _cell_key(self, cell: "Cell",
                  closure_digest: str) -> str | None:
        if cell.system is not None and not isinstance(cell.system, str):
            return None  # a live factory object has no stable identity
        identity = {
            "runner": cell.runner,
            "system": cell.system_label(),
            "seed": cell.seed,
            "workload": dataclasses.asdict(cell.workload)
            if cell.workload is not None else None,
            "params": cell.params,
            "coords": cell.coords,
            "telemetry": cell.telemetry,
        }
        try:
            blob = json.dumps(identity, sort_keys=True)
        except (TypeError, ValueError):
            return None  # non-JSON params: identity is not stable
        seed = f"{MEMO_VERSION}|{closure_digest}|{blob}"
        return hashlib.sha256(seed.encode("utf-8")).hexdigest()

    def lookup(self, cell: "Cell") -> dict[str, object] | None:
        """The cached envelope for ``cell`` (index rewritten), or None."""
        digest = self.closure_digest(cell.runner)
        if digest is None:
            self.stats.uncertified += 1
            return None
        key = self._cell_key(cell, digest)
        if key is None:
            self.stats.uncertified += 1
            return None
        envelope = self.cache.lookup(key)
        if envelope is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        envelope["index"] = cell.index
        return envelope

    def record(self, cell: "Cell",
               envelope: dict[str, object]) -> None:
        """Store a freshly executed certified cell's envelope."""
        digest = self.closure_digest(cell.runner)
        if digest is None:
            return
        key = self._cell_key(cell, digest)
        if key is None:
            return
        stored = {name: value for name, value in envelope.items()
                  if name != "index"}
        try:
            canonical = json.loads(json.dumps(stored))
        except (TypeError, ValueError):
            return  # non-JSON result payload: not safely replayable
        self.cache.store(key, canonical)

    def save(self) -> None:
        self.cache.save()
