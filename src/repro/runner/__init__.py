"""Declarative scenario engine: specs -> cells -> fan-out -> reduce.

Every experiment in this repository is, at heart, the same shape: a
parameter sweep over (systems x seeds x one or two workload axes), each
cell an independent simulation whose metrics fold back into a paper
table.  This package makes that shape first-class:

* :mod:`repro.runner.spec` — :class:`ScenarioSpec` declares the sweep;
  :meth:`ScenarioSpec.expand` enumerates deterministic :class:`Cell`\\ s.
* :mod:`repro.runner.registry` — names -> system factories and cell
  runners, so cells travel between processes as picklable specs, never
  live objects.
* :mod:`repro.runner.engine` — :class:`SweepEngine` executes cells
  in-process or across a spawn-safe ``multiprocessing`` pool; results
  come back in cell order regardless of completion order.
* :mod:`repro.runner.reduce` — folds per-cell metric dicts into
  :class:`~repro.experiments.common.ExperimentTable` rows and
  :class:`~repro.analysis.multiseed.MultiSeedResult` samples.

See ``docs/experiments.md`` for the schema and the determinism
guarantees.
"""

from repro.runner.engine import CellResult, SweepEngine, SweepResult
from repro.runner.registry import (
    register_runner,
    register_system,
    resolve_runner,
    resolve_system,
    system_names,
)
from repro.runner.spec import Cell, ScenarioSpec, SweepPoint
from repro.runner.reduce import (
    fold_multiseed,
    sweep_table,
    cells_table,
)

__all__ = [
    "Cell",
    "CellResult",
    "ScenarioSpec",
    "SweepEngine",
    "SweepPoint",
    "SweepResult",
    "cells_table",
    "fold_multiseed",
    "register_runner",
    "register_system",
    "resolve_runner",
    "resolve_system",
    "sweep_table",
    "system_names",
]
