"""Built-in cell runners and the one sanctioned ``Workload`` call site.

A *cell runner* is a plain function ``(Cell) -> dict`` executing one
unit of sweep work and returning JSON-able metrics.  Experiment modules
with bespoke measurement loops (probes, resource samplers, offline
replays) define their own runners next to the experiment and reference
them by ``"module:function"`` path; everything workload-shaped goes
through :func:`workload_cell` here.

Direct ``Workload(...).run(...)`` orchestration inside
``src/repro/experiments/`` is flagged by lint rule SIM003 — experiment
runners call :func:`execute_workload` instead, which keeps the engine
the single place workloads are driven from (and the single place
per-cell telemetry is threaded through).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.apps.workload import Workload, WorkloadConfig, WorkloadResult
from repro.errors import ConfigError
from repro.runner.registry import register_runner, resolve_system
from repro.runner.spec import Cell

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.baselines.base import CachingSystem

__all__ = ["execute_workload", "workload_cell", "telemetry_snapshot",
           "telemetry_state"]

ProcessFactory = _t.Callable[..., _t.Generator[object, object, object]]


def execute_workload(config: WorkloadConfig,
                     system: "CachingSystem",
                     extra_processes: _t.Sequence[ProcessFactory] = (),
                     ) -> tuple[WorkloadResult, Workload]:
    """Run one workload cell; returns the result and its driver.

    The returned :class:`~repro.apps.workload.Workload` still holds the
    finished testbed (``_last_bed``), which is how runners reach the
    telemetry registry or system runtimes for cell-local post-analysis.
    """
    workload = Workload(config)
    result = workload.run(system, extra_processes=extra_processes)
    return result, workload


def telemetry_snapshot(workload: Workload) -> list[dict[str, object]]:
    """The finished run's metric records (deterministic ordering)."""
    from repro.telemetry.export import metric_records

    bed = getattr(workload, "_last_bed", None)
    if bed is None:
        return []
    return metric_records(bed.telemetry)


def telemetry_state(workload: Workload) -> dict[str, object] | None:
    """The finished run's mergeable registry shard.

    This is the raw :meth:`~repro.telemetry.Telemetry.state_dict` —
    unlike :func:`telemetry_snapshot`'s rendered records it can be
    *folded*: the engine merges every cell's shard into one fleet
    registry (``SweepResult.merged_telemetry``), byte-identically
    regardless of worker count or completion order.
    """
    bed = getattr(workload, "_last_bed", None)
    if bed is None or not bed.telemetry.enabled:
        return None
    return bed.telemetry.state_dict()


@register_runner("workload")
def workload_cell(cell: Cell) -> dict[str, object]:
    """The default runner: one seeded workload run against one system.

    Metrics are the run's :meth:`~repro.apps.workload.WorkloadResult.
    summary` plus ``ap:``-prefixed AP cache statistics.  Params:

    * ``app_metrics`` — app ids whose per-app mean/p95 latency to add
      as ``app:<id>:mean_ms`` / ``app:<id>:p95_ms`` (Fig. 12 shape).
    """
    if cell.workload is None:
        raise ConfigError(f"cell {cell.index} of {cell.scenario!r} has "
                          "no workload config")
    if cell.system is None:
        raise ConfigError(f"cell {cell.index} of {cell.scenario!r} "
                          "names no system to evaluate")
    config = cell.workload
    if cell.telemetry and not config.testbed.enable_telemetry:
        config = dataclasses.replace(
            config, testbed=dataclasses.replace(config.testbed,
                                                enable_telemetry=True))
    system = resolve_system(cell.system)
    assert system is not None
    result, workload = execute_workload(config, system)

    metrics: dict[str, object] = dict(result.summary())
    for key, value in sorted(result.ap_stats.items()):
        metrics[f"ap:{key}"] = value
    for app_id in _t.cast(_t.Sequence[str],
                          cell.params.get("app_metrics", ())):
        metrics[f"app:{app_id}:mean_ms"] = \
            result.mean_app_latency_s(app_id) * 1e3
        metrics[f"app:{app_id}:p95_ms"] = \
            result.tail_app_latency_s(app_id) * 1e3
    payload: dict[str, object] = {"system_name": system.name,
                                  "metrics": metrics}
    if cell.telemetry:
        payload["telemetry"] = telemetry_snapshot(workload)
        payload["telemetry_state"] = telemetry_state(workload)
    return payload
