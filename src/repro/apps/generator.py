"""The dummy-app generator (paper Section V-A).

"To expand our evaluation, we developed a dummy app generator and
synthesized 28 apps with specific characteristics based on given input
parameters.  For each app, we generated cacheable objects with randomly
assigned attributes, including size, TTL, and retrieval latency. [...]
The retrieval latency was set to range between 20 ms and 50 ms, TTL
varied from 10 minutes to 60 minutes, and object sizes spanned from 1 kb
to 100 kb.  The priority for each object was assigned as 1 or 2 based on
the critical path of the app."
"""

from __future__ import annotations

import dataclasses
import random as _random

from repro.apps.model import AppSpec, ObjectSpec
from repro.errors import ConfigError
from repro.sim.kernel import MINUTE, MS

__all__ = ["DummyAppParams", "generate_app", "generate_apps"]

KB = 1024


@dataclasses.dataclass
class DummyAppParams:
    """Attribute ranges for synthesized apps (paper defaults)."""

    min_objects: int = 5
    max_objects: int = 10
    min_size_bytes: int = 1 * KB
    max_size_bytes: int = 100 * KB
    min_ttl_s: float = 10 * MINUTE
    max_ttl_s: float = 60 * MINUTE
    min_origin_delay_s: float = 20 * MS
    max_origin_delay_s: float = 50 * MS
    compose_time_s: float = 5 * MS
    #: Probability an object (beyond the root) starts a second stage
    #: depending on a first-stage object rather than on the root.
    deep_stage_probability: float = 0.3

    def __post_init__(self) -> None:
        if not 2 <= self.min_objects <= self.max_objects:
            raise ConfigError("need 2 <= min_objects <= max_objects")
        if not 0 < self.min_size_bytes <= self.max_size_bytes:
            raise ConfigError("bad size range")
        if not 0 < self.min_ttl_s <= self.max_ttl_s:
            raise ConfigError("bad TTL range")
        if not 0 <= self.min_origin_delay_s <= self.max_origin_delay_s:
            raise ConfigError("bad origin-delay range")


def generate_app(app_id: str, rng: _random.Random,
                 params: DummyAppParams | None = None) -> AppSpec:
    """Synthesize one app with a root-lookup + fan-out(+deep) DAG.

    Each app gets its own domain (``<app_id>.example``) so DNS-Cache
    batching operates per app, as it would with real per-service APIs.
    """
    params = params or DummyAppParams()
    count = rng.randint(params.min_objects, params.max_objects)
    base = f"http://{app_id}.example"

    def sample_object(name: str, depends_on: tuple[str, ...],
                      size_range: tuple[int, int] | None = None,
                      ) -> ObjectSpec:
        low, high = size_range or (params.min_size_bytes,
                                   params.max_size_bytes)
        return ObjectSpec(
            name=name,
            url=f"{base}/{name}",
            size_bytes=rng.randint(low, high),
            priority=1,
            ttl_s=rng.uniform(params.min_ttl_s, params.max_ttl_s),
            origin_delay_s=rng.uniform(params.min_origin_delay_s,
                                       params.max_origin_delay_s),
            depends_on=depends_on)

    # Root lookup object: small, like MovieTrailer's movieID.
    objects = [sample_object(
        "root", (), size_range=(params.min_size_bytes,
                                max(params.min_size_bytes, 2 * KB)))]
    first_stage: list[str] = []
    for index in range(1, count):
        name = f"obj{index}"
        if first_stage and rng.random() < params.deep_stage_probability:
            parent = rng.choice(first_stage)
            objects.append(sample_object(name, (parent,)))
        else:
            objects.append(sample_object(name, ("root",)))
            first_stage.append(name)

    app = AppSpec(app_id=app_id, objects=objects,
                  compose_time_s=params.compose_time_s)
    # "The priority for each object was assigned as 1 or 2 based on the
    # critical path of the app."
    return app.with_priorities_from_critical_path()


def generate_apps(count: int, seed: int = 0,
                  params: DummyAppParams | None = None,
                  prefix: str = "dummyapp") -> list[AppSpec]:
    """Synthesize ``count`` apps deterministically from ``seed``."""
    if count < 0:
        raise ConfigError(f"count must be >= 0, got {count}")
    rng = _random.Random(seed)
    return [generate_app(f"{prefix}{index:02d}", rng, params)
            for index in range(count)]
