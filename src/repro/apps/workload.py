"""The evaluation workload driver (paper Section V-A "Apps and Execution").

Builds the app suite (two real apps + synthesized dummy apps), deploys a
caching system on a fresh testbed, hosts every object, and drives app
executions with Zipf-skewed popularity: per-app execution rates are
proportional to ``1/rank^s`` and scaled so the *average* rate across apps
matches the configured frequency (3 executions/min in the paper).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.apps.executor import AppExecution, AppRunner
from repro.apps.generator import DummyAppParams, generate_apps
from repro.apps.model import AppSpec
from repro.apps.movietrailer import movietrailer_app
from repro.apps.virtualhome import virtualhome_app
from repro.baselines.base import CachingSystem
from repro.core.client_runtime import FetchResult
from repro.errors import ConfigError
from repro.sim.kernel import HOUR
from repro.sim.monitor import percentile
from repro.sim.randomness import ZipfSampler
from repro.testbed import Testbed, TestbedConfig

__all__ = ["WorkloadConfig", "WorkloadResult", "Workload", "FetchRecord",
           "zipf_rates"]


def zipf_rates(n_apps: int, zipf_exponent: float,
               avg_frequency_per_min: float) -> list[float]:
    """Per-app execution rates (per second), Zipf-skewed by rank,
    averaging to ``avg_frequency_per_min`` across apps."""
    sampler = ZipfSampler(n_apps, zipf_exponent)
    weights = [sampler.probability(rank)
               for rank in range(1, n_apps + 1)]
    total_per_min = avg_frequency_per_min * n_apps
    return [(total_per_min * weight) / 60.0 for weight in weights]


@dataclasses.dataclass
class WorkloadConfig:
    """Parameters of one evaluation run."""

    #: Total number of apps (paper default: 30 = 2 real + 28 dummies).
    n_apps: int = 30
    #: Whether MovieTrailer and VirtualHome are part of the suite.
    include_real_apps: bool = True
    #: Average app execution frequency, per minute, across all apps.
    avg_frequency_per_min: float = 3.0
    #: Zipf exponent for app popularity skew.
    zipf_exponent: float = 0.8
    #: Simulated duration of the run (paper: one hour).
    duration_s: float = 1 * HOUR
    #: Dummy-app attribute ranges.
    dummy_params: DummyAppParams = dataclasses.field(
        default_factory=DummyAppParams)
    #: Testbed shape.
    testbed: TestbedConfig = dataclasses.field(default_factory=TestbedConfig)
    #: Master seed.
    seed: int = 0

    def __post_init__(self) -> None:
        minimum = 2 if self.include_real_apps else 1
        if self.n_apps < minimum:
            raise ConfigError(f"n_apps must be >= {minimum}")
        if self.avg_frequency_per_min <= 0:
            raise ConfigError("avg frequency must be positive")
        if self.duration_s <= 0:
            raise ConfigError("duration must be positive")


@dataclasses.dataclass
class FetchRecord:
    """One object fetch with its app context."""

    app_id: str
    object_name: str
    priority: int
    result: FetchResult


class WorkloadResult:
    """Everything the experiments need from one run."""

    def __init__(self, system_name: str, config: WorkloadConfig) -> None:
        self.system_name = system_name
        self.config = config
        self.executions: list[AppExecution] = []
        self.fetches: list[FetchRecord] = []
        self.ap_stats: dict[str, float] = {}

    # -- app-level ------------------------------------------------------
    def app_latencies_s(self, app_id: str | None = None) -> list[float]:
        return [execution.latency_s for execution in self.executions
                if app_id is None or execution.app_id == app_id]

    def mean_app_latency_s(self, app_id: str | None = None) -> float:
        latencies = self.app_latencies_s(app_id)
        if not latencies:
            raise ConfigError("no executions recorded")
        return sum(latencies) / len(latencies)

    def tail_app_latency_s(self, app_id: str | None = None,
                           q: float = 95.0) -> float:
        return percentile(self.app_latencies_s(app_id), q)

    # -- object-level ---------------------------------------------------
    def mean_lookup_s(self) -> float:
        return self._mean(record.result.lookup_latency_s
                          for record in self.fetches)

    def mean_retrieval_s(self) -> float:
        return self._mean(record.result.retrieval_latency_s
                          for record in self.fetches)

    def mean_object_latency_s(self) -> float:
        return self._mean(record.result.total_latency_s
                          for record in self.fetches)

    def hit_ratio(self, only_high_priority: bool = False) -> float:
        relevant = [record for record in self.fetches
                    if not only_high_priority or record.priority >= 2]
        if not relevant:
            return 0.0
        hits = sum(1 for record in relevant if record.result.cache_hit)
        return hits / len(relevant)

    @staticmethod
    def _mean(values: _t.Iterable[float]) -> float:
        collected = list(values)
        if not collected:
            raise ConfigError("no fetches recorded")
        return sum(collected) / len(collected)

    def summary(self) -> dict[str, float]:
        return {
            "executions": float(len(self.executions)),
            "fetches": float(len(self.fetches)),
            "mean_app_latency_ms": self.mean_app_latency_s() * 1e3,
            "p95_app_latency_ms": self.tail_app_latency_s() * 1e3,
            "mean_lookup_ms": self.mean_lookup_s() * 1e3,
            "mean_retrieval_ms": self.mean_retrieval_s() * 1e3,
            "mean_object_latency_ms": self.mean_object_latency_s() * 1e3,
            "hit_ratio": self.hit_ratio(),
            "hit_ratio_high_priority": self.hit_ratio(
                only_high_priority=True),
        }


class Workload:
    """Builds the app suite and runs it against caching systems."""

    def __init__(self, config: WorkloadConfig | None = None) -> None:
        self.config = config or WorkloadConfig()
        self.apps = self._build_apps()

    def _build_apps(self) -> list[AppSpec]:
        cfg = self.config
        apps: list[AppSpec] = []
        if cfg.include_real_apps:
            apps.append(movietrailer_app())
            apps.append(virtualhome_app())
        dummy_count = cfg.n_apps - len(apps)
        apps.extend(generate_apps(dummy_count, seed=cfg.seed,
                                  params=cfg.dummy_params))
        return apps

    def run(self, system: CachingSystem,
            extra_processes: _t.Sequence[
                _t.Callable[[Testbed, CachingSystem],
                            _t.Generator[object, object, object]]] = (),
            ) -> WorkloadResult:
        """Execute the configured workload against ``system``.

        ``extra_processes`` are generator factories started alongside the
        app drivers — probes (Fig. 11) and resource samplers (Fig. 14)
        hook in here without perturbing the workload itself.
        """
        cfg = self.config
        bed = Testbed(dataclasses.replace(cfg.testbed, seed=cfg.seed))
        system.install(bed)
        result = WorkloadResult(system.name, cfg)

        rates = self._per_app_rates()
        for app, rate_per_s in zip(self.apps, rates):
            node = bed.add_client(f"client-{app.app_id}")
            fetcher = system.new_fetcher(bed, node, app.app_id)
            runner = AppRunner(bed.sim, app, fetcher)
            for obj in app.objects:
                bed.host_object(obj.url, obj.size_bytes,
                                origin_delay_s=obj.origin_delay_s)
            bed.sim.process(self._drive(bed, app, runner, rate_per_s,
                                        result))
        for factory in extra_processes:
            bed.sim.process(factory(bed, system))
        bed.run(until=cfg.duration_s)
        result.ap_stats = system.ap_cache_stats()
        self._last_bed = bed
        return result

    def _per_app_rates(self) -> list[float]:
        return zipf_rates(len(self.apps), self.config.zipf_exponent,
                          self.config.avg_frequency_per_min)

    def _drive(self, bed: Testbed, app: AppSpec, runner: AppRunner,
               rate_per_s: float, result: WorkloadResult,
               ) -> _t.Generator[object, object, None]:
        rng = bed.streams.stream(f"arrivals:{app.app_id}")
        priorities = {obj.name: obj.priority for obj in app.objects}
        while True:
            yield bed.sim.timeout(rng.expovariate(rate_per_s))
            execution = yield bed.sim.process(runner.execute())
            typed = _t.cast(AppExecution, execution)
            result.executions.append(typed)
            for name, fetch in typed.fetches.items():
                result.fetches.append(FetchRecord(
                    app.app_id, name, priorities[name], fetch))

    def total_object_bytes(self) -> int:
        return sum(app.total_bytes() for app in self.apps)
