"""MovieTrailer — the paper's motivating real-world app (Fig. 3).

Given a movie name the app resolves a movie id, then concurrently fetches
rating, plot, cast, and thumbnail, and composes the UI.  The critical
path is ``getMovieID -> getThumbnail`` (the thumbnail is by far the
largest object), so ``movieID`` and ``thumbnail`` carry high priority —
exactly Table III's assignment.
"""

from __future__ import annotations

from repro.apps.model import AppSpec, ObjectSpec
from repro.core.annotations import HIGH_PRIORITY, LOW_PRIORITY, cacheable
from repro.sim.kernel import MINUTE, MS

__all__ = ["movietrailer_app", "MovieTrailerApi", "TOP_MOVIES"]

#: Stand-in for the IMDB top-10 list the paper samples user inputs from.
TOP_MOVIES = (
    "the-shawshank-redemption", "the-godfather", "the-dark-knight",
    "the-godfather-part-ii", "twelve-angry-men", "schindlers-list",
    "the-lord-of-the-rings-the-return-of-the-king", "pulp-fiction",
    "the-good-the-bad-and-the-ugly", "fight-club",
)

_API = "http://api.movietrailer.example"
_IMG = "http://img.movietrailer.example"


def movietrailer_app(app_id: str = "movietrailer",
                     domain_suffix: str = "") -> AppSpec:
    """The MovieTrailer fetch DAG.

    ``domain_suffix`` disambiguates domains when several instances of the
    app run against one AP (e.g. two phones in the Fig. 9 testbed).
    """
    api = _API.replace(".example", f"{domain_suffix}.example")
    img = _IMG.replace(".example", f"{domain_suffix}.example")
    return AppSpec(app_id=app_id, objects=[
        ObjectSpec("movieID", f"{api}/id", size_bytes=256,
                   priority=HIGH_PRIORITY, ttl_s=30 * MINUTE,
                   origin_delay_s=22 * MS),
        ObjectSpec("rating", f"{api}/rating", size_bytes=1 * 1024,
                   priority=LOW_PRIORITY, ttl_s=30 * MINUTE,
                   origin_delay_s=24 * MS, depends_on=("movieID",)),
        ObjectSpec("plot", f"{api}/plot", size_bytes=4 * 1024,
                   priority=LOW_PRIORITY, ttl_s=30 * MINUTE,
                   origin_delay_s=26 * MS, depends_on=("movieID",)),
        ObjectSpec("cast", f"{api}/cast", size_bytes=8 * 1024,
                   priority=LOW_PRIORITY, ttl_s=30 * MINUTE,
                   origin_delay_s=28 * MS, depends_on=("movieID",)),
        ObjectSpec("thumbnail", f"{img}/thumb", size_bytes=64 * 1024,
                   priority=HIGH_PRIORITY, ttl_s=60 * MINUTE,
                   origin_delay_s=45 * MS, depends_on=("movieID",)),
    ], compose_time_s=5 * MS)


class MovieTrailerApi:
    """The annotation-based declaration (paper Fig. 4/6 equivalent).

    These five declarations are the *entire* APE-CACHE integration of the
    app — the "Impacted LoCs = 5" row of Table VII.
    """

    movie_id = cacheable(f"{_API}/id", priority=HIGH_PRIORITY,
                         ttl_minutes=30)
    rating = cacheable(f"{_API}/rating", priority=LOW_PRIORITY,
                       ttl_minutes=30)
    plot = cacheable(f"{_API}/plot", priority=LOW_PRIORITY,
                     ttl_minutes=30)
    cast = cacheable(f"{_API}/cast", priority=LOW_PRIORITY,
                     ttl_minutes=30)
    thumbnail = cacheable(f"{_IMG}/thumb", priority=HIGH_PRIORITY,
                          ttl_minutes=60)

    def fetch_movie(self, http, movie_name: str):
        """Unmodified app logic: id first, then four concurrent fetches.

        A simulation generator; ``http`` is any interceptor-equipped
        :class:`~repro.httplib.client.HttpClient`.
        """
        sim = http.sim
        id_response = yield from http.get(
            f"{self.movie_id}?name={movie_name}")
        movie = id_response.require_body()
        detail_urls = (self.rating, self.plot, self.cast, self.thumbnail)
        processes = [sim.process(http.get(f"{url}?id={movie.version}"))
                     for url in detail_urls]
        yield sim.all_of(processes)
        return [p.value for p in processes]
