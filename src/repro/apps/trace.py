"""Network-free request traces of the evaluation workload.

Feeds :mod:`repro.cache.offline`: the same apps, Zipf-skewed Poisson
execution rates, and seeds as the full simulation, reduced to a sorted
stream of :class:`~repro.cache.offline.TraceRequest` records.
"""

from __future__ import annotations

import hashlib
import random as _random
import typing as _t

from repro.errors import CacheError
from repro.apps.model import AppSpec
from repro.apps.workload import zipf_rates
from repro.cache.offline import TraceRequest

__all__ = ["generate_request_trace"]


def generate_request_trace(apps: _t.Sequence[AppSpec],
                           duration_s: float,
                           avg_frequency_per_min: float = 3.0,
                           zipf_exponent: float = 0.8,
                           seed: int = 0) -> list[TraceRequest]:
    """The evaluation workload's request stream, network-free.

    Apps execute at Zipf-skewed Poisson rates; every execution requests
    each of the app's objects once (at the execution instant — the
    DAG's intra-execution stagger is below cache-decision resolution).
    """
    if duration_s <= 0:
        raise CacheError(f"duration must be positive, got {duration_s}")
    rates = zipf_rates(len(apps), zipf_exponent, avg_frequency_per_min)
    trace: list[TraceRequest] = []
    for app, rate_per_s in zip(apps, rates):
        digest = hashlib.sha256(
            f"{seed}:{app.app_id}".encode()).digest()
        rng = _random.Random(int.from_bytes(digest[:8], "big"))
        now = rng.expovariate(rate_per_s)
        while now < duration_s:
            for obj in app.objects:
                trace.append(TraceRequest(
                    time_s=now, url=obj.url, app_id=app.app_id,
                    size_bytes=obj.size_bytes, priority=obj.priority,
                    ttl_s=obj.ttl_s,
                    fetch_latency_s=obj.origin_delay_s))
            now += rng.expovariate(rate_per_s)
    trace.sort(key=lambda request: request.time_s)
    return trace
