"""App workloads: DAG model, executor, real apps, generator, driver."""

from repro.apps.executor import AppExecution, AppRunner
from repro.apps.generator import DummyAppParams, generate_app, generate_apps
from repro.apps.model import AppSpec, ObjectSpec
from repro.apps.movietrailer import (
    TOP_MOVIES,
    MovieTrailerApi,
    movietrailer_app,
)
from repro.apps.virtualhome import (
    PRODUCT_CATEGORIES,
    VirtualHomeApi,
    virtualhome_app,
)
from repro.apps.workload import (
    FetchRecord,
    Workload,
    WorkloadConfig,
    WorkloadResult,
)

__all__ = [
    "AppExecution",
    "AppRunner",
    "AppSpec",
    "DummyAppParams",
    "FetchRecord",
    "MovieTrailerApi",
    "ObjectSpec",
    "PRODUCT_CATEGORIES",
    "TOP_MOVIES",
    "VirtualHomeApi",
    "Workload",
    "WorkloadConfig",
    "WorkloadResult",
    "generate_app",
    "generate_apps",
    "movietrailer_app",
    "virtualhome_app",
]
