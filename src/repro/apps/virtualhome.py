"""VirtualHome — the paper's second real-world app (Fig. 10, Table III).

An AR furnishing app: the user picks a product category, the app resolves
the category to a list of AR object ids, then fetches the AR objects
themselves (large meshes/textures) and renders them into the camera view.
Critical path: ``getARObjectsID -> getARObjects``; Table III assigns
``ARObjects`` high priority and ``ARObjectsID`` low priority.
"""

from __future__ import annotations

from repro.apps.model import AppSpec, ObjectSpec
from repro.core.annotations import HIGH_PRIORITY, LOW_PRIORITY, cacheable
from repro.sim.kernel import MINUTE, MS

__all__ = ["virtualhome_app", "VirtualHomeApi", "PRODUCT_CATEGORIES"]

#: Categories the paper samples user inputs from.
PRODUCT_CATEGORIES = (
    "sofas", "tables", "chairs", "lamps", "shelves", "beds", "desks",
    "rugs", "plants", "artwork",
)

_API = "http://api.virtualhome.example"
_CDN = "http://assets.virtualhome.example"


def virtualhome_app(app_id: str = "virtualhome",
                    domain_suffix: str = "") -> AppSpec:
    """The VirtualHome fetch DAG."""
    api = _API.replace(".example", f"{domain_suffix}.example")
    cdn = _CDN.replace(".example", f"{domain_suffix}.example")
    return AppSpec(app_id=app_id, objects=[
        ObjectSpec("categories", f"{api}/categories", size_bytes=2 * 1024,
                   priority=LOW_PRIORITY, ttl_s=60 * MINUTE,
                   origin_delay_s=20 * MS),
        ObjectSpec("ARObjectsID", f"{api}/ar-objects-id",
                   size_bytes=1 * 1024, priority=LOW_PRIORITY,
                   ttl_s=30 * MINUTE, origin_delay_s=25 * MS,
                   depends_on=("categories",)),
        ObjectSpec("ARObjects", f"{cdn}/ar-objects",
                   size_bytes=96 * 1024, priority=HIGH_PRIORITY,
                   ttl_s=60 * MINUTE, origin_delay_s=48 * MS,
                   depends_on=("ARObjectsID",)),
        ObjectSpec("productInfo", f"{api}/product-info",
                   size_bytes=4 * 1024, priority=LOW_PRIORITY,
                   ttl_s=30 * MINUTE, origin_delay_s=24 * MS,
                   depends_on=("ARObjectsID",)),
    ], compose_time_s=8 * MS)


class VirtualHomeApi:
    """Annotation-based declaration — Table VII's "Impacted LoCs = 2"
    counts only the two AR-object declarations the paper adds (the other
    endpoints were already cached by the edge tier)."""

    ar_objects_id = cacheable(f"{_API}/ar-objects-id",
                              priority=LOW_PRIORITY, ttl_minutes=30)
    ar_objects = cacheable(f"{_CDN}/ar-objects",
                           priority=HIGH_PRIORITY, ttl_minutes=60)

    def place_furniture(self, http, category: str):
        """Unmodified app logic; a simulation generator."""
        ids_response = yield from http.get(
            f"{self.ar_objects_id}?category={category}")
        ids_response.require_body()
        objects_response = yield from http.get(
            f"{self.ar_objects}?category={category}")
        return objects_response.require_body()
