"""App model: a DAG of cacheable-object fetches (paper Section III-A).

An app execution fetches data objects respecting dependencies (e.g.
MovieTrailer's ``getMovieID -> {rating, plot, cast, thumbnail}``), then
composes its UI.  App-level latency is the DAG's critical path, which is
why the paper prioritizes objects *on* that path.
"""

from __future__ import annotations

import dataclasses
import typing as _t
from collections import deque

from repro.errors import ConfigError
from repro.core.annotations import CacheableSpec
from repro.httplib.url import Url
from repro.sim.kernel import MINUTE, MS

__all__ = ["ObjectSpec", "AppSpec"]


@dataclasses.dataclass(frozen=True)
class ObjectSpec:
    """One remote data object an app fetches.

    ``origin_delay_s`` is the paper's per-object simulated retrieval
    latency (20–50 ms for the synthetic apps); ``depends_on`` lists the
    names of objects that must arrive before this fetch can start.
    """

    name: str
    url: str
    size_bytes: int
    priority: int = 1
    ttl_s: float = 30 * MINUTE
    origin_delay_s: float = 30 * MS
    depends_on: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        Url.parse(self.url)
        if self.size_bytes <= 0:
            raise ConfigError(f"{self.name}: size must be positive")
        if self.priority < 1:
            raise ConfigError(f"{self.name}: priority must be >= 1")
        if self.ttl_s <= 0:
            raise ConfigError(f"{self.name}: TTL must be positive")
        if self.origin_delay_s < 0:
            raise ConfigError(f"{self.name}: negative origin delay")

    def to_cacheable_spec(self) -> CacheableSpec:
        return CacheableSpec(url=self.url, priority=self.priority,
                             ttl_s=self.ttl_s, field_name=self.name)


@dataclasses.dataclass
class AppSpec:
    """A named app: objects, dependencies, and a UI-composition cost."""

    app_id: str
    objects: list[ObjectSpec]
    compose_time_s: float = 5 * MS

    def __post_init__(self) -> None:
        names = [obj.name for obj in self.objects]
        if len(names) != len(set(names)):
            raise ConfigError(f"{self.app_id}: duplicate object names")
        urls = [obj.url for obj in self.objects]
        if len(urls) != len(set(urls)):
            raise ConfigError(f"{self.app_id}: duplicate object URLs")
        known = set(names)
        for obj in self.objects:
            missing = set(obj.depends_on) - known
            if missing:
                raise ConfigError(
                    f"{self.app_id}: {obj.name} depends on unknown "
                    f"objects {sorted(missing)}")
        self.topological_order()  # raises on cycles

    # ------------------------------------------------------------------
    # Graph helpers
    # ------------------------------------------------------------------
    def by_name(self, name: str) -> ObjectSpec:
        for obj in self.objects:
            if obj.name == name:
                return obj
        raise ConfigError(f"{self.app_id}: no object named {name!r}")

    def topological_order(self) -> list[ObjectSpec]:
        """Objects in dependency order; raises on cycles."""
        indegree = {obj.name: len(obj.depends_on) for obj in self.objects}
        dependents: dict[str, list[str]] = {obj.name: []
                                            for obj in self.objects}
        for obj in self.objects:
            for dep in obj.depends_on:
                dependents[dep].append(obj.name)
        ready = deque([name for name, degree in indegree.items() if degree == 0])
        ordered: list[str] = []
        while ready:
            name = ready.popleft()
            ordered.append(name)
            for dependent in dependents[name]:
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    ready.append(dependent)
        if len(ordered) != len(self.objects):
            raise ConfigError(f"{self.app_id}: dependency cycle")
        return [self.by_name(name) for name in ordered]

    def critical_path(self, latency_of: _t.Callable[[ObjectSpec], float]
                      | None = None) -> list[str]:
        """Longest (in estimated duration) root-to-leaf path.

        ``latency_of`` estimates one object's fetch time; the default uses
        the origin delay plus a size-proportional transfer term, matching
        how the paper reasons about MovieTrailer's thumbnail.
        """
        if latency_of is None:
            latency_of = self.default_latency_estimate
        finish: dict[str, float] = {}
        predecessor: dict[str, str | None] = {}
        for obj in self.topological_order():
            best_dep: str | None = None
            best_finish = 0.0
            for dep in obj.depends_on:
                if finish[dep] > best_finish:
                    best_finish = finish[dep]
                    best_dep = dep
            finish[obj.name] = best_finish + latency_of(obj)
            predecessor[obj.name] = best_dep
        tail = max(finish, key=lambda name: finish[name])
        path = [tail]
        while predecessor[path[-1]] is not None:
            path.append(_t.cast(str, predecessor[path[-1]]))
        return list(reversed(path))

    @staticmethod
    def default_latency_estimate(obj: ObjectSpec) -> float:
        """Origin delay + transfer time at a nominal 100 Mbps WAN."""
        return obj.origin_delay_s + (obj.size_bytes * 8.0) / 100e6

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def cacheable_specs(self) -> list[CacheableSpec]:
        return [obj.to_cacheable_spec() for obj in self.objects]

    def domains(self) -> set[str]:
        return {Url.parse(obj.url).host for obj in self.objects}

    def high_priority_names(self) -> set[str]:
        return {obj.name for obj in self.objects if obj.priority >= 2}

    def total_bytes(self) -> int:
        return sum(obj.size_bytes for obj in self.objects)

    def with_priorities_from_critical_path(self) -> "AppSpec":
        """A copy whose critical-path objects get priority 2, others 1."""
        on_path = set(self.critical_path())
        objects = [dataclasses.replace(obj,
                                       priority=2 if obj.name in on_path
                                       else 1)
                   for obj in self.objects]
        return AppSpec(self.app_id, objects, self.compose_time_s)
