"""API-based ports of the real apps (paper Section V-F).

These are the same two apps integrated through the *alternative*
API-based programming model: every HTTP request for a cacheable object
is rewritten to :func:`~repro.core.api_model.invoke_http_request_async`,
threading priority and TTL through each call site.  Compare with the
annotation-based originals in :mod:`repro.apps.movietrailer` and
:mod:`repro.apps.virtualhome`, where app logic is untouched — the
contrast is what Table VII quantifies.
"""

from __future__ import annotations

from repro.core.api_model import invoke_http_request_async
from repro.core.client_runtime import ClientRuntime

__all__ = ["MovieTrailerApiBased", "VirtualHomeApiBased"]

_API = "http://api.movietrailer.example"
_IMG = "http://img.movietrailer.example"
_VH_API = "http://api.virtualhome.example"
_VH_CDN = "http://assets.virtualhome.example"


class MovieTrailerApiBased:
    """MovieTrailer with every cacheable request rewritten (API model).

    Each of the five fetches below had to be changed from a plain
    ``http.get(url)`` into an ``invoke_http_request_async`` call carrying
    priority and TTL — the "Impacted LoCs" and "Re-write Logic: Yes" of
    Table VII.
    """

    def fetch_movie(self, runtime: ClientRuntime, movie_name: str):
        """A simulation generator mirroring the original app logic."""
        sim = runtime.sim
        # BEGIN rewritten call sites (API-based model)
        id_result = yield from invoke_http_request_async(
            runtime, f"{_API}/id", priority=2, ttl_minutes=30)
        movie_id = id_result.data_object
        detail_calls = [
            lambda: invoke_http_request_async(
                runtime, f"{_API}/rating", priority=1, ttl_minutes=30),
            lambda: invoke_http_request_async(
                runtime, f"{_API}/plot", priority=1, ttl_minutes=30),
            lambda: invoke_http_request_async(
                runtime, f"{_API}/cast", priority=1, ttl_minutes=30),
            lambda: invoke_http_request_async(
                runtime, f"{_IMG}/thumb", priority=2, ttl_minutes=60),
        ]
        processes = [sim.process(call()) for call in detail_calls]
        yield sim.all_of(processes)
        # END rewritten call sites
        details = [process.value for process in processes]
        return (movie_id, details)


class VirtualHomeApiBased:
    """VirtualHome with its two cacheable requests rewritten."""

    def place_furniture(self, runtime: ClientRuntime, category: str):
        """A simulation generator mirroring the original app logic."""
        # BEGIN rewritten call sites (API-based model)
        ids_result = yield from invoke_http_request_async(
            runtime, f"{_VH_API}/ar-objects-id", priority=1,
            ttl_minutes=30)
        objects_result = yield from invoke_http_request_async(
            runtime, f"{_VH_CDN}/ar-objects", priority=2, ttl_minutes=60)
        # END rewritten call sites
        del ids_result
        return objects_result.data_object
