"""Executes an app's fetch DAG against a caching system.

Objects with satisfied dependencies fetch concurrently (MovieTrailer's
four detail requests run in parallel once the movie id arrives), so the
measured app-level latency is genuinely the DAG's critical path under
the system's actual lookup/retrieval latencies.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.apps.model import AppSpec, ObjectSpec
from repro.core.client_runtime import FetchResult
from repro.baselines.base import ObjectFetcher
from repro.sim.kernel import Simulator

__all__ = ["AppRunner", "AppExecution"]


@dataclasses.dataclass
class AppExecution:
    """One completed run of an app."""

    app_id: str
    started_at: float
    finished_at: float
    fetches: dict[str, FetchResult]

    @property
    def latency_s(self) -> float:
        """The paper's app-level latency: input to rendered UI."""
        return self.finished_at - self.started_at

    def hit_count(self, high_priority_names: set[str] | None = None) -> int:
        names = (self.fetches if high_priority_names is None
                 else {name for name in self.fetches
                       if name in high_priority_names})
        return sum(1 for name in names if self.fetches[name].cache_hit)


class AppRunner:
    """Binds one app spec to one fetcher and executes the DAG."""

    def __init__(self, sim: Simulator, app: AppSpec,
                 fetcher: ObjectFetcher) -> None:
        self.sim = sim
        self.app = app
        self.fetcher = fetcher
        for spec in app.cacheable_specs():
            fetcher.register_spec(spec)
        self._share_dependencies()
        self.executions: list[AppExecution] = []

    def _share_dependencies(self) -> None:
        """Give prefetch-capable fetchers the app's dependency edges.

        Each object maps to its *transitive* descendants, so a single
        root delegation lets the AP warm the whole remaining DAG.
        """
        register = getattr(self.fetcher, "register_dependencies", None)
        if register is None:
            return
        children: dict[str, list[str]] = {obj.name: []
                                          for obj in self.app.objects}
        for obj in self.app.objects:
            for parent_name in obj.depends_on:
                children[parent_name].append(obj.name)

        def descendants(name: str) -> list[str]:
            seen: list[str] = []
            frontier = list(children[name])
            while frontier:
                current = frontier.pop()
                if current in seen:
                    continue
                seen.append(current)
                frontier.extend(children[current])
            return seen

        dependents: dict[str, list] = {}
        for obj in self.app.objects:
            below = descendants(obj.name)
            if below:
                dependents[obj.url] = [
                    self.app.by_name(name).to_cacheable_spec()
                    for name in below]
        if dependents:
            register(dependents)

    def execute(self) -> _t.Generator[object, object, AppExecution]:
        """Run the app once; a simulation generator."""
        started = self.sim.now
        done: dict[str, object] = {obj.name: self.sim.event()
                                   for obj in self.app.objects}
        fetches: dict[str, FetchResult] = {}

        def fetch_node(obj: ObjectSpec):
            for dependency in obj.depends_on:
                yield done[dependency]
            result = yield from self.fetcher.fetch(obj.url)
            fetches[obj.name] = result
            done[obj.name].succeed()

        processes = [self.sim.process(fetch_node(obj))
                     for obj in self.app.objects]
        yield self.sim.all_of(processes)
        yield self.sim.timeout(self.app.compose_time_s)
        execution = AppExecution(self.app.app_id, started, self.sim.now,
                                 fetches)
        self.executions.append(execution)
        return execution

    # ------------------------------------------------------------------
    # Aggregation over completed executions
    # ------------------------------------------------------------------
    def latencies(self) -> list[float]:
        return [execution.latency_s for execution in self.executions]

    def fetch_results(self) -> list[tuple[str, FetchResult]]:
        """(object name, result) pairs across every execution."""
        pairs: list[tuple[str, FetchResult]] = []
        for execution in self.executions:
            pairs.extend(execution.fetches.items())
        return pairs

    def hit_ratio(self, only_high_priority: bool = False) -> float:
        high = self.app.high_priority_names()
        relevant = [result for name, result in self.fetch_results()
                    if not only_high_priority or name in high]
        if not relevant:
            return 0.0
        return sum(1 for result in relevant if result.cache_hit) / \
            len(relevant)
