"""EDNS(0) support (RFC 6891).

The paper motivates its DNS-Cache record by DNS's "built-in
extensibility support", naming EDNS as the precedent ("EDNS creates a
new RR type called OPT and uses Additional to transfer its corresponding
information").  This module implements that precedent: the OPT
pseudo-record, carried in the Additional section, advertising a larger
UDP payload size and carrying typed options in its RDATA.

OPT field mapping (RFC 6891 §6.1.2): NAME is the root, CLASS holds the
requestor's UDP payload size, and the 32-bit TTL packs the extended
rcode, EDNS version, and flags (DO bit).
"""

from __future__ import annotations

import dataclasses
import struct

from repro.errors import DnsFormatError
from repro.dnslib.message import Message
from repro.dnslib.name import DomainName
from repro.dnslib.rr import ResourceRecord, RRType

__all__ = ["EdnsInfo", "EdnsOption", "add_edns", "edns_info",
           "DEFAULT_UDP_PAYLOAD_SIZE"]

DEFAULT_UDP_PAYLOAD_SIZE = 1232  # the modern flag-day recommendation


@dataclasses.dataclass(frozen=True)
class EdnsOption:
    """One OPT option TLV."""

    code: int
    data: bytes

    def __post_init__(self) -> None:
        if not 0 <= self.code <= 0xFFFF:
            raise DnsFormatError(f"option code out of range: {self.code}")
        if len(self.data) > 0xFFFF:
            raise DnsFormatError("option data too long")


@dataclasses.dataclass(frozen=True)
class EdnsInfo:
    """Decoded view of a message's OPT record."""

    udp_payload_size: int
    extended_rcode: int
    version: int
    dnssec_ok: bool
    options: tuple[EdnsOption, ...] = ()


def _encode_options(options: tuple[EdnsOption, ...]) -> bytes:
    out = bytearray()
    for option in options:
        out.extend(struct.pack("!HH", option.code, len(option.data)))
        out.extend(option.data)
    return bytes(out)


def _decode_options(data: bytes) -> tuple[EdnsOption, ...]:
    options = []
    offset = 0
    while offset < len(data):
        if offset + 4 > len(data):
            raise DnsFormatError("truncated EDNS option header")
        code, length = struct.unpack_from("!HH", data, offset)
        offset += 4
        if offset + length > len(data):
            raise DnsFormatError("truncated EDNS option data")
        options.append(EdnsOption(code, data[offset:offset + length]))
        offset += length
    return tuple(options)


def add_edns(message: Message,
             udp_payload_size: int = DEFAULT_UDP_PAYLOAD_SIZE,
             version: int = 0, dnssec_ok: bool = False,
             options: tuple[EdnsOption, ...] = ()) -> Message:
    """Attach an OPT record to ``message``'s Additional section."""
    if not 512 <= udp_payload_size <= 0xFFFF:
        raise DnsFormatError(
            f"implausible UDP payload size {udp_payload_size}")
    if edns_info(message) is not None:
        raise DnsFormatError("message already carries an OPT record")
    ttl = (version & 0xFF) << 16
    if dnssec_ok:
        ttl |= 0x8000
    record = ResourceRecord(DomainName(""), RRType.OPT,
                            udp_payload_size,  # CLASS = payload size
                            ttl, _encode_options(options))
    message.additional.append(record)
    return message


def edns_info(message: Message) -> EdnsInfo | None:
    """Decode the message's OPT record, or None if absent."""
    for record in message.additional:
        if record.rtype != RRType.OPT:
            continue
        ttl = record.ttl
        return EdnsInfo(
            udp_payload_size=int(record.rclass),
            extended_rcode=(ttl >> 24) & 0xFF,
            version=(ttl >> 16) & 0xFF,
            dnssec_ok=bool(ttl & 0x8000),
            options=_decode_options(
                bytes(record.rdata)  # type: ignore[arg-type]
                if isinstance(record.rdata, (bytes, bytearray)) else b""))
    return None
