"""The client-side stub resolver.

Mobile clients resolve names by querying their configured DNS server (on
a WiFi network, the AP) and caching the answers until TTL expiry — which
is precisely the behaviour that motivates APE-CACHE's per-domain batching:
after the first resolution the client stops sending DNS queries for that
domain, so cache lookups for later URLs must be answerable without one.
"""

from __future__ import annotations

import itertools
import typing as _t

from repro.errors import DnsNameError, DnsServFail
from repro.dnslib.message import Message, Rcode
from repro.dnslib.name import DomainName
from repro.dnslib.rr import ResourceRecord, RRType
from repro.dnslib.server import DnsCacheEntry
from repro.net.address import IPv4Address
from repro.net.node import Node, UDP_DNS_PORT
from repro.net.transport import Transport
from repro.telemetry.registry import NULL

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry import Telemetry

__all__ = ["StubResolver", "ResolutionResult"]


class ResolutionResult:
    """Outcome of one stub resolution."""

    def __init__(self, address: IPv4Address, latency_s: float,
                 from_cache: bool,
                 response: Message | None = None) -> None:
        self.address = address
        self.latency_s = latency_s
        self.from_cache = from_cache
        self.response = response

    def __repr__(self) -> str:
        origin = "cache" if self.from_cache else "network"
        return (f"<ResolutionResult {self.address} from {origin} "
                f"in {self.latency_s * 1e3:.2f}ms>")


class StubResolver:
    """A caching stub resolver bound to one client node."""

    def __init__(self, node: Node, transport: Transport,
                 server: "IPv4Address | str",
                 telemetry: "Telemetry | None" = None) -> None:
        self.node = node
        self.sim = node.sim
        self.transport = transport
        self.server = IPv4Address(server)
        self._cache: dict[DomainName, DnsCacheEntry] = {}
        self._ids = itertools.count(1)
        self.network_queries = 0
        self.cache_hits = 0
        self._t_lookups = (telemetry if telemetry is not None
                           else NULL).counter(
            "dns.stub_lookups", help="stub resolutions, by answer origin")

    def next_message_id(self) -> int:
        return next(self._ids) & 0xFFFF

    # ------------------------------------------------------------------
    # Cache
    # ------------------------------------------------------------------
    def cached_address(self, hostname: "DomainName | str",
                       ) -> IPv4Address | None:
        """A fresh cached A answer for ``hostname``, if any."""
        name = DomainName(hostname)
        entry = self._cache.get(name)
        if entry is None or not entry.fresh(self.sim.now):
            self._cache.pop(name, None)
            return None
        for record in entry.records:
            if record.rtype == RRType.A:
                return _t.cast(IPv4Address, record.rdata)
        return None

    def cache_response(self, hostname: "DomainName | str",
                       response: Message) -> None:
        """Cache the A/CNAME chain of ``response`` under ``hostname``."""
        if not response.answers:
            return
        ttl = min(record.ttl for record in response.answers)
        if ttl <= 0:
            # TTL 0 responses (e.g. APE-CACHE's dummy-IP short circuit)
            # must not be reused.
            return
        self._cache[DomainName(hostname)] = DnsCacheEntry(
            list(response.answers), self.sim.now + ttl)

    def flush_cache(self) -> None:
        self._cache.clear()

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def exchange(self, query: Message,
                 ) -> _t.Generator[object, object, Message]:
        """Send a prebuilt query to the configured server; no caching."""
        self.network_queries += 1
        payload = yield self.sim.process(self.transport.udp_request(
            self.node.name, self.server, UDP_DNS_PORT, query.encode()))
        return Message.decode(_t.cast(bytes, payload))

    def resolve(self, hostname: "DomainName | str",
                ) -> _t.Generator[object, object, ResolutionResult]:
        """Resolve ``hostname`` to an address, using the local cache."""
        name = DomainName(hostname)
        started = self.sim.now
        cached = self.cached_address(name)
        if cached is not None:
            self.cache_hits += 1
            self._t_lookups.inc(origin="cache")
            return ResolutionResult(cached, 0.0, from_cache=True)
        query = Message.query(name, RRType.A,
                              message_id=self.next_message_id())
        response = yield from self.exchange(query)
        if response.header.rcode == Rcode.NXDOMAIN:
            raise DnsNameError(str(name))
        if response.header.rcode != Rcode.NOERROR:
            raise DnsServFail(
                f"{name}: rcode {response.header.rcode.name}")
        address = self._terminal_address(response.answers, name)
        self.cache_response(name, response)
        self._t_lookups.inc(origin="network")
        return ResolutionResult(address, self.sim.now - started,
                                from_cache=False, response=response)

    @staticmethod
    def _terminal_address(answers: _t.Sequence[ResourceRecord],
                          name: DomainName) -> IPv4Address:
        for record in answers:
            if record.rtype == RRType.A:
                return _t.cast(IPv4Address, record.rdata)
        raise DnsServFail(f"no A record in answer for {name}")
