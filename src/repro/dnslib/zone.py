"""Authoritative zone data.

A :class:`Zone` owns a subtree of the namespace and stores record sets
keyed by (name, type).  A :class:`DnsRegistry` plays the role of the root
and TLD infrastructure: it maps registered domains to the addresses of
their authoritative servers so recursive resolvers know whom to ask.
"""

from __future__ import annotations

import typing as _t

from repro.errors import DnsError, DnsNameError
from repro.dnslib.name import DomainName
from repro.dnslib.rr import ResourceRecord, RRClass, RRType
from repro.net.address import IPv4Address

__all__ = ["Zone", "DnsRegistry"]


class Zone:
    """Records for one authoritative subtree (e.g. ``apple.com``)."""

    def __init__(self, origin: "DomainName | str") -> None:
        self.origin = DomainName(origin)
        self._records: dict[tuple[DomainName, RRType],
                            list[ResourceRecord]] = {}

    def contains(self, name: "DomainName | str") -> bool:
        return DomainName(name).is_subdomain_of(self.origin)

    def add(self, record: ResourceRecord) -> None:
        """Add a record; its name must fall inside this zone."""
        if not self.contains(record.name):
            raise DnsError(
                f"{record.name} is outside zone {self.origin}")
        key = (record.name, record.rtype)
        self._records.setdefault(key, []).append(record)

    def add_a(self, name: "DomainName | str", address: "IPv4Address | str",
              ttl: int = 300) -> ResourceRecord:
        record = ResourceRecord(DomainName(name), RRType.A, RRClass.IN,
                                ttl, IPv4Address(address))
        self.add(record)
        return record

    def add_cname(self, name: "DomainName | str",
                  target: "DomainName | str", ttl: int = 300,
                  ) -> ResourceRecord:
        record = ResourceRecord(DomainName(name), RRType.CNAME, RRClass.IN,
                                ttl, DomainName(target))
        self.add(record)
        return record

    def lookup(self, name: "DomainName | str", rtype: RRType,
               ) -> list[ResourceRecord]:
        """Records for (name, type), following the CNAME special case.

        Mirrors RFC1034 §4.3.2: if there is no exact-type match but a
        CNAME exists at the name, the CNAME is returned instead.
        """
        resolved = DomainName(name)
        if not self.contains(resolved):
            raise DnsError(f"{resolved} is outside zone {self.origin}")
        exact = self._records.get((resolved, rtype))
        if exact:
            return list(exact)
        if rtype != RRType.CNAME:
            alias = self._records.get((resolved, RRType.CNAME))
            if alias:
                return list(alias)
        raise DnsNameError(f"{resolved} has no {rtype.name} record")

    def names(self) -> set[DomainName]:
        return {name for name, _rtype in self._records}

    def __len__(self) -> int:
        return sum(len(records) for records in self._records.values())


class DnsRegistry:
    """Maps registered domains to their authoritative server addresses.

    This flattens the root/TLD referral dance into one lookup, which
    preserves what the paper measures (the LDNS must contact a *remote*
    authoritative server) without simulating thirteen root servers.
    """

    def __init__(self) -> None:
        self._delegations: dict[DomainName, IPv4Address] = {}

    def delegate(self, domain: "DomainName | str",
                 server: "IPv4Address | str") -> None:
        self._delegations[DomainName(domain)] = IPv4Address(server)

    def authority_for(self, name: "DomainName | str") -> IPv4Address:
        """Address of the authoritative server for ``name``.

        Picks the most specific registered suffix, so ``edgekey.net``
        (a CDN's DNS) can coexist with ``net`` style delegations.
        """
        resolved = DomainName(name)
        best: tuple[int, IPv4Address] | None = None
        for domain, address in self._delegations.items():
            if resolved.is_subdomain_of(domain):
                specificity = len(domain.labels)
                if best is None or specificity > best[0]:
                    best = (specificity, address)
        if best is None:
            raise DnsNameError(f"no delegation covers {resolved}")
        return best[1]

    def domains(self) -> list[DomainName]:
        return sorted(self._delegations, key=str)
