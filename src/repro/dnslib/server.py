"""DNS server roles: authoritative, CDN, recursive (LDNS), forwarder.

Each service installs a UDP handler on its node; handlers are generators
so every query consumes simulated CPU time and any upstream round trips
unfold inside the event loop.  The roles mirror the resolution chain of
the paper's Fig. 1: stub -> LDNS -> authoritative -> CDN DNS.
"""

from __future__ import annotations

import typing as _t

from repro.errors import DnsError, DnsNameError, DnsServFail
from repro.dnslib.message import Message, Rcode
from repro.dnslib.name import DomainName
from repro.dnslib.rr import ResourceRecord, RRClass, RRType
from repro.dnslib.zone import DnsRegistry, Zone
from repro.net.address import IPv4Address
from repro.net.node import Node, UDP_DNS_PORT
from repro.net.transport import Transport
from repro.engine.api import MS
from repro.telemetry.registry import NULL

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry import Telemetry

__all__ = [
    "DnsService",
    "AuthoritativeService",
    "CdnDnsService",
    "RecursiveResolverService",
    "ForwardingDnsService",
    "DnsCacheEntry",
]

#: Default CPU time to parse + answer one query on a server-class machine.
DEFAULT_SERVICE_TIME = 0.05 * MS


class DnsCacheEntry:
    """A cached record set with an absolute expiry time."""

    def __init__(self, records: list[ResourceRecord], expires_at: float,
                 rcode: Rcode = Rcode.NOERROR) -> None:
        self.records = records
        self.expires_at = expires_at
        self.rcode = rcode

    def fresh(self, now: float) -> bool:
        return now < self.expires_at

    def remaining_ttl(self, now: float) -> int:
        return max(0, int(self.expires_at - now))


class DnsService:
    """Base class wiring a message handler onto a node's UDP port 53."""

    #: Label identifying this service's place in the resolution chain.
    role = "dns"

    def __init__(self, node: Node, service_time_s: float =
                 DEFAULT_SERVICE_TIME) -> None:
        self.node = node
        self.sim = node.sim
        self.service_time_s = service_time_s
        self.queries_handled = 0
        self.telemetry: "Telemetry" = NULL
        self._t_queries = NULL.counter("dns.queries")

    def bind_telemetry(self, telemetry: "Telemetry") -> "DnsService":
        """Route this service's instruments into ``telemetry``.

        A post-construction hook (rather than a constructor argument) so
        the half-dozen subclass signatures stay untouched; returns self
        for chaining at construction sites.
        """
        self.telemetry = telemetry
        self._t_queries = telemetry.counter(
            "dns.queries", help="DNS queries handled, by server role")
        return self

    def install(self, port: int = UDP_DNS_PORT) -> None:
        """Bind this service to ``port`` on its node."""
        self.node.bind_udp(port, self._handle)

    def _handle(self, payload: bytes, source: IPv4Address,
                ) -> _t.Generator[object, object, bytes]:
        query = Message.decode(payload)
        self.queries_handled += 1
        self._t_queries.inc(role=self.role)
        yield self.node.occupy_cpu(self.service_time_s)
        try:
            response = yield from self.respond(query, source)
        except DnsNameError:
            response = query.make_response(Rcode.NXDOMAIN)
        except DnsError:
            response = query.make_response(Rcode.SERVFAIL)
        return response.encode()

    def respond(self, query: Message, source: IPv4Address,
                ) -> _t.Generator[object, object, Message]:
        """Produce the response message (may yield simulation events)."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for subclass parity


class AuthoritativeService(DnsService):
    """Serves one or more zones it owns (the paper's ADNS)."""

    role = "authoritative"

    def __init__(self, node: Node, zones: _t.Sequence[Zone] | None = None,
                 service_time_s: float = DEFAULT_SERVICE_TIME) -> None:
        super().__init__(node, service_time_s)
        self.zones: list[Zone] = list(zones or [])

    def add_zone(self, zone: Zone) -> Zone:
        self.zones.append(zone)
        return zone

    def zone_for(self, name: DomainName) -> Zone:
        best: Zone | None = None
        for zone in self.zones:
            if zone.contains(name) and (
                    best is None or
                    len(zone.origin.labels) > len(best.origin.labels)):
                best = zone
        if best is None:
            raise DnsNameError(f"not authoritative for {name}")
        return best

    def respond(self, query: Message, source: IPv4Address,
                ) -> _t.Generator[object, object, Message]:
        name = query.question_name()
        qtype = query.questions[0].qtype
        zone = self.zone_for(name)
        records = zone.lookup(name, qtype)
        response = query.make_response()
        response.header.authoritative = True
        response.answers.extend(records)
        # Chase in-zone CNAMEs so the resolver gets the full chain when
        # the target happens to live in the same zone.
        chased = records
        while chased and chased[0].rtype == RRType.CNAME and \
                qtype != RRType.CNAME:
            target = _t.cast(DomainName, chased[0].rdata)
            try:
                chased = self.zone_for(target).lookup(target, qtype)
            except DnsError:
                break
            response.answers.extend(chased)
        return response
        yield  # pragma: no cover - no async work, kept for interface parity


class CdnDnsService(DnsService):
    """A CDN's DNS (the paper's "Akamai DNS").

    Resolves names under the CDN's domain (e.g. ``*.edgekey.net``) to the
    PoP nearest the *querying resolver* — real CDNs map on the LDNS
    address, which is why a remote LDNS can pick a suboptimal PoP.  When
    no PoP serves the querying region (the paper's Yahoo/São Paulo case),
    it answers with the origin server's address instead.
    """

    role = "cdn"

    def __init__(self, node: Node, cdn_domain: "DomainName | str",
                 pop_selector: _t.Callable[[DomainName, IPv4Address],
                                           IPv4Address | None],
                 origin_for: _t.Callable[[DomainName], IPv4Address],
                 answer_ttl: int = 20,
                 service_time_s: float = DEFAULT_SERVICE_TIME) -> None:
        super().__init__(node, service_time_s)
        self.cdn_domain = DomainName(cdn_domain)
        self._pop_selector = pop_selector
        self._origin_for = origin_for
        self.answer_ttl = answer_ttl

    def respond(self, query: Message, source: IPv4Address,
                ) -> _t.Generator[object, object, Message]:
        name = query.question_name()
        if not name.is_subdomain_of(self.cdn_domain):
            raise DnsNameError(f"{name} is outside CDN domain")
        pop = self._pop_selector(name, source)
        address = pop if pop is not None else self._origin_for(name)
        response = query.make_response()
        response.header.authoritative = True
        response.answers.append(ResourceRecord(
            name, RRType.A, RRClass.IN, self.answer_ttl, address))
        return response
        yield  # pragma: no cover


class RecursiveResolverService(DnsService):
    """A caching recursive resolver (the paper's LDNS).

    Follows CNAME chains across authorities using the registry, caches
    answers by their minimum TTL, and negative-caches NXDOMAIN.
    """

    role = "ldns"
    MAX_CHAIN = 8

    def __init__(self, node: Node, transport: Transport,
                 registry: DnsRegistry,
                 service_time_s: float = DEFAULT_SERVICE_TIME,
                 negative_ttl: int = 30) -> None:
        super().__init__(node, service_time_s)
        self.transport = transport
        self.registry = registry
        self.negative_ttl = negative_ttl
        self._cache: dict[tuple[DomainName, RRType], DnsCacheEntry] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    # -- cache ----------------------------------------------------------
    def cache_get(self, name: DomainName, rtype: RRType,
                  ) -> DnsCacheEntry | None:
        entry = self._cache.get((name, rtype))
        if entry is not None and entry.fresh(self.sim.now):
            return entry
        self._cache.pop((name, rtype), None)
        return None

    def cache_put(self, name: DomainName, rtype: RRType,
                  records: list[ResourceRecord],
                  rcode: Rcode = Rcode.NOERROR) -> None:
        ttl = min((record.ttl for record in records),
                  default=self.negative_ttl)
        self._cache[(name, rtype)] = DnsCacheEntry(
            records, self.sim.now + ttl, rcode)

    def flush_cache(self) -> None:
        self._cache.clear()

    # -- resolution ------------------------------------------------------
    def resolve(self, name: DomainName, rtype: RRType = RRType.A,
                ) -> _t.Generator[object, object, list[ResourceRecord]]:
        """Resolve ``name`` fully, returning the accumulated answer chain."""
        answers: list[ResourceRecord] = []
        current = name
        for _hop in range(self.MAX_CHAIN):
            cached = self.cache_get(current, rtype)
            if cached is not None:
                self.cache_hits += 1
                if cached.rcode != Rcode.NOERROR:
                    raise DnsNameError(f"{current} (negative cache)")
                records = [
                    ResourceRecord(r.name, r.rtype, r.rclass,
                                   cached.remaining_ttl(self.sim.now),
                                   r.rdata)
                    for r in cached.records]
            else:
                self.cache_misses += 1
                records = yield from self._query_authority(current, rtype)
            answers.extend(records)
            terminal = [r for r in records if r.rtype == rtype]
            if terminal:
                return answers
            cname = next((r for r in records
                          if r.rtype == RRType.CNAME), None)
            if cname is None:
                raise DnsServFail(f"no usable answer for {current}")
            current = _t.cast(DomainName, cname.rdata)
        raise DnsServFail(f"CNAME chain too long for {name}")

    def _query_authority(self, name: DomainName, rtype: RRType,
                         ) -> _t.Generator[object, object,
                                           list[ResourceRecord]]:
        authority = self.registry.authority_for(name)
        query = Message.query(name, rtype)
        payload = yield self.sim.process(self.transport.udp_request(
            self.node.name, authority, UDP_DNS_PORT, query.encode()))
        response = Message.decode(_t.cast(bytes, payload))
        if response.header.rcode == Rcode.NXDOMAIN:
            self.cache_put(name, rtype, [], Rcode.NXDOMAIN)
            raise DnsNameError(str(name))
        if response.header.rcode != Rcode.NOERROR:
            raise DnsServFail(
                f"{name}: upstream rcode {response.header.rcode.name}")
        if response.answers:
            self.cache_put(name, rtype, response.answers)
        return list(response.answers)

    def respond(self, query: Message, source: IPv4Address,
                ) -> _t.Generator[object, object, Message]:
        name = query.question_name()
        rtype = query.questions[0].qtype
        answers = yield from self.resolve(name, rtype)
        response = query.make_response()
        response.answers.extend(answers)
        return response


class ForwardingDnsService(DnsService):
    """A caching forwarder — what dnsmasq runs on a stock WiFi AP.

    Forwards misses to one upstream resolver and caches the answers.
    APE-CACHE's AP runtime subclasses this to add DNS-Cache handling,
    exactly as the reference implementation extends dnsmasq.
    """

    role = "forwarder"

    def __init__(self, node: Node, transport: Transport,
                 upstream: "IPv4Address | str",
                 service_time_s: float = 0.2 * MS) -> None:
        super().__init__(node, service_time_s)
        self.transport = transport
        self.upstream = IPv4Address(upstream)
        self._cache: dict[tuple[DomainName, RRType], DnsCacheEntry] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def cached_answers(self, name: DomainName, rtype: RRType,
                       ) -> list[ResourceRecord] | None:
        """Fresh cached answers for (name, type), or None."""
        entry = self._cache.get((name, rtype))
        if entry is not None and entry.fresh(self.sim.now):
            return entry.records
        self._cache.pop((name, rtype), None)
        return None

    def forward(self, query: Message,
                ) -> _t.Generator[object, object, Message]:
        """Send ``query`` upstream and cache the answers."""
        payload = yield self.sim.process(self.transport.udp_request(
            self.node.name, self.upstream, UDP_DNS_PORT, query.encode()))
        response = Message.decode(_t.cast(bytes, payload))
        if response.answers and response.header.rcode == Rcode.NOERROR:
            name = query.question_name()
            rtype = query.questions[0].qtype
            ttl = min(record.ttl for record in response.answers)
            self._cache[(name, rtype)] = DnsCacheEntry(
                list(response.answers), self.sim.now + ttl)
        return response

    def respond(self, query: Message, source: IPv4Address,
                ) -> _t.Generator[object, object, Message]:
        name = query.question_name()
        rtype = query.questions[0].qtype
        cached = self.cached_answers(name, rtype)
        if cached is not None:
            self.cache_hits += 1
            self.telemetry.counter(
                "dns.forwarder_cache",
                help="forwarder answer cache, by outcome").inc(outcome="hit")
            response = query.make_response()
            response.answers.extend(cached)
            return response
        self.cache_misses += 1
        self.telemetry.counter(
            "dns.forwarder_cache",
            help="forwarder answer cache, by outcome").inc(outcome="miss")
        upstream_response = yield from self.forward(query)
        response = query.make_response(upstream_response.header.rcode)
        response.answers.extend(upstream_response.answers)
        return response
