"""Resource records: types, classes, and per-type RDATA codecs.

Beyond the standard A / CNAME / OPT types, this module defines the paper's
custom **DNSCACHE** record (TYPE = 300) whose RDATA carries the cache
lookup tuples ``<HASH(URL), FLAG>`` described in Section IV-B and Fig. 8.
"""

from __future__ import annotations

import dataclasses
import enum
import struct
import typing as _t

from repro.errors import DnsFormatError
from repro.dnslib.cache_rr import CacheLookupRdata
from repro.dnslib.name import DomainName, decode_name, encode_name
from repro.net.address import IPv4Address

__all__ = ["RRType", "RRClass", "ResourceRecord"]


class RRType(enum.IntEnum):
    """Record types understood by the codec."""

    A = 1
    NS = 2
    CNAME = 5
    TXT = 16
    OPT = 41
    #: The paper's DNS-Cache query record (Section IV-B: "we assign an
    #: unsigned integer of 300 to indicate a 'DNS-Cache' query").
    DNSCACHE = 300


class RRClass(enum.IntEnum):
    """Record classes.

    ``REQUEST`` and ``RESPONSE`` implement the paper's CLASS field for
    DNS-Cache records ("The field <CLASS> can be either REQUEST or
    RESPONSE"); they live in the private-use class range.
    """

    IN = 1
    REQUEST = 0xFF01
    RESPONSE = 0xFF02


@dataclasses.dataclass
class ResourceRecord:
    """One resource record with a typed ``rdata`` payload.

    ``rdata`` holds an :class:`IPv4Address` for A records, a
    :class:`DomainName` for NS/CNAME, ``bytes`` for TXT/OPT, and a
    :class:`CacheLookupRdata` for DNSCACHE records.
    """

    name: DomainName
    rtype: RRType
    rclass: RRClass
    ttl: int
    rdata: object

    def __post_init__(self) -> None:
        self.name = DomainName(self.name)
        self.rtype = RRType(self.rtype)
        if self.rtype == RRType.OPT:
            # RFC 6891 reuses CLASS as the UDP payload size: any 16-bit
            # integer is legal here, not just named classes.
            if not 0 <= int(self.rclass) <= 0xFFFF:
                raise DnsFormatError(
                    f"OPT payload size out of range: {self.rclass}")
        else:
            self.rclass = RRClass(self.rclass)
        if self.ttl < 0 or self.ttl > 0xFFFFFFFF:
            raise DnsFormatError(f"TTL out of range: {self.ttl}")
        self._validate_rdata()

    def _validate_rdata(self) -> None:
        if self.rtype == RRType.A and not isinstance(self.rdata, IPv4Address):
            self.rdata = IPv4Address(_t.cast(str, self.rdata))
        elif self.rtype in (RRType.CNAME, RRType.NS) and \
                not isinstance(self.rdata, DomainName):
            self.rdata = DomainName(_t.cast(str, self.rdata))
        elif self.rtype in (RRType.TXT, RRType.OPT) and \
                not isinstance(self.rdata, (bytes, bytearray)):
            raise DnsFormatError(
                f"{self.rtype.name} rdata must be bytes, "
                f"got {type(self.rdata).__name__}")
        elif self.rtype == RRType.DNSCACHE and \
                not isinstance(self.rdata, CacheLookupRdata):
            raise DnsFormatError(
                "DNSCACHE rdata must be a CacheLookupRdata, "
                f"got {type(self.rdata).__name__}")

    # ------------------------------------------------------------------
    # Codec
    # ------------------------------------------------------------------
    def encode(self, buffer: bytearray,
               offsets: dict[tuple[str, ...], int] | None = None) -> None:
        """Append this record's wire form to ``buffer``."""
        encode_name(self.name, buffer, offsets)
        buffer.extend(struct.pack("!HHI", self.rtype, self.rclass,
                                  self.ttl))
        rdata = self._encode_rdata(offsets, base_offset=len(buffer) + 2)
        if len(rdata) > 0xFFFF:
            raise DnsFormatError(f"RDATA too long: {len(rdata)} bytes")
        buffer.extend(struct.pack("!H", len(rdata)))
        buffer.extend(rdata)

    def _encode_rdata(self, offsets: dict[tuple[str, ...], int] | None,
                      base_offset: int) -> bytes:
        if self.rtype == RRType.A:
            return _t.cast(IPv4Address, self.rdata).to_bytes()
        if self.rtype in (RRType.CNAME, RRType.NS):
            # Names inside RDATA are encoded without registering new
            # compression offsets: the rdata length prefix makes nested
            # offset bookkeeping fragile and RFC deployments avoid it too.
            inner = bytearray()
            encode_name(_t.cast(DomainName, self.rdata), inner, offsets=None)
            return bytes(inner)
        if self.rtype in (RRType.TXT, RRType.OPT):
            return bytes(_t.cast(bytes, self.rdata))
        if self.rtype == RRType.DNSCACHE:
            return _t.cast(CacheLookupRdata, self.rdata).encode()
        raise DnsFormatError(f"cannot encode rdata for {self.rtype!r}")

    @classmethod
    def decode(cls, data: bytes, offset: int) -> tuple["ResourceRecord", int]:
        """Decode one record starting at ``offset``."""
        name, offset = decode_name(data, offset)
        if offset + 10 > len(data):
            raise DnsFormatError("truncated resource record header")
        raw_type, raw_class, ttl, rdlength = struct.unpack_from(
            "!HHIH", data, offset)
        offset += 10
        if offset + rdlength > len(data):
            raise DnsFormatError("truncated RDATA")
        rdata_bytes = data[offset:offset + rdlength]
        try:
            rtype = RRType(raw_type)
        except ValueError:
            raise DnsFormatError(f"unknown RR type {raw_type}") from None
        if rtype == RRType.OPT:
            rclass: "RRClass | int" = raw_class
        else:
            try:
                rclass = RRClass(raw_class)
            except ValueError:
                raise DnsFormatError(
                    f"unknown RR class {raw_class}") from None
        rdata: object
        if rtype == RRType.A:
            if len(rdata_bytes) != 4:
                raise DnsFormatError(
                    f"A record RDATA must be 4 bytes, "
                    f"got {len(rdata_bytes)}")
            rdata = IPv4Address.from_bytes(rdata_bytes)
        elif rtype in (RRType.CNAME, RRType.NS):
            rdata, _ = decode_name(data, offset)
        elif rtype in (RRType.TXT, RRType.OPT):
            rdata = bytes(rdata_bytes)
        elif rtype == RRType.DNSCACHE:
            rdata = CacheLookupRdata.decode(rdata_bytes)
        else:  # pragma: no cover - RRType() above rejects unknowns
            raise DnsFormatError(f"cannot decode rdata for {rtype!r}")
        return cls(name, rtype, rclass, ttl, rdata), offset + rdlength

    def __str__(self) -> str:
        class_name = getattr(self.rclass, "name", str(int(self.rclass)))
        return (f"{self.name} {self.ttl} {class_name} "
                f"{self.rtype.name} {self.rdata}")
