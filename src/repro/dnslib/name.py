"""Domain names and their RFC1035 wire encoding.

Implements label validation, case-insensitive equality, and the standard
message compression scheme (pointers ``0xC000 | offset``) used by both the
encoder and decoder.
"""

from __future__ import annotations

import typing as _t

from repro.errors import DnsFormatError

__all__ = ["DomainName", "encode_name", "decode_name"]

_MAX_LABEL = 63
_MAX_NAME = 255
_POINTER_MASK = 0xC0


class DomainName:
    """A fully-qualified domain name, stored as a tuple of labels.

    Comparison and hashing are case-insensitive, per RFC1035 §2.3.3.
    """

    __slots__ = ("_labels",)

    def __init__(self, name: "str | DomainName | _t.Sequence[str]") -> None:
        if isinstance(name, DomainName):
            self._labels: tuple[str, ...] = name._labels
            return
        if isinstance(name, str):
            stripped = name.rstrip(".")
            labels = tuple(stripped.split(".")) if stripped else ()
        else:
            labels = tuple(name)
        for label in labels:
            if not label:
                raise DnsFormatError(f"empty label in {name!r}")
            if len(label) > _MAX_LABEL:
                raise DnsFormatError(
                    f"label longer than {_MAX_LABEL} octets: {label!r}")
            encoded = label.encode("ascii", errors="strict") \
                if label.isascii() else None
            if encoded is None:
                raise DnsFormatError(f"non-ASCII label {label!r}")
        total = sum(len(label) + 1 for label in labels) + 1
        if total > _MAX_NAME:
            raise DnsFormatError(f"name longer than {_MAX_NAME} octets")
        self._labels = labels

    @property
    def labels(self) -> tuple[str, ...]:
        return self._labels

    @property
    def is_root(self) -> bool:
        return not self._labels

    def parent(self) -> "DomainName":
        """The name with its leftmost label removed."""
        if self.is_root:
            raise DnsFormatError("the root name has no parent")
        return DomainName(self._labels[1:])

    def registered_domain(self) -> "DomainName":
        """The last two labels (e.g. ``apple.com`` of ``www.apple.com``)."""
        if len(self._labels) < 2:
            return self
        return DomainName(self._labels[-2:])

    def is_subdomain_of(self, other: "DomainName | str") -> bool:
        other_name = DomainName(other)
        if len(other_name._labels) > len(self._labels):
            return False
        mine = tuple(label.lower() for label in self._labels)
        theirs = tuple(label.lower() for label in other_name._labels)
        return not theirs or mine[-len(theirs):] == theirs

    def __str__(self) -> str:
        return ".".join(self._labels) if self._labels else "."

    def __repr__(self) -> str:
        return f"DomainName({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, str):
            try:
                other = DomainName(other)
            except DnsFormatError:
                return False
        if not isinstance(other, DomainName):
            return NotImplemented
        return tuple(l.lower() for l in self._labels) == \
            tuple(l.lower() for l in other._labels)

    def __hash__(self) -> int:
        return hash(tuple(label.lower() for label in self._labels))


def encode_name(name: "DomainName | str", buffer: bytearray,
                offsets: dict[tuple[str, ...], int] | None = None) -> None:
    """Append the wire form of ``name`` to ``buffer``.

    When ``offsets`` is provided, previously seen suffixes are replaced by
    compression pointers and new suffixes are recorded.
    """
    resolved = DomainName(name)
    labels = tuple(label.lower() for label in resolved.labels)
    index = 0
    while index < len(labels):
        suffix = labels[index:]
        if offsets is not None and suffix in offsets:
            pointer = offsets[suffix]
            buffer.extend(((_POINTER_MASK << 8) | pointer).to_bytes(2, "big"))
            return
        if offsets is not None and len(buffer) < 0x3FFF:
            offsets[suffix] = len(buffer)
        label = labels[index]
        buffer.append(len(label))
        buffer.extend(label.encode("ascii"))
        index += 1
    buffer.append(0)


def decode_name(data: bytes, offset: int) -> tuple[DomainName, int]:
    """Decode a (possibly compressed) name starting at ``offset``.

    Returns the name and the offset just past its in-place encoding.
    """
    labels: list[str] = []
    jumped = False
    next_offset = offset
    seen_pointers: set[int] = set()
    cursor = offset
    while True:
        if cursor >= len(data):
            raise DnsFormatError("truncated name")
        length = data[cursor]
        if length & _POINTER_MASK == _POINTER_MASK:
            if cursor + 1 >= len(data):
                raise DnsFormatError("truncated compression pointer")
            pointer = ((length & 0x3F) << 8) | data[cursor + 1]
            if pointer in seen_pointers:
                raise DnsFormatError("compression pointer loop")
            seen_pointers.add(pointer)
            if not jumped:
                next_offset = cursor + 2
                jumped = True
            cursor = pointer
            continue
        if length & _POINTER_MASK:
            raise DnsFormatError(f"reserved label type {length:#04x}")
        cursor += 1
        if length == 0:
            if not jumped:
                next_offset = cursor
            break
        if cursor + length > len(data):
            raise DnsFormatError("truncated label")
        try:
            labels.append(data[cursor:cursor + length].decode("ascii"))
        except UnicodeDecodeError:
            raise DnsFormatError(
                f"non-ASCII bytes in label at offset {cursor}") from None
        cursor += length
    return DomainName(labels), next_offset
