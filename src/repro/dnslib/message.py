"""DNS messages: header, question, and the four record sections.

Implements enough of RFC1035 (plus the paper's DNS-Cache extension riding
in the Additional section) to run a realistic resolution chain:
stub -> LDNS -> authoritative -> CDN DNS, with CNAME chasing and caching.
"""

from __future__ import annotations

import dataclasses
import enum
import struct
import typing as _t

from repro.errors import DnsFormatError
from repro.dnslib.cache_rr import CacheLookupRdata
from repro.dnslib.name import DomainName, decode_name, encode_name
from repro.dnslib.rr import ResourceRecord, RRClass, RRType

__all__ = ["Rcode", "Question", "Header", "Message"]

_HEADER_STRUCT = struct.Struct("!HHHHHH")


class Rcode(enum.IntEnum):
    """Response codes used by this implementation."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5


@dataclasses.dataclass
class Question:
    """One entry of the question section."""

    qname: DomainName
    qtype: RRType = RRType.A
    qclass: RRClass = RRClass.IN

    def __post_init__(self) -> None:
        self.qname = DomainName(self.qname)
        self.qtype = RRType(self.qtype)
        self.qclass = RRClass(self.qclass)

    def encode(self, buffer: bytearray,
               offsets: dict[tuple[str, ...], int] | None) -> None:
        encode_name(self.qname, buffer, offsets)
        buffer.extend(struct.pack("!HH", self.qtype, self.qclass))

    @classmethod
    def decode(cls, data: bytes, offset: int) -> tuple["Question", int]:
        qname, offset = decode_name(data, offset)
        if offset + 4 > len(data):
            raise DnsFormatError("truncated question")
        raw_type, raw_class = struct.unpack_from("!HH", data, offset)
        try:
            qtype = RRType(raw_type)
            qclass = RRClass(raw_class)
        except ValueError as exc:
            raise DnsFormatError(str(exc)) from None
        return cls(qname, qtype, qclass), offset + 4


@dataclasses.dataclass
class Header:
    """The 12-byte message header."""

    message_id: int = 0
    is_response: bool = False
    opcode: int = 0
    authoritative: bool = False
    truncated: bool = False
    recursion_desired: bool = True
    recursion_available: bool = False
    rcode: Rcode = Rcode.NOERROR

    def flags_word(self) -> int:
        word = 0
        if self.is_response:
            word |= 0x8000
        word |= (self.opcode & 0xF) << 11
        if self.authoritative:
            word |= 0x0400
        if self.truncated:
            word |= 0x0200
        if self.recursion_desired:
            word |= 0x0100
        if self.recursion_available:
            word |= 0x0080
        word |= int(self.rcode) & 0xF
        return word

    @classmethod
    def from_flags_word(cls, message_id: int, word: int) -> "Header":
        try:
            rcode = Rcode(word & 0xF)
        except ValueError:
            raise DnsFormatError(f"unknown rcode {word & 0xF}") from None
        return cls(
            message_id=message_id,
            is_response=bool(word & 0x8000),
            opcode=(word >> 11) & 0xF,
            authoritative=bool(word & 0x0400),
            truncated=bool(word & 0x0200),
            recursion_desired=bool(word & 0x0100),
            recursion_available=bool(word & 0x0080),
            rcode=rcode,
        )


@dataclasses.dataclass
class Message:
    """A complete DNS message."""

    header: Header = dataclasses.field(default_factory=Header)
    questions: list[Question] = dataclasses.field(default_factory=list)
    answers: list[ResourceRecord] = dataclasses.field(default_factory=list)
    authority: list[ResourceRecord] = dataclasses.field(default_factory=list)
    additional: list[ResourceRecord] = dataclasses.field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def query(cls, qname: "DomainName | str", qtype: RRType = RRType.A,
              message_id: int = 0) -> "Message":
        """A recursive-desired query for one name."""
        return cls(header=Header(message_id=message_id),
                   questions=[Question(DomainName(qname), qtype)])

    def make_response(self, rcode: Rcode = Rcode.NOERROR) -> "Message":
        """A response skeleton echoing this query's id and question."""
        return Message(
            header=Header(message_id=self.header.message_id,
                          is_response=True,
                          recursion_desired=self.header.recursion_desired,
                          recursion_available=True,
                          rcode=rcode),
            questions=list(self.questions))

    def question_name(self) -> DomainName:
        if not self.questions:
            raise DnsFormatError("message has no question")
        return self.questions[0].qname

    # ------------------------------------------------------------------
    # DNS-Cache helpers (the paper's Additional-section extension)
    # ------------------------------------------------------------------
    def attach_cache_lookup(self, rdata: CacheLookupRdata,
                            rclass: RRClass, ttl: int = 0) -> None:
        """Attach a DNS-Cache record to the Additional section."""
        self.additional.append(ResourceRecord(
            self.question_name(), RRType.DNSCACHE, rclass, ttl, rdata))

    def cache_lookup(self, rclass: RRClass | None = None,
                     ) -> CacheLookupRdata | None:
        """The first DNS-Cache RDATA in Additional (optionally by class)."""
        for record in self.additional:
            if record.rtype != RRType.DNSCACHE:
                continue
            if rclass is not None and record.rclass != rclass:
                continue
            return _t.cast(CacheLookupRdata, record.rdata)
        return None

    def first_answer(self, rtype: RRType) -> ResourceRecord | None:
        for record in self.answers:
            if record.rtype == rtype:
                return record
        return None

    # ------------------------------------------------------------------
    # Codec
    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        """Serialize to wire bytes with name compression."""
        if not 0 <= self.header.message_id <= 0xFFFF:
            raise DnsFormatError(
                f"message id out of range: {self.header.message_id}")
        buffer = bytearray(_HEADER_STRUCT.pack(
            self.header.message_id, self.header.flags_word(),
            len(self.questions), len(self.answers),
            len(self.authority), len(self.additional)))
        offsets: dict[tuple[str, ...], int] = {}
        for question in self.questions:
            question.encode(buffer, offsets)
        for section in (self.answers, self.authority, self.additional):
            for record in section:
                record.encode(buffer, offsets)
        return bytes(buffer)

    @classmethod
    def decode(cls, data: bytes) -> "Message":
        """Parse wire bytes back into a message."""
        if len(data) < _HEADER_STRUCT.size:
            raise DnsFormatError("message shorter than header")
        (message_id, flags, qdcount, ancount,
         nscount, arcount) = _HEADER_STRUCT.unpack_from(data, 0)
        message = cls(header=Header.from_flags_word(message_id, flags))
        offset = _HEADER_STRUCT.size
        for _ in range(qdcount):
            question, offset = Question.decode(data, offset)
            message.questions.append(question)
        for count, section in ((ancount, message.answers),
                               (nscount, message.authority),
                               (arcount, message.additional)):
            for _ in range(count):
                record, offset = ResourceRecord.decode(data, offset)
                section.append(record)
        if offset != len(data):
            raise DnsFormatError(
                f"{len(data) - offset} trailing bytes after message")
        return message

    @property
    def wire_size(self) -> int:
        """Encoded size in bytes (used for transmission-delay modeling)."""
        return len(self.encode())
