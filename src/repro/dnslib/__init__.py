"""DNS substrate: wire codec, zones, server roles, stub resolver.

Includes the paper's DNS-Cache extension — a custom RR (TYPE=300) carried
in the Additional section whose RDATA is a list of ``<HASH(URL), FLAG>``
tuples (:mod:`repro.dnslib.cache_rr`).
"""

from repro.dnslib.cache_rr import (
    CacheFlag,
    CacheLookupEntry,
    CacheLookupRdata,
    hash_url,
)
from repro.dnslib.message import Header, Message, Question, Rcode
from repro.dnslib.name import DomainName, decode_name, encode_name
from repro.dnslib.resolver import ResolutionResult, StubResolver
from repro.dnslib.rr import ResourceRecord, RRClass, RRType
from repro.dnslib.server import (
    AuthoritativeService,
    CdnDnsService,
    DnsCacheEntry,
    DnsService,
    ForwardingDnsService,
    RecursiveResolverService,
)
from repro.dnslib.zone import DnsRegistry, Zone

__all__ = [
    "AuthoritativeService",
    "CacheFlag",
    "CacheLookupEntry",
    "CacheLookupRdata",
    "CdnDnsService",
    "DnsCacheEntry",
    "DnsRegistry",
    "DnsService",
    "DomainName",
    "ForwardingDnsService",
    "Header",
    "Message",
    "Question",
    "Rcode",
    "RecursiveResolverService",
    "ResolutionResult",
    "ResourceRecord",
    "RRClass",
    "RRType",
    "StubResolver",
    "Zone",
    "decode_name",
    "encode_name",
    "hash_url",
]
