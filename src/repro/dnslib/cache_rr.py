"""RDATA payload of the DNS-Cache record (paper Fig. 8).

The paper's custom RR carries "a list of two-tuples <HASH(URL), FLAG>".
URLs are hashed "to maintain confidentiality, as DNS messages are
unencrypted"; this implementation uses truncated SHA-256 digests.

Wire layout (big-endian)::

    +--------+------------------------+
    | COUNT  |  COUNT x (HASH, FLAG)  |
    | 2 B    |  16 B + 1 B each       |
    +--------+------------------------+
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import struct
import typing as _t

from repro.errors import DnsFormatError

__all__ = ["CacheFlag", "CacheLookupEntry", "CacheLookupRdata", "hash_url"]

#: Truncated digest length carried on the wire.
URL_HASH_BYTES = 16


def hash_url(url: str) -> bytes:
    """The confidential identifier of a URL inside DNS-Cache messages."""
    return hashlib.sha256(url.encode("utf-8")).digest()[:URL_HASH_BYTES]


class CacheFlag(enum.IntEnum):
    """Per-URL cache status returned by the AP (paper Section IV-B.1).

    * ``REQUEST`` — placeholder flag in client-to-AP lookups.
    * ``CACHE_HIT`` — stored on the AP, fetch it there.
    * ``CACHE_MISS`` — on the AP's block list; fetch from the edge.
    * ``DELEGATION`` — unknown or expired; the AP will fetch-and-cache on
      the client's behalf.
    """

    REQUEST = 0
    CACHE_HIT = 1
    CACHE_MISS = 2
    DELEGATION = 3


@dataclasses.dataclass(frozen=True)
class CacheLookupEntry:
    """One ``<HASH(URL), FLAG>`` tuple."""

    url_hash: bytes
    flag: CacheFlag

    def __post_init__(self) -> None:
        if len(self.url_hash) != URL_HASH_BYTES:
            raise DnsFormatError(
                f"url hash must be {URL_HASH_BYTES} bytes, "
                f"got {len(self.url_hash)}")

    @classmethod
    def for_url(cls, url: str,
                flag: CacheFlag = CacheFlag.REQUEST) -> "CacheLookupEntry":
        return cls(hash_url(url), CacheFlag(flag))


@dataclasses.dataclass
class CacheLookupRdata:
    """The full RDATA: an ordered list of lookup entries."""

    entries: list[CacheLookupEntry] = dataclasses.field(default_factory=list)

    def add(self, url_hash: bytes, flag: CacheFlag) -> None:
        self.entries.append(CacheLookupEntry(url_hash, CacheFlag(flag)))

    def add_url(self, url: str, flag: CacheFlag = CacheFlag.REQUEST) -> None:
        self.entries.append(CacheLookupEntry.for_url(url, flag))

    def flag_for(self, url: str) -> CacheFlag | None:
        """Find the flag matching ``url``'s hash, or None if absent."""
        wanted = hash_url(url)
        for entry in self.entries:
            if entry.url_hash == wanted:
                return entry.flag
        return None

    def hashes(self) -> list[bytes]:
        return [entry.url_hash for entry in self.entries]

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> _t.Iterator[CacheLookupEntry]:
        return iter(self.entries)

    # ------------------------------------------------------------------
    # Codec
    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        if len(self.entries) > 0xFFFF:
            raise DnsFormatError("too many cache lookup entries")
        out = bytearray(struct.pack("!H", len(self.entries)))
        for entry in self.entries:
            out.extend(entry.url_hash)
            out.append(int(entry.flag))
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "CacheLookupRdata":
        if len(data) < 2:
            raise DnsFormatError("truncated DNS-Cache RDATA")
        (count,) = struct.unpack_from("!H", data, 0)
        expected = 2 + count * (URL_HASH_BYTES + 1)
        if len(data) != expected:
            raise DnsFormatError(
                f"DNS-Cache RDATA length {len(data)} != expected {expected}")
        entries = []
        offset = 2
        for _ in range(count):
            url_hash = data[offset:offset + URL_HASH_BYTES]
            offset += URL_HASH_BYTES
            try:
                flag = CacheFlag(data[offset])
            except ValueError:
                raise DnsFormatError(
                    f"unknown cache flag {data[offset]}") from None
            offset += 1
            entries.append(CacheLookupEntry(url_hash, flag))
        return cls(entries)
