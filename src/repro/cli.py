"""Command-line interface: ``python -m repro <experiment> [options]``.

Lists and runs the paper's experiments from a terminal::

    python -m repro list
    python -m repro table1
    python -m repro fig13 --full --seed 3
    python -m repro all
"""

from __future__ import annotations

import argparse
import os
import sys
import typing as _t

from repro._version import __version__
from repro.perf import perf_timer

__all__ = ["main", "build_parser", "EXPERIMENTS"]


def _lazy(module_name: str, attr: str = "run"):
    def runner(quick: bool, seed: int):
        import importlib

        module = importlib.import_module(
            f"repro.experiments.{module_name}")
        return getattr(module, attr)(quick=quick, seed=seed)

    return runner


#: name -> (description, runner(quick, seed) -> table(s)).
EXPERIMENTS: dict[str, tuple[str, _t.Callable]] = {
    "table1": ("Akamai DNS/RTT/hops measurement (Table I)",
               _lazy("table1")),
    "fig2": ("router load under traffic replay (Table II / Fig. 2)",
             _lazy("fig2")),
    "fig11": ("object-level caching latency (Fig. 11a/11c)",
              _lazy("fig11")),
    "fig11b": ("DNS-Cache query overhead (Fig. 11b)",
               _lazy("fig11", "run_lookup_overhead")),
    "tables456": ("PACM vs LRU hit ratios (Tables IV/V/VI)",
                  _lazy("pacm_tables")),
    "fig12": ("real-world apps' latency (Fig. 12)", _lazy("fig12")),
    "fig13": ("app-level latency sweeps (Fig. 13a/b/c)", _lazy("fig13")),
    "fig14": ("AP resource overhead (Fig. 14)", _lazy("fig14")),
    "table7": ("programming effort comparison (Table VII)",
               _lazy("table7")),
    "ablations": ("design-choice ablations (beyond the paper)",
                  _lazy("ablations")),
    "offline": ("offline policy replay vs clairvoyant Belady bound",
                _lazy("offline_optimal")),
    "multiap": ("distributed Wi-Cache scaling with AP count",
                _lazy("multi_ap")),
    "replication": ("multi-seed replication with confidence intervals",
                    _lazy("replication")),
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree: one subcommand per experiment plus `list`."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="APE-CACHE reproduction: run the paper's experiments.")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list available experiments")

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--full", action="store_true",
                        help="paper-length (1 h) runs instead of quick")
    common.add_argument("--seed", type=int, default=0,
                        help="master random seed (default 0)")
    common.add_argument("--format", choices=("text", "csv", "json"),
                        default="text", help="output format")
    common.add_argument("--output", type=str, default=None,
                        help="write results to this file instead of stdout")

    for name, (description, _runner) in EXPERIMENTS.items():
        subparsers.add_parser(name, help=description, parents=[common])
    subparsers.add_parser("all", help="run every experiment in order",
                          parents=[common])

    obs = subparsers.add_parser(
        "obs", parents=[common],
        help="telemetry panel: per-stage latency breakdown, per-app "
             "hit ratios, span export")
    obs.add_argument("--spans", type=str, default=None, metavar="FILE",
                     help="write the run's span log to FILE as JSONL")
    obs.add_argument("--profile", action="store_true",
                     help="also report host events/sec and wall-ms "
                          "per sim-s")
    return parser


def _render_tables(result: object, fmt: str) -> str:
    tables = result if isinstance(result, list) else [result]
    if fmt == "csv":
        return "\n".join(table.to_csv() for table in tables)
    if fmt == "json":
        return "[\n" + ",\n".join(table.to_json()
                                  for table in tables) + "\n]"
    return "\n\n".join(table.render() for table in tables)


def main(argv: _t.Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command in (None, "list"):
        width = max(len(name) for name in EXPERIMENTS)
        print("available experiments:")
        for name, (description, _runner) in EXPERIMENTS.items():
            print(f"  {name.ljust(width)}  {description}")
        print(f"  {'all'.ljust(width)}  run everything")
        print(f"  {'obs'.ljust(width)}  telemetry panel: per-stage "
              f"latency, per-app hit ratios, span export")
        return 0

    if args.full:
        os.environ["REPRO_FULL"] = "1"
    quick = not args.full

    elapsed = perf_timer()
    if args.command == "obs":
        from repro.telemetry.obs import run_obs

        print("--- obs: unified telemetry panel ---", file=sys.stderr,
              flush=True)
        rendered = _render_tables(
            run_obs(quick, args.seed, spans_path=args.spans,
                    profile=args.profile), args.format)
    else:
        names = (list(EXPERIMENTS) if args.command == "all"
                 else [args.command])
        chunks = []
        for name in names:
            description, runner = EXPERIMENTS[name]
            print(f"--- {name}: {description} ---", file=sys.stderr,
                  flush=True)
            chunks.append(_render_tables(runner(quick, args.seed),
                                         args.format))
        rendered = "\n\n".join(chunks)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(rendered)
    print(f"done in {elapsed():.0f}s", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
