"""Command-line interface: ``python -m repro <experiment> [options]``.

Lists and runs the paper's experiments from a terminal::

    python -m repro list
    python -m repro table1
    python -m repro fig13 --full --seed 3 --jobs 4
    python -m repro all
    python -m repro sweep --systems APE-CACHE,Wi-Cache --seeds 0,1 \\
        --duration-s 60 --jobs 2 --json

``sweep`` runs an ad-hoc declarative scenario through the sweep engine;
its output is deterministic, so ``--jobs 2`` and ``--jobs 1`` produce
byte-identical results (``tools/check.sh`` enforces this).
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
import typing as _t

from repro._version import __version__
from repro.perf import perf_timer

__all__ = ["main", "build_parser", "EXPERIMENTS"]


def _lazy(module_name: str, attr: str = "run"):
    def runner(quick: bool, seed: int, jobs: int = 1):
        import importlib

        module = importlib.import_module(
            f"repro.experiments.{module_name}")
        return getattr(module, attr)(quick=quick, seed=seed, jobs=jobs)

    return runner


#: name -> (description, runner(quick, seed) -> table(s)).
EXPERIMENTS: dict[str, tuple[str, _t.Callable]] = {
    "table1": ("Akamai DNS/RTT/hops measurement (Table I)",
               _lazy("table1")),
    "fig2": ("router load under traffic replay (Table II / Fig. 2)",
             _lazy("fig2")),
    "fig11": ("object-level caching latency (Fig. 11a/11c)",
              _lazy("fig11")),
    "fig11b": ("DNS-Cache query overhead (Fig. 11b)",
               _lazy("fig11", "run_lookup_overhead")),
    "tables456": ("PACM vs LRU hit ratios (Tables IV/V/VI)",
                  _lazy("pacm_tables")),
    "fig12": ("real-world apps' latency (Fig. 12)", _lazy("fig12")),
    "fig13": ("app-level latency sweeps (Fig. 13a/b/c)", _lazy("fig13")),
    "fig14": ("AP resource overhead (Fig. 14)", _lazy("fig14")),
    "table7": ("programming effort comparison (Table VII)",
               _lazy("table7")),
    "ablations": ("design-choice ablations (beyond the paper)",
                  _lazy("ablations")),
    "offline": ("offline policy replay vs clairvoyant Belady bound",
                _lazy("offline_optimal")),
    "multiap": ("distributed Wi-Cache scaling with AP count",
                _lazy("multi_ap")),
    "replication": ("multi-seed replication with confidence intervals",
                    _lazy("replication")),
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree: one subcommand per experiment plus `list`."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="APE-CACHE reproduction: run the paper's experiments.")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list available experiments")

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--full", action="store_true",
                        help="paper-length (1 h) runs instead of quick")
    common.add_argument("--seed", type=int, default=0,
                        help="master random seed (default 0)")
    common.add_argument("--format", choices=("text", "csv", "json"),
                        default="text", help="output format")
    common.add_argument("--output", type=str, default=None,
                        help="write results to this file instead of stdout")
    common.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run sweep cells across N worker processes "
                             "(default 1 = in-process)")

    for name, (description, _runner) in EXPERIMENTS.items():
        subparsers.add_parser(name, help=description, parents=[common])
    subparsers.add_parser("all", help="run every experiment in order",
                          parents=[common])

    sweep = subparsers.add_parser(
        "sweep",
        help="run an ad-hoc declarative scenario through the sweep "
             "engine (deterministic across --jobs)")
    sweep.add_argument("--name", type=str, default="cli-sweep",
                       help="scenario name (labels the output)")
    sweep.add_argument("--systems", type=str, default="APE-CACHE",
                       help="comma-separated system names (see "
                            "repro.runner.system_names)")
    sweep.add_argument("--seeds", type=str, default="0",
                       help="comma-separated seed list (default 0)")
    sweep.add_argument("--n-apps", type=int, default=None,
                       help="workload app count override")
    sweep.add_argument("--duration-s", type=float, default=None,
                       help="simulated duration per cell (seconds)")
    sweep.add_argument("--axis", action="append", default=[],
                       metavar="FIELD=V1,V2,...",
                       help="sweep a workload field over values "
                            "(repeatable; dotted keys reach "
                            "dummy_params.*/testbed.*)")
    sweep.add_argument("--set", action="append", default=[],
                       metavar="FIELD=VALUE", dest="overrides",
                       help="fixed workload override applied to every "
                            "cell (repeatable)")
    sweep.add_argument("--telemetry", action="store_true",
                       help="attach a telemetry snapshot to every cell")
    sweep.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker process count (default 1)")
    sweep.add_argument("--runner", type=str, default="workload",
                       help="cell runner: a registry name or "
                            "module:function path (default workload)")
    sweep.add_argument("--memo", nargs="?", const="build/sweep-memo.json",
                       default=None, metavar="FILE",
                       help="serve cells of effect-certified runners "
                            "from this content-addressed cache "
                            "(default FILE: build/sweep-memo.json; "
                            "requires a fresh build/effects.json from "
                            "`python -m repro.lint`)")
    sweep.add_argument("--stats", action="store_true",
                       help="print memo hit/miss statistics to stderr "
                            "(stdout stays byte-comparable)")
    sweep.add_argument("--json", action="store_true",
                       help="emit the full per-cell JSON document "
                            "instead of a table")
    sweep.add_argument("--merged-telemetry", type=str, default=None,
                       metavar="FILE",
                       help="fold every cell's telemetry shard into "
                            "one registry and write its metric JSONL "
                            "to FILE (implies --telemetry; "
                            "byte-identical across --jobs)")
    sweep.add_argument("--output", type=str, default=None,
                       help="write results to this file instead of stdout")

    obs = subparsers.add_parser(
        "obs", parents=[common],
        help="telemetry panel: per-stage latency breakdown, "
             "critical-path attribution, per-app hit ratios, exports")
    obs.add_argument("--spans", "--export-spans", type=str,
                     default=None, metavar="FILE", dest="spans",
                     help="write the run's span log to FILE as JSONL")
    obs.add_argument("--export-metrics", type=str, default=None,
                     metavar="FILE",
                     help="write every metric record to FILE as JSONL")
    obs.add_argument("--export-trace", type=str, default=None,
                     metavar="FILE",
                     help="write a Chrome trace-event JSON of the span "
                          "trees to FILE (view in ui.perfetto.dev)")
    obs.add_argument("--profile", action="store_true",
                     help="also report host events/sec and wall-ms "
                          "per sim-s")
    obs.add_argument("--backend", type=str, default="exact",
                     choices=("exact", "sketch"),
                     help="histogram storage: exact raw samples or "
                          "the fixed-memory mergeable quantile sketch "
                          "(default exact)")
    obs.add_argument("--tail-threshold-ms", type=float, default=None,
                     metavar="MS",
                     help="tail-sample traces: keep every request "
                          "slower than MS end-to-end (plus errors)")
    obs.add_argument("--tail-sample-every", type=int, default=0,
                     metavar="N",
                     help="tail-sample traces: also keep a "
                          "deterministic 1-in-N baseline")
    obs.add_argument("--fleet", type=int, default=0, metavar="N_APS",
                     help="also run an N-AP distributed Wi-Cache "
                          "fleet and render the merged per-AP shard "
                          "rollup (per-AP hit ratio + Gini)")
    obs.add_argument("--top", type=int, default=0, metavar="N",
                     help="also list the N slowest request traces "
                          "with per-stage self-times")
    obs.add_argument("--follow", type=str, default=None, metavar="URL",
                     help="stream mode: poll a live admin plane's "
                          "/metrics endpoint and re-render the panels "
                          "each interval instead of running the sim")
    obs.add_argument("--interval", type=float, default=2.0,
                     metavar="S",
                     help="poll interval for --follow (default 2 s)")
    obs.add_argument("--count", type=int, default=0, metavar="N",
                     help="stop --follow after N polls "
                          "(default 0 = until the endpoint goes away)")

    sentry = subparsers.add_parser(
        "sentry", parents=[common],
        help="regression sentry: evaluate [tool.repro-sentry] latency/"
             "throughput budgets over one instrumented run; writes "
             "BENCH_obs.json and exits non-zero on violations")
    sentry.add_argument("--budget", action="append", default=[],
                        metavar="EXPR",
                        help="extra budget expression, e.g. "
                             "'stage:ap-hit/total/p95 <= 20' "
                             "(repeatable, applied after pyproject)")
    sentry.add_argument("--pyproject", type=str,
                        default="pyproject.toml",
                        help="pyproject.toml holding "
                             "[tool.repro-sentry] (default ./)")
    sentry.add_argument("--report", type=str, default=None,
                        metavar="FILE",
                        help="where to write the JSON report "
                             "(default BENCH_obs.json)")
    sentry.add_argument("--profile", action="store_true",
                        help="profile the host run and evaluate "
                             "profile: budgets (results land under the "
                             "report's nondeterministic 'timings' key)")
    sentry.add_argument("--live-metrics", type=str, default=None,
                        metavar="FILE",
                        help="evaluate [tool.repro-sentry].live-budgets "
                             "against an exported live metric JSONL "
                             "instead of running the sim")

    live = subparsers.add_parser(
        "live",
        help="serve the live stack on loopback sockets (real asyncio "
             "DNS/HTTP, wall-clock engine) and run a demo fetch driver")
    live.add_argument("--requests", type=int, default=6, metavar="N",
                      help="demo requests to drive before idling "
                           "(default 6; 0 = none)")
    live.add_argument("--serve", action="store_true",
                      help="stay up after the demo until SIGINT/"
                           "SIGTERM, then drain and exit 0")
    live.add_argument("--spans", type=str, default="", metavar="FILE",
                      help="flush the span log to FILE as JSONL on "
                           "shutdown")
    live.add_argument("--export-metrics", type=str, default="",
                      metavar="FILE",
                      help="flush metric records to FILE as JSONL on "
                           "shutdown")
    live.add_argument("--logs", type=str, default="", metavar="FILE",
                      help="flush the structured log (trace-correlated "
                           "JSONL) to FILE on shutdown")
    live.add_argument("--metrics-port", type=int, default=None,
                      metavar="PORT",
                      help="bind the admin plane (/metrics, /healthz, "
                           "/debug/traces) on PORT (0 = ephemeral; "
                           "default: no admin plane)")
    live.add_argument("--drain-grace-s", type=float, default=0.0,
                      metavar="S",
                      help="hold the 'draining' state for S seconds "
                           "before closing listeners (default 0)")
    live.add_argument("--watchdog-interval-s", type=float,
                      default=0.25, metavar="S",
                      help="event-loop lag watchdog probe interval "
                           "(default 0.25 s)")
    live.add_argument("--inject-stall-ms", type=float, default=0.0,
                      metavar="MS",
                      help="debug: block the event loop for MS after "
                           "the demo to exercise the stall watchdog")

    parity = subparsers.add_parser(
        "parity", parents=[common],
        help="replay one workload through the sim and live engines "
             "and diff the stage attributions (docs/live.md)")
    parity.add_argument("--quick", action="store_true",
                        help="short replay (the default; --full for "
                             "the longer sequence)")
    parity.add_argument("--tolerance-ms", type=float,
                        default=None, metavar="MS",
                        help="per-stat wall-jitter tolerance in ms "
                             "(default 250)")
    parity.add_argument("--pyproject", type=str,
                        default="pyproject.toml",
                        help="pyproject.toml holding [tool.repro-"
                             "sentry].live-budgets (default ./)")

    diff = subparsers.add_parser(
        "diff", parents=[common],
        help="diff two exported runs (JSONL paths) or two systems "
             "across a seed fleet with significance annotations")
    diff.add_argument("runs", nargs="*", metavar="RUN",
                      help="two exported runs: spans/metrics .jsonl "
                           "files or directories holding spans.jsonl/"
                           "metrics.jsonl")
    diff.add_argument("--systems", type=str, default=None,
                      metavar="A,B",
                      help="compare two systems across --seeds instead "
                           "of two exported runs")
    diff.add_argument("--seeds", type=str, default="0,1,2",
                      help="seed fleet for --systems (default 0,1,2)")
    diff.add_argument("--n-apps", type=int, default=None,
                      help="workload app count override (--systems)")
    diff.add_argument("--duration-s", type=float, default=None,
                      help="simulated seconds per run (--systems)")
    diff.add_argument("--tolerance", type=float, default=0.0,
                      help="absolute delta below which values are "
                           "equal (default 0 = byte-exact)")
    return parser


def _render_tables(result: object, fmt: str) -> str:
    tables = result if isinstance(result, list) else [result]
    if fmt == "csv":
        return "\n".join(table.to_csv() for table in tables)
    if fmt == "json":
        return "[\n" + ",\n".join(table.to_json()
                                  for table in tables) + "\n]"
    return "\n\n".join(table.render() for table in tables)


def _parse_scalar(text: str) -> object:
    """``--axis``/``--set`` values: Python literals, else bare strings."""
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _split_kv(item: str, flag: str) -> tuple[str, str]:
    field, sep, value = item.partition("=")
    if not sep or not field:
        from repro.errors import ConfigError

        raise ConfigError(f"{flag} expects FIELD=VALUE, got {item!r}")
    return field, value


def _run_sweep(args: argparse.Namespace) -> str:
    """Build the ad-hoc spec from flags, run it, render the result."""
    from repro.apps.workload import WorkloadConfig
    from repro.runner import ScenarioSpec, SweepEngine, cells_table

    systems = tuple(name.strip() for name in args.systems.split(",")
                    if name.strip())
    seeds = tuple(int(seed) for seed in args.seeds.split(",")
                  if seed.strip())
    workload_kwargs: dict[str, _t.Any] = {}
    if args.n_apps is not None:
        workload_kwargs["n_apps"] = args.n_apps
    axes: dict[str, tuple[object, ...]] = {}
    for item in args.axis:
        field, values = _split_kv(item, "--axis")
        axes[field] = tuple(_parse_scalar(value)
                            for value in values.split(","))
    overrides: dict[str, object] = {}
    for item in args.overrides:
        field, value = _split_kv(item, "--set")
        overrides[field] = _parse_scalar(value)

    spec = ScenarioSpec(
        name=args.name, systems=systems, seeds=seeds,
        workload=WorkloadConfig(**workload_kwargs), axes=axes,
        overrides=overrides, duration_s=args.duration_s,
        runner=args.runner,
        telemetry=args.telemetry or bool(args.merged_telemetry))
    memo = None
    if args.memo:
        from repro.runner.memo import Memoizer

        memo = Memoizer(cache_path=args.memo)
    engine = SweepEngine(jobs=args.jobs, memo=memo)
    result = engine.run(spec)
    if args.stats and memo is not None:
        print(memo.stats.summary(), file=sys.stderr)
    if args.merged_telemetry:
        from repro.telemetry.export import write_metrics_jsonl

        count = write_metrics_jsonl(result.merged_telemetry(),
                                    args.merged_telemetry)
        print(f"sweep: wrote {count} merged metric records to "
              f"{args.merged_telemetry}", file=sys.stderr)
    if args.json:
        return result.to_json()
    return cells_table(result).render()


def _run_diff(args: argparse.Namespace) -> str:
    """Diff two exported runs, or two systems across a seed fleet."""
    from repro.errors import ConfigError

    if args.systems:
        from repro.telemetry.analysis import compare_systems

        names = [name.strip() for name in args.systems.split(",")
                 if name.strip()]
        if len(names) != 2:
            raise ConfigError(
                f"--systems expects exactly two names, got {names}")
        seeds = tuple(int(seed) for seed in args.seeds.split(",")
                      if seed.strip())
        return compare_systems(
            names[0], names[1], seeds=seeds, n_apps=args.n_apps,
            duration_s=args.duration_s, jobs=args.jobs).render()
    if len(args.runs) != 2:
        raise ConfigError(
            "diff expects two exported run paths (or --systems A,B)")
    from repro.telemetry.analysis import diff_runs, load_run

    delta = diff_runs(load_run(args.runs[0]), load_run(args.runs[1]),
                      tolerance=args.tolerance)
    return delta.render()


def _emit(rendered: str, output: str | None) -> None:
    if output:
        with open(output, "w") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {output}", file=sys.stderr)
    else:
        print(rendered)


def main(argv: _t.Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command in (None, "list"):
        width = max(len(name) for name in EXPERIMENTS)
        print("available experiments:")
        for name, (description, _runner) in EXPERIMENTS.items():
            print(f"  {name.ljust(width)}  {description}")
        print(f"  {'all'.ljust(width)}  run everything")
        print(f"  {'obs'.ljust(width)}  telemetry panel: per-stage "
              f"latency, attribution, hit ratios, exports")
        print(f"  {'sentry'.ljust(width)}  regression sentry: budget "
              f"gates over one instrumented run (BENCH_obs.json)")
        print(f"  {'diff'.ljust(width)}  diff two exported runs or two "
              f"systems across a seed fleet")
        print(f"  {'sweep'.ljust(width)}  ad-hoc declarative scenario "
              f"through the sweep engine")
        print(f"  {'live'.ljust(width)}  serve the stack on loopback "
              f"sockets (wall-clock engine, real asyncio DNS/HTTP)")
        print(f"  {'parity'.ljust(width)}  replay one workload through "
              f"sim and live engines and diff stage attributions")
        return 0

    if args.command == "live":
        from repro.engine.live import run_live
        from repro.errors import ReproError

        print("--- live: APE-CACHE on loopback sockets ---",
              file=sys.stderr, flush=True)
        try:
            return run_live(demo_requests=args.requests,
                            serve=args.serve,
                            spans_path=args.spans,
                            metrics_path=args.export_metrics,
                            logs_path=args.logs,
                            metrics_port=args.metrics_port,
                            drain_grace_s=args.drain_grace_s,
                            watchdog_interval_s=args.watchdog_interval_s,
                            inject_stall_ms=args.inject_stall_ms)
        except (ReproError, OSError) as error:
            print(f"live: {error}", file=sys.stderr)
            return 2

    if args.command == "sweep":
        from repro.errors import ConfigError

        elapsed = perf_timer()
        try:
            rendered = _run_sweep(args)
        except ConfigError as error:
            print(f"sweep: {error}", file=sys.stderr)
            return 2
        _emit(rendered, args.output)
        print(f"done in {elapsed():.0f}s", file=sys.stderr)
        return 0

    if args.full:
        os.environ["REPRO_FULL"] = "1"
    quick = not args.full

    elapsed = perf_timer()
    if args.command == "obs" and args.follow:
        from repro.errors import ReproError
        from repro.telemetry.obs import follow_obs

        print("--- obs: following a live admin plane ---",
              file=sys.stderr, flush=True)
        try:
            return follow_obs(args.follow, interval_s=args.interval,
                              count=args.count,
                              metrics_path=args.export_metrics)
        except (ReproError, OSError) as error:
            print(f"obs: {error}", file=sys.stderr)
            return 2
    if args.command == "obs":
        from repro.telemetry.obs import run_obs

        print("--- obs: unified telemetry panel ---", file=sys.stderr,
              flush=True)
        rendered = _render_tables(
            run_obs(quick, args.seed, spans_path=args.spans,
                    profile=args.profile,
                    metrics_path=args.export_metrics,
                    trace_path=args.export_trace,
                    backend=args.backend,
                    tail_threshold_ms=args.tail_threshold_ms,
                    tail_sample_every=args.tail_sample_every,
                    fleet=args.fleet, top=args.top), args.format)
    elif args.command == "sentry" and args.live_metrics:
        from repro.errors import ConfigError
        from repro.telemetry.sentry import run_live_sentry

        print("--- sentry: live-metrics budget gate ---",
              file=sys.stderr, flush=True)
        try:
            tables, code = run_live_sentry(
                args.live_metrics, pyproject=args.pyproject,
                extra_budgets=args.budget)
        except (ConfigError, OSError) as error:
            print(f"sentry: {error}", file=sys.stderr)
            return 2
        _emit(_render_tables(tables, args.format), args.output)
        print(f"done in {elapsed():.0f}s", file=sys.stderr)
        return code
    elif args.command == "sentry":
        from repro.errors import ConfigError
        from repro.telemetry.sentry import DEFAULT_REPORT_PATH, \
            run_sentry

        print("--- sentry: telemetry regression gate ---",
              file=sys.stderr, flush=True)
        try:
            tables, code = run_sentry(
                quick=quick, seed=args.seed,
                output=args.report or DEFAULT_REPORT_PATH,
                pyproject=args.pyproject,
                extra_budgets=args.budget, profile=args.profile)
        except (ConfigError, OSError) as error:
            print(f"sentry: {error}", file=sys.stderr)
            return 2
        _emit(_render_tables(tables, args.format), args.output)
        print(f"done in {elapsed():.0f}s", file=sys.stderr)
        return code
    elif args.command == "parity":
        from repro.engine.parity import DEFAULT_TOLERANCE_MS, \
            run_parity
        from repro.errors import ReproError

        print("--- parity: sim vs live engine replay ---",
              file=sys.stderr, flush=True)
        try:
            tables, code = run_parity(
                quick=quick, seed=args.seed,
                tolerance_ms=(args.tolerance_ms
                              if args.tolerance_ms is not None
                              else DEFAULT_TOLERANCE_MS),
                pyproject=args.pyproject,
                emit=lambda line: print(line, file=sys.stderr,
                                        flush=True))
        except (ReproError, OSError) as error:
            print(f"parity: {error}", file=sys.stderr)
            return 2
        _emit(_render_tables(tables, args.format), args.output)
        print(f"done in {elapsed():.0f}s", file=sys.stderr)
        return code
    elif args.command == "diff":
        from repro.errors import ConfigError, TelemetryError

        try:
            rendered = _run_diff(args)
        except (ConfigError, TelemetryError, OSError,
                ValueError) as error:
            print(f"diff: {error}", file=sys.stderr)
            return 2
        # An identical pair diffs to the empty string — keep it
        # *byte*-empty (no trailing newline) so tools can gate on it.
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(rendered + "\n" if rendered else "")
            print(f"wrote {args.output}", file=sys.stderr)
        elif rendered:
            print(rendered)
        print(f"done in {elapsed():.0f}s", file=sys.stderr)
        return 0
    else:
        names = (list(EXPERIMENTS) if args.command == "all"
                 else [args.command])
        chunks = []
        for name in names:
            description, runner = EXPERIMENTS[name]
            print(f"--- {name}: {description} ---", file=sys.stderr,
                  flush=True)
            chunks.append(_render_tables(
                runner(quick, args.seed, jobs=args.jobs), args.format))
        rendered = "\n\n".join(chunks)
    _emit(rendered, args.output)
    print(f"done in {elapsed():.0f}s", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
