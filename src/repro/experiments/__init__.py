"""Experiment harness: one module per paper table/figure, plus ablations.

Every module exposes ``run(quick=True, seed=0, jobs=1)`` returning
:class:`~repro.experiments.common.ExperimentTable` objects; ``quick``
shortens simulated durations for CI, and ``REPRO_FULL=1`` in the
environment forces paper-length (one-hour) runs regardless.

Experiments do not orchestrate workloads directly: each declares one or
more :class:`~repro.runner.spec.ScenarioSpec` objects and hands them to
the :class:`~repro.runner.engine.SweepEngine` (``jobs > 1`` fans cells
out over a process pool with identical results — see
``docs/experiments.md``), then folds the per-cell metrics into tables.

| Paper artifact | Module |
|---|---|
| Table I        | :mod:`repro.experiments.table1` |
| Table II/Fig 2 | :mod:`repro.experiments.fig2` |
| Fig 11a/b/c    | :mod:`repro.experiments.fig11` |
| Tables IV-VI   | :mod:`repro.experiments.pacm_tables` |
| Fig 12         | :mod:`repro.experiments.fig12` |
| Fig 13a/b/c    | :mod:`repro.experiments.fig13` |
| Fig 14         | :mod:`repro.experiments.fig14` |
| Table VII      | :mod:`repro.experiments.table7` |
| (extensions)   | :mod:`repro.experiments.ablations` |
"""

from repro.experiments.common import ExperimentTable, effective_duration

__all__ = ["ExperimentTable", "effective_duration", "run_all"]


def run_all(quick: bool = True, seed: int = 0,
            jobs: int = 1) -> list[ExperimentTable]:
    """Run every experiment; returns all tables in paper order."""
    from repro.experiments import (
        ablations,
        fig2,
        fig11,
        fig12,
        fig13,
        fig14,
        pacm_tables,
        table1,
        table7,
    )

    tables: list[ExperimentTable] = []
    tables.append(table1.run(quick, seed, jobs))
    tables.append(fig2.run(quick, seed, jobs))
    tables.extend(fig11.run(quick, seed, jobs))
    tables.append(fig11.run_lookup_overhead(quick, seed, jobs))
    tables.extend(pacm_tables.run(quick, seed, jobs))
    tables.extend(fig12.run(quick, seed, jobs))
    tables.extend(fig13.run(quick, seed, jobs))
    tables.append(fig14.run(quick, seed, jobs))
    tables.append(table7.run(quick, seed, jobs))
    tables.extend(ablations.run(quick, seed, jobs))
    return tables
