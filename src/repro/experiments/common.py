"""Shared experiment scaffolding: result tables and run scaling.

Every experiment module exposes ``run(quick=True)`` returning one or
more :class:`ExperimentTable` objects that render as the same rows the
paper prints.  ``quick`` trades simulated duration for wall-clock time;
the full setting matches the paper's one-hour runs.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
import os

from repro.sim.kernel import HOUR, MINUTE

__all__ = ["ExperimentTable", "quick_duration", "full_requested",
           "effective_duration"]


@dataclasses.dataclass
class ExperimentTable:
    """A rendered experiment result: titled rows of named columns."""

    title: str
    columns: list[str]
    rows: list[dict[str, object]] = dataclasses.field(default_factory=list)
    notes: list[str] = dataclasses.field(default_factory=list)

    def add_row(self, **values: object) -> None:
        unknown = set(values) - set(self.columns)
        if unknown:
            raise ValueError(f"unknown columns {sorted(unknown)}")
        self.rows.append(values)

    def column(self, name: str) -> list[object]:
        return [row.get(name) for row in self.rows]

    @staticmethod
    def _format(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}" if abs(value) < 10 else f"{value:.1f}"
        return str(value)

    def render(self) -> str:
        """Fixed-width text rendering, one row per line."""
        cells = [[self._format(row.get(column, "")) for column in
                  self.columns] for row in self.rows]
        widths = [max(len(column), *(len(line[index]) for line in cells))
                  if cells else len(column)
                  for index, column in enumerate(self.columns)]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(column.ljust(width) for column, width
                               in zip(self.columns, widths)))
        lines.append("  ".join("-" * width for width in widths))
        for line in cells:
            lines.append("  ".join(cell.ljust(width) for cell, width
                                   in zip(line, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV rendering (header row + data rows)."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=self.columns)
        writer.writeheader()
        for row in self.rows:
            writer.writerow({column: row.get(column, "")
                             for column in self.columns})
        return buffer.getvalue()

    def to_json(self) -> str:
        """JSON rendering: title, columns, rows, notes."""
        return json.dumps({
            "title": self.title,
            "columns": self.columns,
            "rows": self.rows,
            "notes": self.notes,
        }, indent=2, default=str)

    def __str__(self) -> str:
        return self.render()


def full_requested() -> bool:
    """True when the environment asks for paper-length runs."""
    return os.environ.get("REPRO_FULL", "") not in ("", "0", "false")


def quick_duration(quick: bool, quick_s: float = 4 * MINUTE,
                   full_s: float = 1 * HOUR) -> float:
    """Simulated duration: short for CI, paper-length otherwise."""
    return quick_s if quick else full_s


def effective_duration(quick: bool = True,
                       quick_s: float = 4 * MINUTE) -> float:
    """Honors ``REPRO_FULL=1`` over the caller's ``quick`` flag."""
    if full_requested():
        return quick_duration(False)
    return quick_duration(quick, quick_s=quick_s)
