"""Experiment Table VII: programming effort of the two models.

Measures, from this repository's actual source code:

* **Impacted LoCs** — lines a developer touches to integrate each app:
  the ``cacheable(...)`` declarations for the annotation model, versus
  the rewritten call-site lines for the API model;
* **Extra binary size** — bytes of client-library code each model links
  in (both pull in the same runtime, so they match, as in the paper);
* **Re-write logic** — whether app control flow had to change.

The analysis executes as one system-less scenario cell.
"""

from __future__ import annotations

import inspect
import py_compile
import tempfile
from pathlib import Path

import repro.apps.api_ports as api_ports
import repro.apps.movietrailer as movietrailer
import repro.apps.virtualhome as virtualhome
import repro.core.annotations as annotations_module
import repro.core.api_model as api_model_module
import repro.core.client_runtime as client_runtime_module
from repro.experiments.common import ExperimentTable
from repro.runner import ScenarioSpec, SweepEngine
from repro.runner.spec import Cell

__all__ = ["run", "effort_cell", "annotation_impacted_locs",
           "api_impacted_locs", "client_library_binary_bytes"]


def annotation_impacted_locs(api_class: type) -> int:
    """Lines occupied by ``cacheable(...)`` declarations in the class."""
    source = inspect.getsource(api_class)
    count = 0
    in_declaration = False
    depth = 0
    for line in source.splitlines():
        stripped = line.strip()
        if "cacheable(" in stripped:
            in_declaration = True
            depth = 0
        if in_declaration:
            count += 1
            depth += stripped.count("(") - stripped.count(")")
            if depth <= 0:
                in_declaration = False
    return count


def api_impacted_locs(method) -> int:
    """Rewritten call-site lines between the BEGIN/END markers."""
    source = inspect.getsource(method)
    count = 0
    counting = False
    for line in source.splitlines():
        stripped = line.strip()
        if stripped.startswith("# BEGIN rewritten"):
            counting = True
            continue
        if stripped.startswith("# END rewritten"):
            counting = False
            continue
        if counting and stripped and not stripped.startswith("#"):
            count += 1
    return count


def client_library_binary_bytes() -> int:
    """Compiled size of the client-side library both models link in."""
    total = 0
    for module in (client_runtime_module, annotations_module,
                   api_model_module):
        source_path = inspect.getsourcefile(module)
        assert source_path is not None
        with tempfile.NamedTemporaryFile(suffix=".pyc",
                                         delete=False) as handle:
            output = handle.name
        py_compile.compile(source_path, cfile=output, doraise=True)
        total += Path(output).stat().st_size
        Path(output).unlink()
    return total


def effort_cell(cell: Cell) -> dict[str, object]:
    """Cell runner: the full programming-effort static analysis."""
    del cell  # static analysis; nothing to scale or randomize
    return {
        "binary_kb": client_library_binary_bytes() / 1024.0,
        "movietrailer_annotation_locs": annotation_impacted_locs(
            movietrailer.MovieTrailerApi),
        "movietrailer_api_locs": api_impacted_locs(
            api_ports.MovieTrailerApiBased.fetch_movie),
        "virtualhome_annotation_locs": annotation_impacted_locs(
            virtualhome.VirtualHomeApi),
        "virtualhome_api_locs": api_impacted_locs(
            api_ports.VirtualHomeApiBased.place_furniture),
    }


def run(quick: bool = True, seed: int = 0,
        jobs: int = 1) -> ExperimentTable:
    del quick  # static analysis; nothing to scale
    spec = ScenarioSpec(
        name="table7-effort", systems=(None,), seeds=(seed,),
        workload=None, runner="repro.experiments.table7:effort_cell")
    metrics = SweepEngine(jobs=jobs).run(spec).cells[0].metrics
    binary_kb = metrics["binary_kb"]
    table = ExperimentTable(
        title="Table VII: Programming efforts comparison",
        columns=["app", "approach", "impacted_locs",
                 "extra_binary_kb", "rewrite_logic", "paper_locs"])
    table.add_row(app="MovieTrailer", approach="APE-CACHE (annotations)",
                  impacted_locs=metrics["movietrailer_annotation_locs"],
                  extra_binary_kb=binary_kb, rewrite_logic="No",
                  paper_locs=5)
    table.add_row(app="MovieTrailer", approach="API-based",
                  impacted_locs=metrics["movietrailer_api_locs"],
                  extra_binary_kb=binary_kb, rewrite_logic="Yes",
                  paper_locs=30)
    table.add_row(app="VirtualHome", approach="APE-CACHE (annotations)",
                  impacted_locs=metrics["virtualhome_annotation_locs"],
                  extra_binary_kb=binary_kb, rewrite_logic="No",
                  paper_locs=2)
    table.add_row(app="VirtualHome", approach="API-based",
                  impacted_locs=metrics["virtualhome_api_locs"],
                  extra_binary_kb=binary_kb, rewrite_logic="Yes",
                  paper_locs=14)
    table.notes.append(
        "paper: annotations impact 5/2 LoCs vs 30/14 for the API model; "
        "both add ~32 kb of client binary; only the API model rewrites "
        "app logic")
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
