"""Experiments Tables IV, V, VI: PACM vs LRU cache hit ratios.

Each table varies one workload dimension — object size range (IV), app
usage frequency (V), app quantity (VI) — and reports the average hit
ratio, the high-priority hit ratio under PACM, and LRU's hit ratio (the
management used by Wi-Cache and APE-CACHE-LRU).

Each sweep declares one :class:`~repro.runner.spec.ScenarioSpec` over
the two APE systems and runs it through the scenario engine; the paper
columns fold out of the per-cell hit-ratio metrics.
"""

from __future__ import annotations

from repro.apps.generator import DummyAppParams
from repro.apps.workload import WorkloadConfig
from repro.experiments.common import ExperimentTable, effective_duration
from repro.runner import ScenarioSpec, SweepEngine, SweepPoint
from repro.runner.engine import SweepResult
from repro.sim.kernel import MINUTE
from repro.testbed import TestbedConfig

__all__ = ["run", "run_size_sweep", "run_frequency_sweep",
           "run_quantity_sweep", "size_range_axis", "PAPER_TABLE4",
           "PAPER_TABLE5", "PAPER_TABLE6"]

KB = 1024

SIZE_RANGES = ((1, 100), (1, 200), (1, 300), (1, 400), (1, 500))
FREQUENCIES = (1.0, 1.5, 2.0, 2.5, 3.0)
APP_QUANTITIES = (5, 10, 15, 20, 25, 30)

#: Paper values: {x: (PACM-Avg, PACM-High, LRU)}.
PAPER_TABLE4 = {100: (0.632, 0.832, 0.631), 200: (0.514, 0.754, 0.528),
                300: (0.426, 0.616, 0.430), 400: (0.320, 0.457, 0.316),
                500: (0.226, 0.304, 0.220)}
PAPER_TABLE5 = {1.0: (0.507, 0.743, 0.512), 1.5: (0.563, 0.766, 0.566),
                2.0: (0.626, 0.774, 0.625), 2.5: (0.627, 0.810, 0.628),
                3.0: (0.632, 0.832, 0.631)}
PAPER_TABLE6 = {5: (0.965, 0.965, 0.965), 10: (0.966, 0.966, 0.966),
                15: (0.967, 0.945, 0.967), 20: (0.763, 0.889, 0.765),
                25: (0.691, 0.841, 0.668), 30: (0.632, 0.832, 0.631)}


def size_range_axis(ranges=SIZE_RANGES) -> list[SweepPoint]:
    """A size-range sweep axis: each point pairs min and max bytes."""
    return [SweepPoint(
        label=f"{low_kb}~{high_kb}",
        overrides={"dummy_params.min_size_bytes": low_kb * KB,
                   "dummy_params.max_size_bytes": high_kb * KB})
        for low_kb, high_kb in ranges]


def _pacm_spec(name: str, quick: bool, seed: int, axes: dict,
               ) -> ScenarioSpec:
    """Paper defaults: 30 apps, 1-100 KB objects, 3 executions/min."""
    duration = effective_duration(quick, quick_s=4 * MINUTE)
    return ScenarioSpec(
        name=name, systems=("APE-CACHE", "APE-CACHE-LRU"), seeds=(seed,),
        workload=WorkloadConfig(
            n_apps=30, avg_frequency_per_min=3.0, duration_s=duration,
            seed=seed, dummy_params=DummyAppParams(),
            testbed=TestbedConfig(seed=seed)),
        axes=axes)


def _fold_rows(result: SweepResult, axis: str, axis_column: str,
               table: ExperimentTable, paper: dict,
               paper_key=lambda label: label) -> None:
    """One table row per axis point: PACM cell + LRU cell metrics."""
    by_point: dict[object, dict[str, dict[str, object]]] = {}
    labels: list[object] = []
    for cell_result in result.cells:
        label = cell_result.cell.coords[axis]
        if label not in by_point:
            by_point[label] = {}
            labels.append(label)
        by_point[label][cell_result.system_name] = cell_result.metrics
    for label in labels:
        pacm = by_point[label]["APE-CACHE"]
        lru = by_point[label]["APE-CACHE-LRU"]
        expected = paper[paper_key(label)]
        table.add_row(**{
            axis_column: label,
            "pacm_avg": pacm["hit_ratio"],
            "pacm_high_priority": pacm["hit_ratio_high_priority"],
            "lru": lru["hit_ratio"],
            "paper_pacm_avg": expected[0],
            "paper_pacm_high": expected[1],
            "paper_lru": expected[2],
        })


def run_size_sweep(quick: bool = True, seed: int = 0,
                   jobs: int = 1) -> ExperimentTable:
    """Table IV: hit ratio vs data object size."""
    spec = _pacm_spec("table4-size", quick, seed,
                      axes={"size_range_kb": size_range_axis()})
    result = SweepEngine(jobs=jobs).run(spec)
    table = ExperimentTable(
        title="Table IV: Cache hit ratio vs data object size",
        columns=["size_range_kb", "pacm_avg", "pacm_high_priority",
                 "lru", "paper_pacm_avg", "paper_pacm_high",
                 "paper_lru"])
    _fold_rows(result, "size_range_kb", "size_range_kb", table,
               PAPER_TABLE4,
               paper_key=lambda label: int(str(label).split("~")[1]))
    table.notes.append(
        "paper trend: hit ratios fall as objects grow; PACM keeps a "
        "consistently higher high-priority hit ratio than LRU")
    return table


def run_frequency_sweep(quick: bool = True, seed: int = 0,
                        jobs: int = 1) -> ExperimentTable:
    """Table V: hit ratio vs average app usage frequency."""
    spec = _pacm_spec("table5-frequency", quick, seed,
                      axes={"avg_frequency_per_min": FREQUENCIES})
    result = SweepEngine(jobs=jobs).run(spec)
    table = ExperimentTable(
        title="Table V: Cache hit ratio vs avg app usage frequency",
        columns=["frequency_per_min", "pacm_avg", "pacm_high_priority",
                 "lru", "paper_pacm_avg", "paper_pacm_high",
                 "paper_lru"])
    _fold_rows(result, "avg_frequency_per_min", "frequency_per_min",
               table, PAPER_TABLE5)
    table.notes.append(
        "paper trend: lower frequency -> more TTL expiries before reuse "
        "-> slightly lower hit ratio; PACM-High stays above LRU")
    return table


def run_quantity_sweep(quick: bool = True, seed: int = 0,
                       jobs: int = 1) -> ExperimentTable:
    """Table VI: hit ratio vs number of apps."""
    spec = _pacm_spec("table6-quantity", quick, seed,
                      axes={"n_apps": APP_QUANTITIES})
    result = SweepEngine(jobs=jobs).run(spec)
    table = ExperimentTable(
        title="Table VI: Cache hit ratio vs app quantity",
        columns=["n_apps", "pacm_avg", "pacm_high_priority", "lru",
                 "paper_pacm_avg", "paper_pacm_high", "paper_lru"])
    _fold_rows(result, "n_apps", "n_apps", table, PAPER_TABLE6)
    table.notes.append(
        "paper trend: few apps fit entirely (~0.96); past ~15 apps the "
        "5 MB cache saturates and ratios fall, PACM protecting "
        "high-priority objects")
    return table


def run(quick: bool = True, seed: int = 0,
        jobs: int = 1) -> list[ExperimentTable]:
    """All three PACM tables."""
    return [run_size_sweep(quick, seed, jobs),
            run_frequency_sweep(quick, seed, jobs),
            run_quantity_sweep(quick, seed, jobs)]


if __name__ == "__main__":  # pragma: no cover
    for result in run():
        print(result)
        print()
