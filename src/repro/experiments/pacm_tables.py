"""Experiments Tables IV, V, VI: PACM vs LRU cache hit ratios.

Each table varies one workload dimension — object size range (IV), app
usage frequency (V), app quantity (VI) — and reports the average hit
ratio, the high-priority hit ratio under PACM, and LRU's hit ratio (the
management used by Wi-Cache and APE-CACHE-LRU).
"""

from __future__ import annotations

import dataclasses

from repro.apps.generator import DummyAppParams
from repro.apps.workload import Workload, WorkloadConfig
from repro.baselines.ape import ApeCacheLruSystem, ApeCacheSystem
from repro.experiments.common import ExperimentTable, effective_duration
from repro.sim.kernel import MINUTE
from repro.testbed import TestbedConfig

__all__ = ["run", "run_size_sweep", "run_frequency_sweep",
           "run_quantity_sweep", "PAPER_TABLE4", "PAPER_TABLE5",
           "PAPER_TABLE6"]

KB = 1024

SIZE_RANGES = ((1, 100), (1, 200), (1, 300), (1, 400), (1, 500))
FREQUENCIES = (1.0, 1.5, 2.0, 2.5, 3.0)
APP_QUANTITIES = (5, 10, 15, 20, 25, 30)

#: Paper values: {x: (PACM-Avg, PACM-High, LRU)}.
PAPER_TABLE4 = {100: (0.632, 0.832, 0.631), 200: (0.514, 0.754, 0.528),
                300: (0.426, 0.616, 0.430), 400: (0.320, 0.457, 0.316),
                500: (0.226, 0.304, 0.220)}
PAPER_TABLE5 = {1.0: (0.507, 0.743, 0.512), 1.5: (0.563, 0.766, 0.566),
                2.0: (0.626, 0.774, 0.625), 2.5: (0.627, 0.810, 0.628),
                3.0: (0.632, 0.832, 0.631)}
PAPER_TABLE6 = {5: (0.965, 0.965, 0.965), 10: (0.966, 0.966, 0.966),
                15: (0.967, 0.945, 0.967), 20: (0.763, 0.889, 0.765),
                25: (0.691, 0.841, 0.668), 30: (0.632, 0.832, 0.631)}


def _base_config(duration_s: float, seed: int) -> WorkloadConfig:
    """Paper defaults: 30 apps, 1-100 KB objects, 3 executions/min."""
    return WorkloadConfig(
        n_apps=30, avg_frequency_per_min=3.0, duration_s=duration_s,
        seed=seed, dummy_params=DummyAppParams(),
        testbed=TestbedConfig(seed=seed))


def _measure(config: WorkloadConfig) -> tuple[float, float, float]:
    """(PACM avg, PACM high-priority, LRU avg) hit ratios."""
    pacm_result = Workload(config).run(ApeCacheSystem())
    lru_result = Workload(config).run(ApeCacheLruSystem())
    return (pacm_result.hit_ratio(),
            pacm_result.hit_ratio(only_high_priority=True),
            lru_result.hit_ratio())


def run_size_sweep(quick: bool = True, seed: int = 0) -> ExperimentTable:
    """Table IV: hit ratio vs data object size."""
    duration = effective_duration(quick, quick_s=4 * MINUTE)
    table = ExperimentTable(
        title="Table IV: Cache hit ratio vs data object size",
        columns=["size_range_kb", "pacm_avg", "pacm_high_priority",
                 "lru", "paper_pacm_avg", "paper_pacm_high",
                 "paper_lru"])
    for low_kb, high_kb in SIZE_RANGES:
        config = _base_config(duration, seed)
        config = dataclasses.replace(config, dummy_params=DummyAppParams(
            min_size_bytes=low_kb * KB, max_size_bytes=high_kb * KB))
        pacm_avg, pacm_high, lru = _measure(config)
        paper = PAPER_TABLE4[high_kb]
        table.add_row(size_range_kb=f"{low_kb}~{high_kb}",
                      pacm_avg=pacm_avg, pacm_high_priority=pacm_high,
                      lru=lru, paper_pacm_avg=paper[0],
                      paper_pacm_high=paper[1], paper_lru=paper[2])
    table.notes.append(
        "paper trend: hit ratios fall as objects grow; PACM keeps a "
        "consistently higher high-priority hit ratio than LRU")
    return table


def run_frequency_sweep(quick: bool = True,
                        seed: int = 0) -> ExperimentTable:
    """Table V: hit ratio vs average app usage frequency."""
    duration = effective_duration(quick, quick_s=4 * MINUTE)
    table = ExperimentTable(
        title="Table V: Cache hit ratio vs avg app usage frequency",
        columns=["frequency_per_min", "pacm_avg", "pacm_high_priority",
                 "lru", "paper_pacm_avg", "paper_pacm_high",
                 "paper_lru"])
    for frequency in FREQUENCIES:
        config = dataclasses.replace(_base_config(duration, seed),
                                     avg_frequency_per_min=frequency)
        pacm_avg, pacm_high, lru = _measure(config)
        paper = PAPER_TABLE5[frequency]
        table.add_row(frequency_per_min=frequency, pacm_avg=pacm_avg,
                      pacm_high_priority=pacm_high, lru=lru,
                      paper_pacm_avg=paper[0], paper_pacm_high=paper[1],
                      paper_lru=paper[2])
    table.notes.append(
        "paper trend: lower frequency -> more TTL expiries before reuse "
        "-> slightly lower hit ratio; PACM-High stays above LRU")
    return table


def run_quantity_sweep(quick: bool = True,
                       seed: int = 0) -> ExperimentTable:
    """Table VI: hit ratio vs number of apps."""
    duration = effective_duration(quick, quick_s=4 * MINUTE)
    table = ExperimentTable(
        title="Table VI: Cache hit ratio vs app quantity",
        columns=["n_apps", "pacm_avg", "pacm_high_priority", "lru",
                 "paper_pacm_avg", "paper_pacm_high", "paper_lru"])
    for quantity in APP_QUANTITIES:
        config = dataclasses.replace(_base_config(duration, seed),
                                     n_apps=quantity)
        pacm_avg, pacm_high, lru = _measure(config)
        paper = PAPER_TABLE6[quantity]
        table.add_row(n_apps=quantity, pacm_avg=pacm_avg,
                      pacm_high_priority=pacm_high, lru=lru,
                      paper_pacm_avg=paper[0], paper_pacm_high=paper[1],
                      paper_lru=paper[2])
    table.notes.append(
        "paper trend: few apps fit entirely (~0.96); past ~15 apps the "
        "5 MB cache saturates and ratios fall, PACM protecting "
        "high-priority objects")
    return table


def run(quick: bool = True, seed: int = 0) -> list[ExperimentTable]:
    """All three PACM tables."""
    return [run_size_sweep(quick, seed), run_frequency_sweep(quick, seed),
            run_quantity_sweep(quick, seed)]


if __name__ == "__main__":  # pragma: no cover
    for result in run():
        print(result)
        print()
