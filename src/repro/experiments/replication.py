"""Extension experiment: multi-seed replication of the headline claim.

Single runs are point estimates; this experiment replicates the default
workload across seeds for every system and reports mean app-level
latency with 95% confidence intervals, plus paired per-seed differences
against APE-CACHE — the statistical backing for "who wins and by how
much".
"""

from __future__ import annotations

from repro.analysis import paired_comparison, replicate
from repro.apps.generator import DummyAppParams
from repro.apps.workload import WorkloadConfig
from repro.baselines import (
    ApeCacheLruSystem,
    ApeCacheSystem,
    EdgeCacheSystem,
    WiCacheSystem,
)
from repro.experiments.common import ExperimentTable, effective_duration
from repro.sim.kernel import MINUTE
from repro.testbed import TestbedConfig

__all__ = ["run"]

METRIC = "mean_app_latency_ms"


def run(quick: bool = True, seed: int = 0,
        jobs: int = 1) -> ExperimentTable:
    duration = effective_duration(quick, quick_s=3 * MINUTE)
    seeds = tuple(range(seed, seed + (3 if quick else 5)))
    config = WorkloadConfig(n_apps=28, duration_s=duration,
                            dummy_params=DummyAppParams(),
                            testbed=TestbedConfig())

    results = {}
    for factory in (ApeCacheSystem, ApeCacheLruSystem, WiCacheSystem,
                    EdgeCacheSystem):
        replicated = replicate(factory, config, seeds=seeds, jobs=jobs)
        results[replicated.system_name] = replicated

    table = ExperimentTable(
        title="Replication: app-level latency across seeds (95% CI)",
        columns=["system", "mean_ms", "ci_low_ms", "ci_high_ms",
                 "vs_ape_delta_ms", "significant"])
    ape_samples = results["APE-CACHE"].samples[METRIC]
    for name, replicated in results.items():
        summary = replicated.summary(METRIC)
        if name == "APE-CACHE":
            delta, significant = 0.0, "-"
        else:
            comparison = paired_comparison(
                replicated.samples[METRIC], ape_samples)
            delta = comparison.mean_difference
            significant = "yes" if comparison.significant else "no"
        table.add_row(system=name, mean_ms=summary.mean,
                      ci_low_ms=summary.ci_low,
                      ci_high_ms=summary.ci_high,
                      vs_ape_delta_ms=delta, significant=significant)
    table.notes.append(
        f"seeds {list(seeds)}; positive delta = slower than APE-CACHE; "
        "paired per-seed comparison")
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
