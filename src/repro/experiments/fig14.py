"""Experiment Fig. 14: APE-CACHE's CPU/memory overhead on the AP.

Runs 30 APE-CACHE-enabled apps and their regular (direct-to-edge)
versions, sampling the AP's service CPU and APE-CACHE's memory footprint.
The paper reports at most ~6% extra CPU and ~13 MB of memory with a 5 MB
cache allocation.  The study executes as one system-less scenario cell.
"""

from __future__ import annotations

import typing as _t

from repro.apps.workload import WorkloadConfig
from repro.errors import ConfigError
from repro.experiments.common import ExperimentTable, effective_duration
from repro.measurement.overhead import ApOverheadStudy
from repro.runner import ScenarioSpec, SweepEngine
from repro.runner.spec import Cell
from repro.sim.kernel import MINUTE
from repro.testbed import TestbedConfig

__all__ = ["run", "overhead_cell"]


def overhead_cell(cell: Cell) -> dict[str, object]:
    """Cell runner: the paired APE/regular overhead study."""
    if cell.workload is None:
        raise ConfigError("fig14 cells need a workload config")
    report = ApOverheadStudy(cell.workload).run()
    return dict(report.summary())


def run(quick: bool = True, seed: int = 0, jobs: int = 1,
        ) -> ExperimentTable:
    duration = effective_duration(quick, quick_s=5 * MINUTE)
    spec = ScenarioSpec(
        name="fig14-ap-overhead", systems=(None,), seeds=(seed,),
        workload=WorkloadConfig(n_apps=30, duration_s=duration,
                                seed=seed,
                                testbed=TestbedConfig(seed=seed)),
        runner="repro.experiments.fig14:overhead_cell")
    summary = _t.cast(dict, SweepEngine(jobs=jobs).run(spec)
                      .cells[0].metrics)

    table = ExperimentTable(
        title="Fig. 14: CPU/Memory overhead of APE-CACHE on the AP",
        columns=["metric", "value", "paper"])
    table.add_row(metric="APE-CACHE mean CPU (%)",
                  value=summary["ape_mean_cpu_percent"], paper="<= ~6 extra")
    table.add_row(metric="regular apps mean CPU (%)",
                  value=summary["regular_mean_cpu_percent"], paper="-")
    table.add_row(metric="extra CPU (%)",
                  value=summary["extra_cpu_percent"], paper="up to 6")
    table.add_row(metric="peak extra CPU (%)",
                  value=summary["peak_extra_cpu_percent"], paper="up to 6")
    table.add_row(metric="extra memory (MB)",
                  value=summary["extra_memory_mb"], paper="~13")
    table.add_row(metric="peak extra memory (MB)",
                  value=summary["peak_extra_memory_mb"], paper="~13")
    table.notes.append(
        "memory = 7 MB daemon footprint + 5 MB object cache + tables; "
        "CPU covers DNS-Cache handling, HTTP serving, and PACM runs")
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
