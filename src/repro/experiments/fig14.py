"""Experiment Fig. 14: APE-CACHE's CPU/memory overhead on the AP.

Runs 30 APE-CACHE-enabled apps and their regular (direct-to-edge)
versions, sampling the AP's service CPU and APE-CACHE's memory footprint.
The paper reports at most ~6% extra CPU and ~13 MB of memory with a 5 MB
cache allocation.
"""

from __future__ import annotations

from repro.apps.workload import WorkloadConfig
from repro.experiments.common import ExperimentTable, effective_duration
from repro.measurement.overhead import ApOverheadStudy
from repro.sim.kernel import MINUTE
from repro.testbed import TestbedConfig

__all__ = ["run"]


def run(quick: bool = True, seed: int = 0) -> ExperimentTable:
    duration = effective_duration(quick, quick_s=5 * MINUTE)
    config = WorkloadConfig(n_apps=30, duration_s=duration, seed=seed,
                            testbed=TestbedConfig(seed=seed))
    report = ApOverheadStudy(config).run()
    summary = report.summary()

    table = ExperimentTable(
        title="Fig. 14: CPU/Memory overhead of APE-CACHE on the AP",
        columns=["metric", "value", "paper"])
    table.add_row(metric="APE-CACHE mean CPU (%)",
                  value=summary["ape_mean_cpu_percent"], paper="<= ~6 extra")
    table.add_row(metric="regular apps mean CPU (%)",
                  value=summary["regular_mean_cpu_percent"], paper="-")
    table.add_row(metric="extra CPU (%)",
                  value=summary["extra_cpu_percent"], paper="up to 6")
    table.add_row(metric="peak extra CPU (%)",
                  value=summary["peak_extra_cpu_percent"], paper="up to 6")
    table.add_row(metric="extra memory (MB)",
                  value=summary["extra_memory_mb"], paper="~13")
    table.add_row(metric="peak extra memory (MB)",
                  value=summary["peak_extra_memory_mb"], paper="~13")
    table.notes.append(
        "memory = 7 MB daemon footprint + 5 MB object cache + tables; "
        "CPU covers DNS-Cache handling, HTTP serving, and PACM runs")
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
