"""Ablations of APE-CACHE's design choices (DESIGN.md Section 5).

Four studies beyond the paper's own evaluation:

* **dummy-IP short circuit** on/off — its contribution to lookup latency;
* **fairness threshold theta** sweep — utility/fairness trade-off;
* **EWMA alpha** sweep — sensitivity of the frequency estimator;
* **block-list threshold** sweep — large objects vs cache churn.
"""

from __future__ import annotations

from repro.apps.generator import DummyAppParams
from repro.apps.workload import Workload, WorkloadConfig
from repro.baselines.ape import ApeCacheSystem
from repro.core.annotations import CacheableSpec
from repro.core.ap_runtime import ApRuntime
from repro.core.client_runtime import ClientRuntime
from repro.core.config import ApeCacheConfig
from repro.experiments.common import ExperimentTable, effective_duration
from repro.sim.kernel import HOUR, MINUTE
from repro.testbed import Testbed, TestbedConfig

__all__ = ["run", "run_short_circuit", "run_fairness_sweep",
           "run_alpha_sweep", "run_blocklist_sweep"]

KB = 1024
MB = 1024 * 1024


def _workload_config(duration_s: float, seed: int,
                     **overrides) -> WorkloadConfig:
    defaults = dict(n_apps=30, duration_s=duration_s, seed=seed,
                    dummy_params=DummyAppParams(),
                    testbed=TestbedConfig(seed=seed))
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


# ----------------------------------------------------------------------
# Dummy-IP short circuit
# ----------------------------------------------------------------------
def run_short_circuit(quick: bool = True, seed: int = 0) -> ExperimentTable:
    """All-hit lookup latency with and without the short circuit."""
    runs = 40 if quick else 200
    table = ExperimentTable(
        title="Ablation: dummy-IP short circuit",
        columns=["short_circuit", "all_hit_lookup_ms"])
    for enabled in (True, False):
        bed = Testbed(TestbedConfig(seed=seed))
        config = ApeCacheConfig(enable_dummy_ip_short_circuit=enabled)
        ApRuntime(bed.ap, bed.transport, bed.ldns.address,
                  config=config).install()
        node = bed.add_client("phone")
        runtime = ClientRuntime(node, bed.transport, bed.ap.address,
                                app_id="ablation")
        url = "http://ablationapp.example/object"
        bed.host_object(url, 10 * KB)
        runtime.register_spec(CacheableSpec(url, 1, 1 * HOUR))
        bed.sim.run(until=bed.sim.process(runtime.fetch(url)))  # cache it

        total = 0.0
        for index in range(runs):
            runtime.flush()

            def probe():
                started = bed.sim.now
                yield from runtime.lookup("ablationapp.example")
                return bed.sim.now - started

            total += bed.sim.run(until=bed.sim.process(probe()))
            # Let the AP's upstream DNS cache expire between probes so
            # the no-short-circuit variant pays real resolutions.
            bed.sim.run(until=bed.sim.now + 30.0)
        table.add_row(short_circuit="on" if enabled else "off",
                      all_hit_lookup_ms=(total / runs) * 1e3)
    on_ms, off_ms = (float(row["all_hit_lookup_ms"])
                     for row in table.rows)
    table.notes.append(
        f"short-circuiting upstream resolution saves "
        f"{off_ms - on_ms:.2f} ms per all-hit lookup")
    return table


# ----------------------------------------------------------------------
# Fairness threshold theta
# ----------------------------------------------------------------------
def run_fairness_sweep(quick: bool = True, seed: int = 0) -> ExperimentTable:
    """Hit ratios and achieved fairness across theta."""
    duration = effective_duration(quick, quick_s=3 * MINUTE)
    table = ExperimentTable(
        title="Ablation: PACM fairness threshold theta",
        columns=["theta", "hit_ratio", "hit_ratio_high",
                 "achieved_fairness"])
    for theta in (0.1, 0.2, 0.4, 0.7, 1.0):
        system = ApeCacheSystem(ApeCacheConfig(fairness_threshold=theta))
        result = Workload(_workload_config(duration, seed)).run(system)
        runtime = system.ap_runtime
        assert runtime is not None
        fairness = runtime.policy.fairness(runtime.store) \
            if hasattr(runtime.policy, "fairness") else float("nan")
        table.add_row(theta=theta, hit_ratio=result.hit_ratio(),
                      hit_ratio_high=result.hit_ratio(
                          only_high_priority=True),
                      achieved_fairness=fairness)
    table.notes.append(
        "paper default theta=0.4; tighter theta trades utility (hit "
        "ratio) for evenly spread cache space")
    return table


# ----------------------------------------------------------------------
# EWMA alpha
# ----------------------------------------------------------------------
def run_alpha_sweep(quick: bool = True, seed: int = 0) -> ExperimentTable:
    """Frequency-estimator smoothing vs hit ratios."""
    duration = effective_duration(quick, quick_s=3 * MINUTE)
    table = ExperimentTable(
        title="Ablation: request-frequency EWMA alpha",
        columns=["alpha", "hit_ratio", "hit_ratio_high"])
    for alpha in (0.1, 0.3, 0.5, 0.7, 0.9):
        system = ApeCacheSystem(ApeCacheConfig(frequency_alpha=alpha))
        result = Workload(_workload_config(duration, seed)).run(system)
        table.add_row(alpha=alpha, hit_ratio=result.hit_ratio(),
                      hit_ratio_high=result.hit_ratio(
                          only_high_priority=True))
    table.notes.append("paper default alpha=0.7")
    return table


# ----------------------------------------------------------------------
# Block-list threshold
# ----------------------------------------------------------------------
def run_blocklist_sweep(quick: bool = True,
                        seed: int = 0) -> ExperimentTable:
    """Large-object workload across block-list thresholds."""
    duration = effective_duration(quick, quick_s=3 * MINUTE)
    table = ExperimentTable(
        title="Ablation: block-list size threshold",
        columns=["threshold_kb", "hit_ratio", "blocked_objects",
                 "mean_app_latency_ms"])
    large_params = DummyAppParams(min_size_bytes=50 * KB,
                                  max_size_bytes=700 * KB)
    for threshold_kb in (100, 250, 500, 1000):
        system = ApeCacheSystem(ApeCacheConfig(
            blocklist_threshold_bytes=threshold_kb * KB))
        config = _workload_config(duration, seed,
                                  dummy_params=large_params)
        result = Workload(config).run(system)
        table.add_row(threshold_kb=threshold_kb,
                      hit_ratio=result.hit_ratio(),
                      blocked_objects=int(
                          result.ap_stats["blocked_objects"]),
                      mean_app_latency_ms=result.mean_app_latency_s()
                      * 1e3)
    table.notes.append(
        "paper default 500 KB; lower thresholds block more objects "
        "(fewer AP hits), higher ones let big objects churn the cache")
    return table


# ----------------------------------------------------------------------
# Dependency-aware prefetching (the APPx-synergy extension)
# ----------------------------------------------------------------------
def run_prefetch(quick: bool = True, seed: int = 0) -> ExperimentTable:
    """Workload latency with and without AP prefetching.

    Short TTLs make delegations recur, which is where warming the rest
    of an app's DAG off the critical path pays.
    """
    duration = effective_duration(quick, quick_s=3 * MINUTE)
    short_ttl = DummyAppParams(min_ttl_s=2 * MINUTE, max_ttl_s=5 * MINUTE)
    table = ExperimentTable(
        title="Ablation: dependency-aware prefetching on the AP",
        columns=["prefetch", "mean_app_latency_ms", "hit_ratio",
                 "prefetches", "edge_fetches"])
    for enabled in (False, True):
        system = ApeCacheSystem(ApeCacheConfig(enable_prefetch=enabled))
        config = _workload_config(duration, seed,
                                  dummy_params=short_ttl)
        result = Workload(config).run(system)
        table.add_row(prefetch="on" if enabled else "off",
                      mean_app_latency_ms=result.mean_app_latency_s()
                      * 1e3,
                      hit_ratio=result.hit_ratio(),
                      prefetches=int(result.ap_stats.get(
                          "prefetches", 0)),
                      edge_fetches=int(result.ap_stats["edge_fetches"]))
    table.notes.append(
        "the paper's related-work synergy: shipping request-dependency "
        "info to the AP prefetches dependents, cutting cold/expired "
        "misses")
    return table


# ----------------------------------------------------------------------
# Device-local (L1) cache in front of the AP
# ----------------------------------------------------------------------
def run_device_cache(quick: bool = True, seed: int = 0) -> ExperimentTable:
    """APE-CACHE with a PALOMA-style on-device cache layered in front.

    The paper's related work positions client-side caching systems as
    complementary; this sweep quantifies the combination.
    """
    duration = effective_duration(quick, quick_s=3 * MINUTE)
    table = ExperimentTable(
        title="Ablation: on-device (L1) cache in front of the AP",
        columns=["device_cache_kb", "mean_app_latency_ms",
                 "ap_hit_ratio_incl_device"])
    for device_kb in (0, 64, 256, 1024):
        system = ApeCacheSystem(device_cache_bytes=device_kb * KB)
        result = Workload(_workload_config(duration, seed)).run(system)
        table.add_row(device_cache_kb=device_kb,
                      mean_app_latency_ms=result.mean_app_latency_s()
                      * 1e3,
                      ap_hit_ratio_incl_device=result.hit_ratio())
    table.notes.append(
        "0 KB is the paper's configuration; device hits serve in ~0 ms "
        "and relieve the AP, stacking with (not replacing) AP caching")
    return table


def run(quick: bool = True, seed: int = 0) -> list[ExperimentTable]:
    return [run_short_circuit(quick, seed),
            run_fairness_sweep(quick, seed),
            run_alpha_sweep(quick, seed),
            run_blocklist_sweep(quick, seed),
            run_prefetch(quick, seed),
            run_device_cache(quick, seed)]


if __name__ == "__main__":  # pragma: no cover
    for table in run():
        print(table)
        print()
