"""Ablations of APE-CACHE's design choices (DESIGN.md Section 5).

Studies beyond the paper's own evaluation:

* **dummy-IP short circuit** on/off — its contribution to lookup latency;
* **fairness threshold theta** sweep — utility/fairness trade-off;
* **EWMA alpha** sweep — sensitivity of the frequency estimator;
* **block-list threshold** sweep — large objects vs cache churn;
* **dependency-aware prefetching** on/off;
* **on-device (L1) cache** size sweep.

Every sweep is one :class:`~repro.runner.spec.ScenarioSpec`.  The swept
knobs configure the *system*, not the workload, so the axes route their
values through ``params.*`` overrides into each cell's runner.
"""

from __future__ import annotations

import typing as _t

from repro.apps.generator import DummyAppParams
from repro.apps.workload import WorkloadConfig
from repro.baselines.ape import ApeCacheSystem
from repro.core.annotations import CacheableSpec
from repro.core.ap_runtime import ApRuntime
from repro.core.client_runtime import ClientRuntime
from repro.core.config import ApeCacheConfig
from repro.errors import ConfigError
from repro.experiments.common import ExperimentTable, effective_duration
from repro.runner import ScenarioSpec, SweepEngine, SweepPoint
from repro.runner.cells import execute_workload
from repro.runner.spec import Cell
from repro.sim.kernel import HOUR, MINUTE
from repro.testbed import Testbed, TestbedConfig

__all__ = ["run", "run_short_circuit", "run_fairness_sweep",
           "run_alpha_sweep", "run_blocklist_sweep", "run_prefetch",
           "run_device_cache"]

KB = 1024
MB = 1024 * 1024


def _workload_config(duration_s: float, seed: int,
                     **overrides) -> WorkloadConfig:
    defaults = dict(n_apps=30, duration_s=duration_s, seed=seed,
                    dummy_params=DummyAppParams(),
                    testbed=TestbedConfig(seed=seed))
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


def _param_axis(name: str, values: _t.Sequence[object],
                labels: _t.Sequence[object] | None = None,
                ) -> list[SweepPoint]:
    """An axis whose points set a runner parameter, not a workload field."""
    labels = values if labels is None else labels
    return [SweepPoint(label=label,
                       overrides={f"params.{name}": value})
            for label, value in zip(labels, values)]


def _require_workload(cell: Cell) -> WorkloadConfig:
    if cell.workload is None:
        raise ConfigError(f"{cell.scenario}: cells need a workload config")
    return cell.workload


# ----------------------------------------------------------------------
# Dummy-IP short circuit
# ----------------------------------------------------------------------
def short_circuit_cell(cell: Cell) -> dict[str, object]:
    """Cell runner: timed all-hit lookups, short circuit on or off."""
    enabled = bool(cell.params["short_circuit"])
    runs = int(_t.cast(int, cell.params["runs"]))
    bed = Testbed(TestbedConfig(seed=cell.seed))
    config = ApeCacheConfig(enable_dummy_ip_short_circuit=enabled)
    ApRuntime(bed.ap, bed.transport, bed.ldns.address,
              config=config).install()
    node = bed.add_client("phone")
    runtime = ClientRuntime(node, bed.transport, bed.ap.address,
                            app_id="ablation")
    url = "http://ablationapp.example/object"
    bed.host_object(url, 10 * KB)
    runtime.register_spec(CacheableSpec(url, 1, 1 * HOUR))
    bed.sim.run(until=bed.sim.process(runtime.fetch(url)))  # cache it

    total = 0.0
    for _ in range(runs):
        runtime.flush()

        def probe():
            started = bed.sim.now
            yield from runtime.lookup("ablationapp.example")
            return bed.sim.now - started

        total += bed.sim.run(until=bed.sim.process(probe()))
        # Let the AP's upstream DNS cache expire between probes so
        # the no-short-circuit variant pays real resolutions.
        bed.sim.run(until=bed.sim.now + 30.0)
    return {"all_hit_lookup_ms": (total / runs) * 1e3}


def run_short_circuit(quick: bool = True, seed: int = 0,
                      jobs: int = 1) -> ExperimentTable:
    """All-hit lookup latency with and without the short circuit."""
    spec = ScenarioSpec(
        name="ablation-short-circuit", systems=(None,), seeds=(seed,),
        workload=None,
        axes={"short_circuit": _param_axis(
            "short_circuit", (True, False), labels=("on", "off"))},
        params={"runs": 40 if quick else 200},
        runner="repro.experiments.ablations:short_circuit_cell")
    result = SweepEngine(jobs=jobs).run(spec)

    table = ExperimentTable(
        title="Ablation: dummy-IP short circuit",
        columns=["short_circuit", "all_hit_lookup_ms"])
    for cell_result in result.cells:
        table.add_row(
            short_circuit=cell_result.cell.coords["short_circuit"],
            all_hit_lookup_ms=cell_result.metrics["all_hit_lookup_ms"])
    on_ms, off_ms = (float(_t.cast(float, row["all_hit_lookup_ms"]))
                     for row in table.rows)
    table.notes.append(
        f"short-circuiting upstream resolution saves "
        f"{off_ms - on_ms:.2f} ms per all-hit lookup")
    return table


# ----------------------------------------------------------------------
# Fairness threshold theta
# ----------------------------------------------------------------------
def fairness_cell(cell: Cell) -> dict[str, object]:
    """Cell runner: one workload run at a given fairness threshold."""
    theta = float(_t.cast(float, cell.params["theta"]))
    system = ApeCacheSystem(ApeCacheConfig(fairness_threshold=theta))
    result, _workload = execute_workload(_require_workload(cell), system)
    runtime = system.ap_runtime
    assert runtime is not None
    fairness = runtime.policy.fairness(runtime.store) \
        if hasattr(runtime.policy, "fairness") else float("nan")
    return {"hit_ratio": result.hit_ratio(),
            "hit_ratio_high": result.hit_ratio(only_high_priority=True),
            "achieved_fairness": fairness}


def run_fairness_sweep(quick: bool = True, seed: int = 0,
                       jobs: int = 1) -> ExperimentTable:
    """Hit ratios and achieved fairness across theta."""
    duration = effective_duration(quick, quick_s=3 * MINUTE)
    spec = ScenarioSpec(
        name="ablation-fairness", systems=(None,), seeds=(seed,),
        workload=_workload_config(duration, seed),
        axes={"theta": _param_axis("theta", (0.1, 0.2, 0.4, 0.7, 1.0))},
        runner="repro.experiments.ablations:fairness_cell")
    result = SweepEngine(jobs=jobs).run(spec)

    table = ExperimentTable(
        title="Ablation: PACM fairness threshold theta",
        columns=["theta", "hit_ratio", "hit_ratio_high",
                 "achieved_fairness"])
    for cell_result in result.cells:
        metrics = cell_result.metrics
        table.add_row(theta=cell_result.cell.coords["theta"],
                      hit_ratio=metrics["hit_ratio"],
                      hit_ratio_high=metrics["hit_ratio_high"],
                      achieved_fairness=metrics["achieved_fairness"])
    table.notes.append(
        "paper default theta=0.4; tighter theta trades utility (hit "
        "ratio) for evenly spread cache space")
    return table


# ----------------------------------------------------------------------
# EWMA alpha
# ----------------------------------------------------------------------
def alpha_cell(cell: Cell) -> dict[str, object]:
    """Cell runner: one workload run at a given EWMA alpha."""
    alpha = float(_t.cast(float, cell.params["alpha"]))
    system = ApeCacheSystem(ApeCacheConfig(frequency_alpha=alpha))
    result, _workload = execute_workload(_require_workload(cell), system)
    return {"hit_ratio": result.hit_ratio(),
            "hit_ratio_high": result.hit_ratio(only_high_priority=True)}


def run_alpha_sweep(quick: bool = True, seed: int = 0,
                    jobs: int = 1) -> ExperimentTable:
    """Frequency-estimator smoothing vs hit ratios."""
    duration = effective_duration(quick, quick_s=3 * MINUTE)
    spec = ScenarioSpec(
        name="ablation-alpha", systems=(None,), seeds=(seed,),
        workload=_workload_config(duration, seed),
        axes={"alpha": _param_axis("alpha", (0.1, 0.3, 0.5, 0.7, 0.9))},
        runner="repro.experiments.ablations:alpha_cell")
    result = SweepEngine(jobs=jobs).run(spec)

    table = ExperimentTable(
        title="Ablation: request-frequency EWMA alpha",
        columns=["alpha", "hit_ratio", "hit_ratio_high"])
    for cell_result in result.cells:
        table.add_row(alpha=cell_result.cell.coords["alpha"],
                      hit_ratio=cell_result.metrics["hit_ratio"],
                      hit_ratio_high=cell_result.metrics[
                          "hit_ratio_high"])
    table.notes.append("paper default alpha=0.7")
    return table


# ----------------------------------------------------------------------
# Block-list threshold
# ----------------------------------------------------------------------
def blocklist_cell(cell: Cell) -> dict[str, object]:
    """Cell runner: large-object workload at one block-list threshold."""
    threshold_kb = int(_t.cast(int, cell.params["threshold_kb"]))
    system = ApeCacheSystem(ApeCacheConfig(
        blocklist_threshold_bytes=threshold_kb * KB))
    result, _workload = execute_workload(_require_workload(cell), system)
    return {"hit_ratio": result.hit_ratio(),
            "blocked_objects": int(result.ap_stats["blocked_objects"]),
            "mean_app_latency_ms": result.mean_app_latency_s() * 1e3}


def run_blocklist_sweep(quick: bool = True, seed: int = 0,
                        jobs: int = 1) -> ExperimentTable:
    """Large-object workload across block-list thresholds."""
    duration = effective_duration(quick, quick_s=3 * MINUTE)
    large_params = DummyAppParams(min_size_bytes=50 * KB,
                                  max_size_bytes=700 * KB)
    spec = ScenarioSpec(
        name="ablation-blocklist", systems=(None,), seeds=(seed,),
        workload=_workload_config(duration, seed,
                                  dummy_params=large_params),
        axes={"threshold_kb": _param_axis("threshold_kb",
                                          (100, 250, 500, 1000))},
        runner="repro.experiments.ablations:blocklist_cell")
    result = SweepEngine(jobs=jobs).run(spec)

    table = ExperimentTable(
        title="Ablation: block-list size threshold",
        columns=["threshold_kb", "hit_ratio", "blocked_objects",
                 "mean_app_latency_ms"])
    for cell_result in result.cells:
        metrics = cell_result.metrics
        table.add_row(threshold_kb=cell_result.cell.coords[
                          "threshold_kb"],
                      hit_ratio=metrics["hit_ratio"],
                      blocked_objects=metrics["blocked_objects"],
                      mean_app_latency_ms=metrics["mean_app_latency_ms"])
    table.notes.append(
        "paper default 500 KB; lower thresholds block more objects "
        "(fewer AP hits), higher ones let big objects churn the cache")
    return table


# ----------------------------------------------------------------------
# Dependency-aware prefetching (the APPx-synergy extension)
# ----------------------------------------------------------------------
def prefetch_cell(cell: Cell) -> dict[str, object]:
    """Cell runner: short-TTL workload with prefetching on or off."""
    enabled = bool(cell.params["prefetch"])
    system = ApeCacheSystem(ApeCacheConfig(enable_prefetch=enabled))
    result, _workload = execute_workload(_require_workload(cell), system)
    return {"mean_app_latency_ms": result.mean_app_latency_s() * 1e3,
            "hit_ratio": result.hit_ratio(),
            "prefetches": int(result.ap_stats.get("prefetches", 0)),
            "edge_fetches": int(result.ap_stats["edge_fetches"])}


def run_prefetch(quick: bool = True, seed: int = 0,
                 jobs: int = 1) -> ExperimentTable:
    """Workload latency with and without AP prefetching.

    Short TTLs make delegations recur, which is where warming the rest
    of an app's DAG off the critical path pays.
    """
    duration = effective_duration(quick, quick_s=3 * MINUTE)
    short_ttl = DummyAppParams(min_ttl_s=2 * MINUTE, max_ttl_s=5 * MINUTE)
    spec = ScenarioSpec(
        name="ablation-prefetch", systems=(None,), seeds=(seed,),
        workload=_workload_config(duration, seed, dummy_params=short_ttl),
        axes={"prefetch": _param_axis(
            "prefetch", (False, True), labels=("off", "on"))},
        runner="repro.experiments.ablations:prefetch_cell")
    result = SweepEngine(jobs=jobs).run(spec)

    table = ExperimentTable(
        title="Ablation: dependency-aware prefetching on the AP",
        columns=["prefetch", "mean_app_latency_ms", "hit_ratio",
                 "prefetches", "edge_fetches"])
    for cell_result in result.cells:
        metrics = cell_result.metrics
        table.add_row(prefetch=cell_result.cell.coords["prefetch"],
                      mean_app_latency_ms=metrics["mean_app_latency_ms"],
                      hit_ratio=metrics["hit_ratio"],
                      prefetches=metrics["prefetches"],
                      edge_fetches=metrics["edge_fetches"])
    table.notes.append(
        "the paper's related-work synergy: shipping request-dependency "
        "info to the AP prefetches dependents, cutting cold/expired "
        "misses")
    return table


# ----------------------------------------------------------------------
# Device-local (L1) cache in front of the AP
# ----------------------------------------------------------------------
def device_cache_cell(cell: Cell) -> dict[str, object]:
    """Cell runner: workload with an L1 device cache of a given size."""
    device_kb = int(_t.cast(int, cell.params["device_cache_kb"]))
    system = ApeCacheSystem(device_cache_bytes=device_kb * KB)
    result, _workload = execute_workload(_require_workload(cell), system)
    return {"mean_app_latency_ms": result.mean_app_latency_s() * 1e3,
            "ap_hit_ratio_incl_device": result.hit_ratio()}


def run_device_cache(quick: bool = True, seed: int = 0,
                     jobs: int = 1) -> ExperimentTable:
    """APE-CACHE with a PALOMA-style on-device cache layered in front.

    The paper's related work positions client-side caching systems as
    complementary; this sweep quantifies the combination.
    """
    duration = effective_duration(quick, quick_s=3 * MINUTE)
    spec = ScenarioSpec(
        name="ablation-device-cache", systems=(None,), seeds=(seed,),
        workload=_workload_config(duration, seed),
        axes={"device_cache_kb": _param_axis("device_cache_kb",
                                             (0, 64, 256, 1024))},
        runner="repro.experiments.ablations:device_cache_cell")
    result = SweepEngine(jobs=jobs).run(spec)

    table = ExperimentTable(
        title="Ablation: on-device (L1) cache in front of the AP",
        columns=["device_cache_kb", "mean_app_latency_ms",
                 "ap_hit_ratio_incl_device"])
    for cell_result in result.cells:
        metrics = cell_result.metrics
        table.add_row(device_cache_kb=cell_result.cell.coords[
                          "device_cache_kb"],
                      mean_app_latency_ms=metrics["mean_app_latency_ms"],
                      ap_hit_ratio_incl_device=metrics[
                          "ap_hit_ratio_incl_device"])
    table.notes.append(
        "0 KB is the paper's configuration; device hits serve in ~0 ms "
        "and relieve the AP, stacking with (not replacing) AP caching")
    return table


def run(quick: bool = True, seed: int = 0,
        jobs: int = 1) -> list[ExperimentTable]:
    return [run_short_circuit(quick, seed, jobs),
            run_fairness_sweep(quick, seed, jobs),
            run_alpha_sweep(quick, seed, jobs),
            run_blocklist_sweep(quick, seed, jobs),
            run_prefetch(quick, seed, jobs),
            run_device_cache(quick, seed, jobs)]


if __name__ == "__main__":  # pragma: no cover
    for table in run():
        print(table)
        print()
