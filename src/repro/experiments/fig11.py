"""Experiment Fig. 11: object-level caching latency.

Fig. 11a/11c measure cache lookup and cache retrieval latency for a
single cacheable object while the 30-app workload loads the AP at
varying usage frequencies.  As in the paper's measurement methodology, a
probe client performs fresh lookups (its local caches are flushed per
sample, the way the paper's tool measures full resolutions), against a
probe object that each system has had the chance to cache.

Fig. 11b isolates the DNS-Cache design: a plain DNS query answered from
the AP cache, a DNS-Cache query (piggybacked lookup), the same lookup
done as two standalone queries, and a plain DNS query that misses on the
AP and recurses upstream.

Both figures run through the scenario engine: Fig. 11a/c is a
(frequency x system) sweep whose cells attach the probe as an extra
process; Fig. 11b is a single system-less measurement cell.
"""

from __future__ import annotations

import typing as _t

from repro.apps.generator import DummyAppParams
from repro.apps.workload import WorkloadConfig
from repro.baselines.base import CachingSystem
from repro.core.annotations import CacheableSpec
from repro.core.ap_runtime import ApRuntime
from repro.core.client_runtime import ClientRuntime
from repro.dnslib.cache_rr import CacheFlag, CacheLookupRdata
from repro.dnslib.message import Message
from repro.dnslib.resolver import StubResolver
from repro.dnslib.rr import RRClass, RRType
from repro.errors import ConfigError
from repro.experiments.common import ExperimentTable, effective_duration
from repro.runner import ScenarioSpec, SweepEngine, resolve_system, sweep_table
from repro.runner.cells import execute_workload
from repro.runner.spec import Cell
from repro.sim.kernel import HOUR, MINUTE
from repro.testbed import Testbed, TestbedConfig

__all__ = ["run", "run_lookup_overhead", "PROBE_URL"]

PROBE_URL = "http://probeapp.example/object"
PROBE_SIZE = 40 * 1024
#: The probe object is warm everywhere (the paper measures pure cache
#: retrieval), so it carries no simulated remote-backend delay.
PROBE_ORIGIN_DELAY = 0.0
FREQUENCIES = (1.0, 1.5, 2.0, 2.5, 3.0)
SYSTEM_NAMES = ("APE-CACHE", "APE-CACHE-LRU", "Wi-Cache", "Edge Cache")


def _probe_factory(samples: dict[str, list[float]],
                   interval_s: float = 5.0):
    """A workload extra-process measuring one fetch per interval."""

    def probe(bed: Testbed, system: CachingSystem):
        node = bed.add_client("probe-client")
        fetcher = system.new_fetcher(bed, node, "probe-app")
        bed.host_object(PROBE_URL, PROBE_SIZE,
                        origin_delay_s=PROBE_ORIGIN_DELAY)
        fetcher.register_spec(CacheableSpec(
            PROBE_URL, priority=2, ttl_s=2 * HOUR))
        # Prime: the first fetch installs the object in AP caches.
        yield bed.sim.process(_fetch_once(fetcher))
        while True:
            yield bed.sim.timeout(interval_s)
            flush = getattr(fetcher, "flush", None)
            if flush is not None:
                flush()
            result = yield bed.sim.process(_fetch_once(fetcher))
            samples["lookup_ms"].append(
                result.lookup_latency_s * 1e3)
            samples["retrieval_ms"].append(
                result.retrieval_latency_s * 1e3)

    return probe


def _fetch_once(fetcher):
    result = yield from fetcher.fetch(PROBE_URL)
    return result


def probe_cell(cell: Cell) -> dict[str, object]:
    """Cell runner: one workload run with the latency probe attached."""
    if cell.workload is None or cell.system is None:
        raise ConfigError("fig11 probe cells need a workload and system")
    system = resolve_system(cell.system)
    assert system is not None
    samples: dict[str, list[float]] = {"lookup_ms": [],
                                       "retrieval_ms": []}
    execute_workload(cell.workload, system,
                     extra_processes=[_probe_factory(samples)])
    return {"system_name": system.name,
            "metrics": {"lookup_ms": _mean(samples["lookup_ms"]),
                        "retrieval_ms": _mean(samples["retrieval_ms"])}}


def run(quick: bool = True, seed: int = 0,
        jobs: int = 1) -> list[ExperimentTable]:
    """Fig. 11a (lookup) and Fig. 11c (retrieval) across frequencies."""
    duration = effective_duration(quick, quick_s=3 * MINUTE)
    spec = ScenarioSpec(
        name="fig11-object-latency", systems=SYSTEM_NAMES, seeds=(seed,),
        workload=WorkloadConfig(n_apps=30, duration_s=duration,
                                seed=seed, dummy_params=DummyAppParams(),
                                testbed=TestbedConfig(seed=seed)),
        axes={"avg_frequency_per_min": FREQUENCIES},
        runner="repro.experiments.fig11:probe_cell")
    result = SweepEngine(jobs=jobs).run(spec)

    lookup_table = sweep_table(
        result,
        title="Fig. 11a: Cache lookup latency (ms) vs usage frequency",
        axis="avg_frequency_per_min", metric="lookup_ms",
        axis_column="frequency_per_min")
    retrieval_table = sweep_table(
        result,
        title="Fig. 11c: Cache retrieval latency (ms) vs usage frequency",
        axis="avg_frequency_per_min", metric="retrieval_ms",
        axis_column="frequency_per_min")

    lookup_table.notes.append(
        "paper: APE-CACHE ~7.5 ms, Wi-Cache and Edge Cache exceed 22 ms")
    retrieval_table.notes.append(
        "paper: APE-CACHE and Wi-Cache ~7 ms, Edge Cache ~30 ms")
    summary = _summary_note(lookup_table, retrieval_table)
    retrieval_table.notes.append(summary)
    return [lookup_table, retrieval_table]


def _mean(values: list[float]) -> float:
    if not values:
        raise ValueError("probe collected no samples")
    return sum(values) / len(values)


def _summary_note(lookup: ExperimentTable,
                  retrieval: ExperimentTable) -> str:
    def overall(table: ExperimentTable, system: str) -> float:
        column = [float(_t.cast(float, value))
                  for value in table.column(system)]
        return sum(column) / len(column)

    totals = {system: overall(lookup, system) + overall(retrieval, system)
              for system in ("APE-CACHE", "Wi-Cache", "Edge Cache")}
    ape = totals["APE-CACHE"]
    return ("overall object latency: "
            f"APE-CACHE {ape:.1f} ms vs Wi-Cache "
            f"{totals['Wi-Cache']:.1f} ms "
            f"(-{100 * (1 - ape / totals['Wi-Cache']):.0f}%), "
            f"Edge Cache {totals['Edge Cache']:.1f} ms "
            f"(-{100 * (1 - ape / totals['Edge Cache']):.0f}%); "
            "paper: 14.24 / 29.50 / 55.93 ms (-51.7% / -74.5%)")


# ----------------------------------------------------------------------
# Fig. 11b: the DNS-Cache query's latency overhead
# ----------------------------------------------------------------------
def lookup_overhead_cell(cell: Cell) -> dict[str, object]:
    """Cell runner: the four Fig. 11b query variants, timed."""
    runs = int(_t.cast(int, cell.params.get("runs", 40)))
    bed = Testbed(TestbedConfig(seed=cell.seed))
    ap_runtime = ApRuntime(bed.ap, bed.transport, bed.ldns.address)
    ap_runtime.install()
    node = bed.add_client("phone")
    runtime = ClientRuntime(node, bed.transport, bed.ap.address,
                            app_id="overhead-probe")
    url = "http://overheadapp.example/object"
    bed.host_object(url, 10 * 1024)
    runtime.register_spec(CacheableSpec(url, priority=1, ttl_s=1 * HOUR))

    # Cache the object on the AP and warm the AP's DNS cache.
    bed.sim.run(until=bed.sim.process(runtime.fetch(url)))

    def timed(generator_factory) -> float:
        def wrapper():
            started = bed.sim.now
            yield from generator_factory()
            return bed.sim.now - started
        total = 0.0
        for _ in range(runs):
            total += bed.sim.run(until=bed.sim.process(wrapper()))
        return (total / runs) * 1e3

    stub = StubResolver(node, bed.transport, bed.ap.address)

    def plain_dns_hit():
        stub.flush_cache()
        yield from stub.resolve("overheadapp.example")

    def dns_cache_query():
        runtime.flush()
        yield from runtime.lookup("overheadapp.example")

    def standalone_pair():
        # A regular DNS query followed by a *separate* cache query.
        stub.flush_cache()
        yield from stub.resolve("overheadapp.example")
        query = Message.query("overheadapp.example", RRType.A,
                              message_id=stub.next_message_id())
        rdata = CacheLookupRdata()
        rdata.add_url(url, CacheFlag.REQUEST)
        query.attach_cache_lookup(rdata, RRClass.REQUEST)
        yield from stub.exchange(query)

    def plain_dns_miss():
        # An unknown domain forces upstream recursion from the AP.
        bed.host_object("http://colddomain.example/x", 1024)
        stub.flush_cache()
        ap_runtime._cache.clear()
        yield from stub.resolve("colddomain.example")

    return {"plain_hit_ms": timed(plain_dns_hit),
            "dns_cache_ms": timed(dns_cache_query),
            "standalone_ms": timed(standalone_pair),
            "miss_ms": timed(plain_dns_miss)}


def run_lookup_overhead(quick: bool = True, seed: int = 0,
                        jobs: int = 1) -> ExperimentTable:
    """Fig. 11b: piggybacked lookups vs alternatives."""
    spec = ScenarioSpec(
        name="fig11b-lookup-overhead", systems=(None,), seeds=(seed,),
        workload=None, params={"runs": 40 if quick else 200},
        runner="repro.experiments.fig11:lookup_overhead_cell")
    result = SweepEngine(jobs=jobs).run(spec)
    metrics = result.cells[0].metrics

    table = ExperimentTable(
        title="Fig. 11b: Lookup latency overhead of DNS-Cache queries",
        columns=["query_kind", "latency_ms"])
    plain_hit_ms = float(_t.cast(float, metrics["plain_hit_ms"]))
    dns_cache_ms = float(_t.cast(float, metrics["dns_cache_ms"]))
    standalone_ms = float(_t.cast(float, metrics["standalone_ms"]))
    miss_ms = float(_t.cast(float, metrics["miss_ms"]))
    table.add_row(query_kind="regular DNS (hit on AP)",
                  latency_ms=plain_hit_ms)
    table.add_row(query_kind="DNS-Cache (piggybacked)",
                  latency_ms=dns_cache_ms)
    table.add_row(query_kind="standalone DNS + cache query",
                  latency_ms=standalone_ms)
    table.add_row(query_kind="regular DNS (miss, recursive)",
                  latency_ms=miss_ms)
    table.notes.append(
        f"piggyback overhead vs regular hit: "
        f"{dns_cache_ms - plain_hit_ms:.3f} ms (paper: +0.02 ms); "
        f"standalone penalty vs piggyback: "
        f"{standalone_ms - dns_cache_ms:.2f} ms (paper: +7.02 ms)")
    return table


if __name__ == "__main__":  # pragma: no cover
    for result_table in run():
        print(result_table)
    print(run_lookup_overhead())
