"""Extension experiment: PACM vs classic policies vs clairvoyant Belady.

Replays the evaluation workload's request trace through every cache
management policy offline, answering "how much of the achievable hit
ratio does PACM capture?" — an upper-bound analysis the paper does not
include but that its knapsack formulation invites.

One scenario cell per policy; each cell regenerates the (seeded, hence
identical) trace and replays it, so the sweep parallelizes cleanly.
"""

from __future__ import annotations

import typing as _t

from repro.apps.generator import DummyAppParams, generate_apps
from repro.apps.movietrailer import movietrailer_app
from repro.apps.trace import generate_request_trace
from repro.apps.virtualhome import virtualhome_app
from repro.cache.frequency import RequestFrequencyTracker
from repro.cache.offline import BeladyPolicy, OfflineCacheSimulator
from repro.cache.pacm import PacmPolicy
from repro.cache.policies import FifoPolicy, LfuPolicy, LruPolicy
from repro.errors import ConfigError
from repro.experiments.common import ExperimentTable
from repro.runner import ScenarioSpec, SweepEngine
from repro.runner.spec import Cell
from repro.sim.kernel import HOUR, MINUTE

__all__ = ["run", "policy_cell", "POLICY_NAMES"]

MB = 1024 * 1024
POLICY_NAMES = ("PACM", "LRU", "LFU", "FIFO", "Belady (clairvoyant)")


def _build_trace(duration_s: float, seed: int):
    apps = [movietrailer_app(), virtualhome_app()]
    apps.extend(generate_apps(28, seed=seed, params=DummyAppParams()))
    return generate_request_trace(apps, duration_s=duration_s, seed=seed)


def policy_cell(cell: Cell) -> dict[str, object]:
    """Cell runner: replay the seeded trace under one policy."""
    policy_name = str(cell.coords["policy"])
    duration_s = float(_t.cast(float, cell.params["duration_s"]))
    capacity_bytes = int(_t.cast(int, cell.params["capacity_bytes"]))
    trace = _build_trace(duration_s, cell.seed)

    observe = None
    if policy_name == "PACM":
        tracker = RequestFrequencyTracker()
        policy = PacmPolicy(tracker)
        observe = lambda request: tracker.observe(  # noqa: E731
            request.app_id, request.time_s)
    elif policy_name == "LRU":
        policy = LruPolicy()
    elif policy_name == "LFU":
        policy = LfuPolicy()
    elif policy_name == "FIFO":
        policy = FifoPolicy()
    elif policy_name == "Belady (clairvoyant)":
        policy = BeladyPolicy(trace)
    else:
        raise ConfigError(f"unknown policy {policy_name!r}; "
                          f"known: {list(POLICY_NAMES)}")

    simulator = OfflineCacheSimulator(capacity_bytes)
    result = simulator.replay(trace, policy, policy_name=policy_name,
                              observe=observe)
    summary = dict(result.summary())
    summary["trace_requests"] = len(trace)
    return summary


def run(quick: bool = True, seed: int = 0,
        capacity_bytes: int = 5 * MB, jobs: int = 1) -> ExperimentTable:
    duration = (20 * MINUTE) if quick else (1 * HOUR)
    spec = ScenarioSpec(
        name="offline-optimal", systems=(None,), seeds=(seed,),
        workload=None, axes={"policy": POLICY_NAMES},
        params={"duration_s": duration, "capacity_bytes": capacity_bytes},
        runner="repro.experiments.offline_optimal:policy_cell")
    result = SweepEngine(jobs=jobs).run(spec)

    table = ExperimentTable(
        title="Offline replay: PACM vs classic policies vs Belady bound",
        columns=["policy", "hit_ratio", "high_priority_hit_ratio",
                 "bytes_fetched_mb", "evictions"])
    trace_requests = 0
    for cell_result in result.cells:
        summary = cell_result.metrics
        trace_requests = int(_t.cast(int, summary["trace_requests"]))
        table.add_row(policy=cell_result.cell.coords["policy"],
                      hit_ratio=summary["hit_ratio"],
                      high_priority_hit_ratio=summary[
                          "high_priority_hit_ratio"],
                      bytes_fetched_mb=summary["bytes_fetched_mb"],
                      evictions=int(_t.cast(int, summary["evictions"])))

    belady = float(_t.cast(float, table.rows[-1]["hit_ratio"]))
    pacm = float(_t.cast(float, table.rows[0]["hit_ratio"]))
    if belady > 0:
        table.notes.append(
            f"PACM captures {100 * pacm / belady:.0f}% of the "
            "clairvoyant hit ratio on this trace "
            f"({trace_requests} requests, {capacity_bytes // MB} MB "
            "cache)")
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
