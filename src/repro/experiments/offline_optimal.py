"""Extension experiment: PACM vs classic policies vs clairvoyant Belady.

Replays the evaluation workload's request trace through every cache
management policy offline, answering "how much of the achievable hit
ratio does PACM capture?" — an upper-bound analysis the paper does not
include but that its knapsack formulation invites.
"""

from __future__ import annotations

from repro.apps.generator import DummyAppParams, generate_apps
from repro.apps.movietrailer import movietrailer_app
from repro.apps.virtualhome import virtualhome_app
from repro.cache.frequency import RequestFrequencyTracker
from repro.apps.trace import generate_request_trace
from repro.cache.offline import BeladyPolicy, OfflineCacheSimulator
from repro.cache.pacm import PacmPolicy
from repro.cache.policies import FifoPolicy, LfuPolicy, LruPolicy
from repro.experiments.common import ExperimentTable
from repro.sim.kernel import HOUR, MINUTE

__all__ = ["run"]

MB = 1024 * 1024


def run(quick: bool = True, seed: int = 0,
        capacity_bytes: int = 5 * MB) -> ExperimentTable:
    duration = (20 * MINUTE) if quick else (1 * HOUR)
    apps = [movietrailer_app(), virtualhome_app()]
    apps.extend(generate_apps(28, seed=seed, params=DummyAppParams()))
    trace = generate_request_trace(apps, duration_s=duration, seed=seed)
    simulator = OfflineCacheSimulator(capacity_bytes)

    table = ExperimentTable(
        title="Offline replay: PACM vs classic policies vs Belady bound",
        columns=["policy", "hit_ratio", "high_priority_hit_ratio",
                 "bytes_fetched_mb", "evictions"])

    def add(policy, name, observe=None):
        result = simulator.replay(trace, policy, policy_name=name,
                                  observe=observe)
        summary = result.summary()
        table.add_row(policy=name, hit_ratio=summary["hit_ratio"],
                      high_priority_hit_ratio=summary[
                          "high_priority_hit_ratio"],
                      bytes_fetched_mb=summary["bytes_fetched_mb"],
                      evictions=int(summary["evictions"]))
        return result

    tracker = RequestFrequencyTracker()
    add(PacmPolicy(tracker), "PACM",
        observe=lambda request: tracker.observe(request.app_id,
                                                request.time_s))
    add(LruPolicy(), "LRU")
    add(LfuPolicy(), "LFU")
    add(FifoPolicy(), "FIFO")
    add(BeladyPolicy(trace), "Belady (clairvoyant)")

    belady = float(table.rows[-1]["hit_ratio"])
    pacm = float(table.rows[0]["hit_ratio"])
    if belady > 0:
        table.notes.append(
            f"PACM captures {100 * pacm / belady:.0f}% of the "
            "clairvoyant hit ratio on this trace "
            f"({len(trace)} requests, {capacity_bytes // MB} MB cache)")
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
