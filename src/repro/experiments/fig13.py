"""Experiment Fig. 13: average app-level latency under varied settings.

Three sweeps (object size, usage frequency, app quantity), each run for
all four systems — the paper's Fig. 13a/b/c.  At the default setting the
paper reads 30 / 42 / 54 / 122 ms for APE-CACHE / APE-CACHE-LRU /
Wi-Cache / Edge Cache.

Each sweep is one declarative :class:`~repro.runner.spec.ScenarioSpec`
executed by the scenario engine — pass ``jobs > 1`` to fan the cells
out across cores (see ``docs/experiments.md``).
"""

from __future__ import annotations

from repro.apps.generator import DummyAppParams
from repro.apps.workload import WorkloadConfig
from repro.experiments.common import ExperimentTable, effective_duration
from repro.experiments.pacm_tables import (
    APP_QUANTITIES,
    FREQUENCIES,
    SIZE_RANGES,
    size_range_axis,
)
from repro.runner import ScenarioSpec, SweepEngine, sweep_table
from repro.sim.kernel import MINUTE
from repro.testbed import TestbedConfig

__all__ = ["run", "run_size_sweep", "run_frequency_sweep",
           "run_quantity_sweep"]

KB = 1024
SYSTEM_NAMES = ("APE-CACHE", "APE-CACHE-LRU", "Wi-Cache", "Edge Cache")
METRIC = "mean_app_latency_ms"


def _base_spec(name: str, quick: bool, seed: int,
               axes: dict) -> ScenarioSpec:
    duration = effective_duration(quick, quick_s=3 * MINUTE)
    return ScenarioSpec(
        name=name, systems=SYSTEM_NAMES, seeds=(seed,),
        workload=WorkloadConfig(n_apps=30, avg_frequency_per_min=3.0,
                                duration_s=duration, seed=seed,
                                dummy_params=DummyAppParams(),
                                testbed=TestbedConfig(seed=seed)),
        axes=axes)


def run_size_sweep(quick: bool = True, seed: int = 0,
                   jobs: int = 1) -> ExperimentTable:
    """Fig. 13a: latency vs data object size."""
    spec = _base_spec("fig13a-size", quick, seed,
                      axes={"size_range_kb": size_range_axis(SIZE_RANGES)})
    result = SweepEngine(jobs=jobs).run(spec)
    table = sweep_table(
        result, title="Fig. 13a: Avg app-level latency (ms) vs object size",
        axis="size_range_kb", metric=METRIC)
    table.notes.append(
        "paper trend: latency grows with object size for the AP-cached "
        "systems (lower hit ratio); APE-CACHE lowest across the board")
    return table


def run_frequency_sweep(quick: bool = True, seed: int = 0,
                        jobs: int = 1) -> ExperimentTable:
    """Fig. 13b: latency vs app usage frequency."""
    spec = _base_spec("fig13b-frequency", quick, seed,
                      axes={"avg_frequency_per_min": FREQUENCIES})
    result = SweepEngine(jobs=jobs).run(spec)
    table = sweep_table(
        result,
        title="Fig. 13b: Avg app-level latency (ms) vs usage frequency",
        axis="avg_frequency_per_min", metric=METRIC,
        axis_column="frequency_per_min")
    table.notes.append(
        "paper trend: higher frequency -> higher hit ratio -> slightly "
        "lower latency for AP-cached systems; Edge Cache flat")
    return table


def run_quantity_sweep(quick: bool = True, seed: int = 0,
                       jobs: int = 1) -> ExperimentTable:
    """Fig. 13c: latency vs app quantity."""
    spec = _base_spec("fig13c-quantity", quick, seed,
                      axes={"n_apps": APP_QUANTITIES})
    result = SweepEngine(jobs=jobs).run(spec)
    table = sweep_table(
        result,
        title="Fig. 13c: Avg app-level latency (ms) vs app quantity",
        axis="n_apps", metric=METRIC)
    table.notes.append(
        "paper at defaults: APE 30 < APE-LRU 42 < Wi-Cache 54 << "
        "Edge 122 ms (-29% / -44% / -76%)")
    return table


def run(quick: bool = True, seed: int = 0,
        jobs: int = 1) -> list[ExperimentTable]:
    return [run_size_sweep(quick, seed, jobs),
            run_frequency_sweep(quick, seed, jobs),
            run_quantity_sweep(quick, seed, jobs)]


if __name__ == "__main__":  # pragma: no cover
    for table in run():
        print(table)
        print()
