"""Experiment Fig. 13: average app-level latency under varied settings.

Three sweeps (object size, usage frequency, app quantity), each run for
all four systems — the paper's Fig. 13a/b/c.  At the default setting the
paper reads 30 / 42 / 54 / 122 ms for APE-CACHE / APE-CACHE-LRU /
Wi-Cache / Edge Cache.
"""

from __future__ import annotations

import dataclasses

from repro.apps.generator import DummyAppParams
from repro.apps.workload import Workload, WorkloadConfig
from repro.baselines import all_systems
from repro.experiments.common import ExperimentTable, effective_duration
from repro.experiments.pacm_tables import (
    APP_QUANTITIES,
    FREQUENCIES,
    SIZE_RANGES,
)
from repro.sim.kernel import MINUTE
from repro.testbed import TestbedConfig

__all__ = ["run", "run_size_sweep", "run_frequency_sweep",
           "run_quantity_sweep"]

KB = 1024
SYSTEM_NAMES = ("APE-CACHE", "APE-CACHE-LRU", "Wi-Cache", "Edge Cache")


def _base_config(duration_s: float, seed: int) -> WorkloadConfig:
    return WorkloadConfig(n_apps=30, avg_frequency_per_min=3.0,
                          duration_s=duration_s, seed=seed,
                          dummy_params=DummyAppParams(),
                          testbed=TestbedConfig(seed=seed))


def _latency_row(config: WorkloadConfig) -> dict[str, float]:
    row = {}
    for system in all_systems():
        result = Workload(config).run(system)
        row[system.name] = result.mean_app_latency_s() * 1e3
    return row


def run_size_sweep(quick: bool = True, seed: int = 0) -> ExperimentTable:
    """Fig. 13a: latency vs data object size."""
    duration = effective_duration(quick, quick_s=3 * MINUTE)
    table = ExperimentTable(
        title="Fig. 13a: Avg app-level latency (ms) vs object size",
        columns=["size_range_kb", *SYSTEM_NAMES])
    for low_kb, high_kb in SIZE_RANGES:
        config = dataclasses.replace(
            _base_config(duration, seed),
            dummy_params=DummyAppParams(min_size_bytes=low_kb * KB,
                                        max_size_bytes=high_kb * KB))
        row = _latency_row(config)
        table.rows.append({"size_range_kb": f"{low_kb}~{high_kb}", **row})
    table.notes.append(
        "paper trend: latency grows with object size for the AP-cached "
        "systems (lower hit ratio); APE-CACHE lowest across the board")
    return table


def run_frequency_sweep(quick: bool = True,
                        seed: int = 0) -> ExperimentTable:
    """Fig. 13b: latency vs app usage frequency."""
    duration = effective_duration(quick, quick_s=3 * MINUTE)
    table = ExperimentTable(
        title="Fig. 13b: Avg app-level latency (ms) vs usage frequency",
        columns=["frequency_per_min", *SYSTEM_NAMES])
    for frequency in FREQUENCIES:
        config = dataclasses.replace(_base_config(duration, seed),
                                     avg_frequency_per_min=frequency)
        row = _latency_row(config)
        table.rows.append({"frequency_per_min": frequency, **row})
    table.notes.append(
        "paper trend: higher frequency -> higher hit ratio -> slightly "
        "lower latency for AP-cached systems; Edge Cache flat")
    return table


def run_quantity_sweep(quick: bool = True,
                       seed: int = 0) -> ExperimentTable:
    """Fig. 13c: latency vs app quantity."""
    duration = effective_duration(quick, quick_s=3 * MINUTE)
    table = ExperimentTable(
        title="Fig. 13c: Avg app-level latency (ms) vs app quantity",
        columns=["n_apps", *SYSTEM_NAMES])
    for quantity in APP_QUANTITIES:
        config = dataclasses.replace(_base_config(duration, seed),
                                     n_apps=quantity)
        row = _latency_row(config)
        table.rows.append({"n_apps": quantity, **row})
    table.notes.append(
        "paper at defaults: APE 30 < APE-LRU 42 < Wi-Cache 54 << "
        "Edge 122 ms (-29% / -44% / -76%)")
    return table


def run(quick: bool = True, seed: int = 0) -> list[ExperimentTable]:
    return [run_size_sweep(quick, seed), run_frequency_sweep(quick, seed),
            run_quantity_sweep(quick, seed)]


if __name__ == "__main__":  # pragma: no cover
    for table in run():
        print(table)
        print()
