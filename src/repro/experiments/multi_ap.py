"""Extension experiment: distributed Wi-Cache across multiple APs.

The original Wi-Cache spreads cached content over an enterprise WLAN's
APs; the paper collapses it to one AP.  This experiment restores the
distributed form and measures how aggregate cache capacity scales:
clients spread round-robin over 1/2/4 APs, apps execute at a fixed
rate, and the controller redirects hits to whichever AP holds each
object.

One scenario cell per AP count, run through the scenario engine.
"""

from __future__ import annotations

import typing as _t

from repro.apps.executor import AppRunner
from repro.apps.generator import DummyAppParams, generate_apps
from repro.apps.workload import zipf_rates
from repro.baselines.multi_ap import WiCacheDistributedSystem
from repro.experiments.common import ExperimentTable, effective_duration
from repro.runner import ScenarioSpec, SweepEngine
from repro.runner.spec import Cell
from repro.sim.kernel import MINUTE
from repro.testbed import Testbed, TestbedConfig

__all__ = ["run", "multi_ap_cell", "AP_COUNTS"]

AP_COUNTS = (1, 2, 4)

MB = 1024 * 1024
N_APPS = 24


def _drive(bed: Testbed, runner: AppRunner, rate_per_s: float,
           latencies: list[float],
           ) -> _t.Generator[object, object, None]:
    rng = bed.streams.stream(f"multiap:{runner.app.app_id}")
    while True:
        yield bed.sim.timeout(rng.expovariate(rate_per_s))
        execution = yield bed.sim.process(runner.execute())
        latencies.append(execution.latency_s)  # type: ignore[union-attr]


def _run_point(n_aps: int, duration_s: float, seed: int,
               ) -> dict[str, float]:
    bed = Testbed(TestbedConfig(seed=seed))
    system = WiCacheDistributedSystem(n_aps=n_aps,
                                      cache_capacity_per_ap=2 * MB)
    system.install(bed)
    apps = generate_apps(N_APPS, seed=seed, params=DummyAppParams())
    rates = zipf_rates(N_APPS, 0.8, 3.0)

    latencies: list[float] = []
    runners = []
    for index, (app, rate) in enumerate(zip(apps, rates)):
        home = system.home_ap_name(index)
        node = bed.add_client(f"client-{app.app_id}", ap_name=home)
        fetcher = system.new_fetcher(bed, node, app.app_id)
        runner = AppRunner(bed.sim, app, fetcher)
        runners.append(runner)
        for obj in app.objects:
            bed.host_object(obj.url, obj.size_bytes,
                            origin_delay_s=obj.origin_delay_s)
        bed.sim.process(_drive(bed, runner, rate, latencies))
    bed.run(until=duration_s)

    fetches = [result for runner in runners
               for _name, result in runner.fetch_results()]
    hits = sum(1 for result in fetches if result.cache_hit)
    stats = system.ap_cache_stats()
    return {
        "hit_ratio": hits / len(fetches) if fetches else 0.0,
        "mean_app_latency_ms": (sum(latencies) / len(latencies) * 1e3
                                if latencies else 0.0),
        "aggregate_cache_mb": stats["cache_used_bytes"] / MB,
        "hits_served": stats["hits_served"],
    }


def multi_ap_cell(cell: Cell) -> dict[str, object]:
    """Cell runner: one distributed-Wi-Cache run at a given AP count."""
    n_aps = int(_t.cast(int, cell.coords["n_aps"]))
    duration_s = float(_t.cast(float, cell.params["duration_s"]))
    return dict(_run_point(n_aps, duration_s, cell.seed))


def run(quick: bool = True, seed: int = 0,
        jobs: int = 1) -> ExperimentTable:
    duration = effective_duration(quick, quick_s=4 * MINUTE)
    spec = ScenarioSpec(
        name="multi-ap", systems=(None,), seeds=(seed,),
        workload=None, axes={"n_aps": AP_COUNTS},
        params={"duration_s": duration},
        runner="repro.experiments.multi_ap:multi_ap_cell")
    result = SweepEngine(jobs=jobs).run(spec)

    table = ExperimentTable(
        title="Extension: distributed Wi-Cache, hit ratio vs AP count",
        columns=["n_aps", "hit_ratio", "mean_app_latency_ms",
                 "aggregate_cache_mb"])
    for cell_result in result.cells:
        point = cell_result.metrics
        table.add_row(n_aps=cell_result.cell.coords["n_aps"],
                      hit_ratio=point["hit_ratio"],
                      mean_app_latency_ms=point["mean_app_latency_ms"],
                      aggregate_cache_mb=point["aggregate_cache_mb"])
    table.notes.append(
        "each AP contributes 2 MB; more APs -> more aggregate cache -> "
        "higher hit ratio and lower latency (the original Wi-Cache's "
        "scaling argument)")
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
