"""Experiment Table I: Akamai caching performance from three sites.

The measurement study runs as one system-less scenario cell whose
metrics carry every (site, service) triple; the table folds them back
into the paper's rows.
"""

from __future__ import annotations

import typing as _t

from repro.experiments.common import ExperimentTable
from repro.measurement.akamai import PAPER_TABLE1, AkamaiStudy
from repro.runner import ScenarioSpec, SweepEngine
from repro.runner.spec import Cell

__all__ = ["run", "akamai_cell"]


def akamai_cell(cell: Cell) -> dict[str, object]:
    """Cell runner: one full Akamai measurement campaign."""
    runs = int(_t.cast(int, cell.params.get("runs", 25)))
    study = AkamaiStudy(seed=cell.seed)
    metrics: dict[str, object] = {}
    for result in study.measure(runs=runs):
        prefix = f"{result.site}/{result.service}"
        metrics[f"{prefix}/dns_ms"] = result.dns_ms
        metrics[f"{prefix}/rtt_ms"] = result.rtt_ms
        metrics[f"{prefix}/hops"] = result.hops
    return metrics


def run(quick: bool = True, seed: int = 0, jobs: int = 1,
        ) -> ExperimentTable:
    """Reproduce Table I: DNS / RTT / hops per (site, service) cell."""
    spec = ScenarioSpec(
        name="table1-akamai", systems=(None,), seeds=(seed,),
        workload=None, params={"runs": 25 if quick else 100},
        runner="repro.experiments.table1:akamai_cell")
    metrics = SweepEngine(jobs=jobs).run(spec).cells[0].metrics

    table = ExperimentTable(
        title="Table I: Performance Measurement of Akamai Caching",
        columns=["location", "service", "dns_ms", "paper_dns_ms",
                 "rtt_ms", "paper_rtt_ms", "hops", "paper_hops"])
    measured = []
    for (site, service), paper in PAPER_TABLE1.items():
        paper_dns, paper_rtt, paper_hops = paper
        dns_ms = float(_t.cast(float, metrics[f"{site}/{service}/dns_ms"]))
        rtt_ms = float(_t.cast(float, metrics[f"{site}/{service}/rtt_ms"]))
        hops = _t.cast(float, metrics[f"{site}/{service}/hops"])
        measured.append((site, service, dns_ms, rtt_ms, hops))
        table.add_row(location=site, service=service,
                      dns_ms=dns_ms, paper_dns_ms=paper_dns,
                      rtt_ms=rtt_ms, paper_rtt_ms=paper_rtt,
                      hops=hops, paper_hops=paper_hops)

    without_outlier = [entry for entry in measured
                       if not (entry[0] == "SaoPaulo"
                               and entry[1] == "yahoo")]
    mean_dns = sum(entry[2] for entry in without_outlier) \
        / len(without_outlier)
    mean_rtt = sum(entry[3] for entry in without_outlier) \
        / len(without_outlier)
    mean_hops = sum(entry[4] for entry in without_outlier) \
        / len(without_outlier)
    table.notes.append(
        f"means excluding the PoP-less Yahoo/Sao-Paulo cell: "
        f"DNS {mean_dns:.1f} ms (paper ~22), RTT {mean_rtt:.1f} ms "
        f"(paper ~38 incl. outliers), hops {mean_hops:.1f} (paper ~14 "
        f"one-way)")
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
