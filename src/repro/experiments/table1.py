"""Experiment Table I: Akamai caching performance from three sites."""

from __future__ import annotations

from repro.experiments.common import ExperimentTable
from repro.measurement.akamai import PAPER_TABLE1, AkamaiStudy

__all__ = ["run"]


def run(quick: bool = True, seed: int = 0) -> ExperimentTable:
    """Reproduce Table I: DNS / RTT / hops per (site, service) cell."""
    runs = 25 if quick else 100
    study = AkamaiStudy(seed=seed)
    results = study.measure(runs=runs)

    table = ExperimentTable(
        title="Table I: Performance Measurement of Akamai Caching",
        columns=["location", "service", "dns_ms", "paper_dns_ms",
                 "rtt_ms", "paper_rtt_ms", "hops", "paper_hops"])
    for cell in results:
        paper_dns, paper_rtt, paper_hops = PAPER_TABLE1[
            (cell.site, cell.service)]
        table.add_row(location=cell.site, service=cell.service,
                      dns_ms=cell.dns_ms, paper_dns_ms=paper_dns,
                      rtt_ms=cell.rtt_ms, paper_rtt_ms=paper_rtt,
                      hops=cell.hops, paper_hops=paper_hops)

    without_outlier = [cell for cell in results
                       if not (cell.site == "SaoPaulo" and
                               cell.service == "yahoo")]
    mean_dns = sum(c.dns_ms for c in without_outlier) / len(without_outlier)
    mean_rtt = sum(c.rtt_ms for c in without_outlier) / len(without_outlier)
    mean_hops = sum(c.hops for c in without_outlier) / len(without_outlier)
    table.notes.append(
        f"means excluding the PoP-less Yahoo/Sao-Paulo cell: "
        f"DNS {mean_dns:.1f} ms (paper ~22), RTT {mean_rtt:.1f} ms "
        f"(paper ~38 incl. outliers), hops {mean_hops:.1f} (paper ~14 "
        f"one-way)")
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
