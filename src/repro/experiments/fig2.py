"""Experiment Table II + Fig. 2: router load under traffic replay."""

from __future__ import annotations

from repro.experiments.common import ExperimentTable
from repro.measurement.resources import GL_MT1300, RouterResourceModel
from repro.measurement.traffic import (
    HIGH_RATE_TRACE,
    LOW_RATE_TRACE,
    replay_trace,
    synthesize_trace,
)

__all__ = ["run"]

MB = 1024 * 1024


def run(quick: bool = True, seed: int = 0) -> ExperimentTable:
    """Replay both Table II traces and report the Fig. 2 load curves."""
    del quick  # the replay is cheap; always run in full
    model = RouterResourceModel(GL_MT1300)
    table = ExperimentTable(
        title="Fig. 2: CPU/Memory usage of the WiFi router during replay",
        columns=["trace", "packets", "flows", "total_mb", "apps",
                 "mean_cpu_pct", "peak_cpu_pct", "mean_mem_mb",
                 "peak_mem_mb"])
    for spec in (LOW_RATE_TRACE, HIGH_RATE_TRACE):
        trace = synthesize_trace(spec, seed=seed)
        trace.verify_statistics()
        report = replay_trace(trace, model)
        summary = report.summary()
        table.add_row(trace=spec.name, packets=spec.packets,
                      flows=spec.flows,
                      total_mb=spec.total_bytes / MB,
                      apps=spec.app_count,
                      mean_cpu_pct=summary["mean_cpu_percent"],
                      peak_cpu_pct=summary["peak_cpu_percent"],
                      mean_mem_mb=summary["mean_memory_mb"],
                      peak_mem_mb=summary["peak_memory_mb"])
    table.notes.append(
        "paper: high-rate replay keeps CPU well below 50% and memory "
        "around 120 MB of the router's 256 MB")
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
