"""Experiment Table II + Fig. 2: router load under traffic replay.

One system-less scenario cell per Table II trace; each cell
synthesizes, verifies, and replays its trace against the router
resource model.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.experiments.common import ExperimentTable
from repro.measurement.resources import GL_MT1300, RouterResourceModel
from repro.measurement.traffic import (
    HIGH_RATE_TRACE,
    LOW_RATE_TRACE,
    replay_trace,
    synthesize_trace,
)
from repro.runner import ScenarioSpec, SweepEngine
from repro.runner.spec import Cell

__all__ = ["run", "replay_cell"]

MB = 1024 * 1024
TRACES = {spec.name: spec for spec in (LOW_RATE_TRACE, HIGH_RATE_TRACE)}


def replay_cell(cell: Cell) -> dict[str, object]:
    """Cell runner: synthesize + verify + replay one Table II trace."""
    trace_name = str(cell.coords["trace"])
    if trace_name not in TRACES:
        raise ConfigError(f"unknown trace {trace_name!r}; "
                          f"known: {sorted(TRACES)}")
    spec = TRACES[trace_name]
    trace = synthesize_trace(spec, seed=cell.seed)
    trace.verify_statistics()
    report = replay_trace(trace, RouterResourceModel(GL_MT1300))
    metrics: dict[str, object] = dict(report.summary())
    metrics.update(packets=spec.packets, flows=spec.flows,
                   total_mb=spec.total_bytes / MB, apps=spec.app_count)
    return metrics


def run(quick: bool = True, seed: int = 0,
        jobs: int = 1) -> ExperimentTable:
    """Replay both Table II traces and report the Fig. 2 load curves."""
    del quick  # the replay is cheap; always run in full
    spec = ScenarioSpec(
        name="fig2-router-load", systems=(None,), seeds=(seed,),
        workload=None, axes={"trace": tuple(TRACES)},
        runner="repro.experiments.fig2:replay_cell")
    result = SweepEngine(jobs=jobs).run(spec)

    table = ExperimentTable(
        title="Fig. 2: CPU/Memory usage of the WiFi router during replay",
        columns=["trace", "packets", "flows", "total_mb", "apps",
                 "mean_cpu_pct", "peak_cpu_pct", "mean_mem_mb",
                 "peak_mem_mb"])
    for cell_result in result.cells:
        metrics = cell_result.metrics
        table.add_row(trace=cell_result.cell.coords["trace"],
                      packets=metrics["packets"],
                      flows=metrics["flows"],
                      total_mb=metrics["total_mb"],
                      apps=metrics["apps"],
                      mean_cpu_pct=metrics["mean_cpu_percent"],
                      peak_cpu_pct=metrics["peak_cpu_percent"],
                      mean_mem_mb=metrics["mean_memory_mb"],
                      peak_mem_mb=metrics["peak_memory_mb"])
    table.notes.append(
        "paper: high-rate replay keeps CPU well below 50% and memory "
        "around 120 MB of the router's 256 MB")
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
