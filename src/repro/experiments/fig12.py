"""Experiment Fig. 12: real-world apps' latency (average and p95 tail).

Runs the full 30-app workload under each caching system and reports
MovieTrailer's and VirtualHome's app-level latency distributions.
"""

from __future__ import annotations

from repro.apps.workload import Workload, WorkloadConfig
from repro.baselines import all_systems
from repro.experiments.common import ExperimentTable, effective_duration
from repro.sim.kernel import MINUTE
from repro.testbed import TestbedConfig

__all__ = ["run", "REAL_APPS"]

REAL_APPS = ("movietrailer", "virtualhome")


def run(quick: bool = True, seed: int = 0) -> list[ExperimentTable]:
    """One table per real app: mean and tail latency per system."""
    duration = effective_duration(quick, quick_s=5 * MINUTE)
    config = WorkloadConfig(n_apps=30, duration_s=duration, seed=seed,
                            testbed=TestbedConfig(seed=seed))
    results = {}
    for system in all_systems():
        results[system.name] = Workload(config).run(system)

    tables = []
    for app_id in REAL_APPS:
        table = ExperimentTable(
            title=f"Fig. 12: {app_id} app-level latency",
            columns=["system", "mean_ms", "p95_ms"])
        for system_name, result in results.items():
            table.add_row(
                system=system_name,
                mean_ms=result.mean_app_latency_s(app_id) * 1e3,
                p95_ms=result.tail_app_latency_s(app_id) * 1e3)
        ape = results["APE-CACHE"].mean_app_latency_s(app_id)
        edge = results["Edge Cache"].mean_app_latency_s(app_id)
        table.notes.append(
            f"APE-CACHE cuts {app_id}'s mean latency by "
            f"{100 * (1 - ape / edge):.0f}% vs Edge Cache "
            "(paper: ~78% mean, ~76% tail)")
        tables.append(table)
    return tables


if __name__ == "__main__":  # pragma: no cover
    for table in run():
        print(table)
        print()
