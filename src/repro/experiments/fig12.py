"""Experiment Fig. 12: real-world apps' latency (average and p95 tail).

Runs the full 30-app workload under each caching system and reports
MovieTrailer's and VirtualHome's app-level latency distributions.  One
scenario cell per system; the per-app breakdown rides on the workload
runner's ``app_metrics`` parameter.
"""

from __future__ import annotations

from repro.apps.workload import WorkloadConfig
from repro.experiments.common import ExperimentTable, effective_duration
from repro.runner import ScenarioSpec, SweepEngine
from repro.sim.kernel import MINUTE
from repro.testbed import TestbedConfig

__all__ = ["run", "REAL_APPS"]

REAL_APPS = ("movietrailer", "virtualhome")
SYSTEM_NAMES = ("APE-CACHE", "APE-CACHE-LRU", "Wi-Cache", "Edge Cache")


def run(quick: bool = True, seed: int = 0,
        jobs: int = 1) -> list[ExperimentTable]:
    """One table per real app: mean and tail latency per system."""
    duration = effective_duration(quick, quick_s=5 * MINUTE)
    spec = ScenarioSpec(
        name="fig12-real-apps", systems=SYSTEM_NAMES, seeds=(seed,),
        workload=WorkloadConfig(n_apps=30, duration_s=duration,
                                seed=seed,
                                testbed=TestbedConfig(seed=seed)),
        params={"app_metrics": list(REAL_APPS)})
    result = SweepEngine(jobs=jobs).run(spec)
    metrics = {cell_result.system_name: cell_result.metrics
               for cell_result in result.cells}

    tables = []
    for app_id in REAL_APPS:
        table = ExperimentTable(
            title=f"Fig. 12: {app_id} app-level latency",
            columns=["system", "mean_ms", "p95_ms"])
        for system_name in SYSTEM_NAMES:
            values = metrics[system_name]
            table.add_row(
                system=system_name,
                mean_ms=values[f"app:{app_id}:mean_ms"],
                p95_ms=values[f"app:{app_id}:p95_ms"])
        ape = float(metrics["APE-CACHE"][f"app:{app_id}:mean_ms"])
        edge = float(metrics["Edge Cache"][f"app:{app_id}:mean_ms"])
        table.notes.append(
            f"APE-CACHE cuts {app_id}'s mean latency by "
            f"{100 * (1 - ape / edge):.0f}% vs Edge Cache "
            "(paper: ~78% mean, ~76% tail)")
        tables.append(table)
    return tables


if __name__ == "__main__":  # pragma: no cover
    for table in run():
        print(table)
        print()
