"""Trace analytics: span trees, critical-path attribution, run diffing.

PR 2's :mod:`repro.telemetry` records *what happened* — spans and
instruments.  This module turns those recordings into *decisions*:

* **Span-tree building** — reconstruct the per-request trace tree from
  finished spans (live :class:`~repro.telemetry.registry.Telemetry`
  objects or exported JSONL), flagging orphaned spans and taxonomy
  violations against the documented ``request → dns_piggyback →
  {ap_hit | ap_delegated | edge_fetch} → ap.request → …`` shape.
* **Critical-path attribution** — an exact per-stage *self-time*
  decomposition of every request: each instant of the root span's
  window is attributed to the deepest span active at that instant, so
  the per-stage times of one request always sum to its end-to-end
  latency (the invariant ``tests/telemetry/test_analysis.py`` property-
  checks over seeds).  This is the checkable form of the paper's
  "millisecond-level, almost for free" claim: on the hit path the
  ``edge_fetch`` stage simply does not exist.
* **Run diffing** — compare two exported runs series-by-series and
  stage-by-stage.  Two same-seed runs diff *empty* (byte-empty render),
  which ``tools/check.sh`` enforces; across systems and seed fleets,
  :func:`compare_systems` reuses the sweep engine and the paired
  Student-t machinery from :mod:`repro.analysis.stats` to annotate
  every delta with a confidence interval.

Everything here is a pure function of deterministic inputs, so reports
are byte-identical across runs of the same seed.
"""

from __future__ import annotations

import dataclasses
import json
import math
import typing as _t

from repro.errors import TelemetryError
from repro.experiments.common import ExperimentTable
from repro.sim.monitor import percentile

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.registry import Telemetry

__all__ = [
    "SpanRecord", "TraceNode", "TraceTree", "TAXONOMY",
    "records_from_telemetry", "load_spans_jsonl", "load_metric_records",
    "build_trace_trees", "taxonomy_issues",
    "TraceAttribution", "AttributionReport", "attribute_tree",
    "attribute",
    "RunData", "load_run", "DiffEntry", "RunDiff", "diff_runs",
    "compare_systems",
]

#: Attribution/summary statistics exposed by reports and the sentry.
STATS = ("count", "mean", "p50", "p95", "p99", "max")


# ----------------------------------------------------------------------
# Span records: one shape for live registries and exported JSONL
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class SpanRecord:
    """One finished span, as exported by :mod:`repro.telemetry.export`."""

    trace: int
    span: int
    parent: int | None
    name: str
    start_ms: float
    duration_ms: float
    status: str = "ok"
    attrs: _t.Mapping[str, object] = dataclasses.field(
        default_factory=dict)

    @property
    def end_ms(self) -> float:
        return self.start_ms + self.duration_ms


def _record_from_dict(raw: _t.Mapping[str, object]) -> SpanRecord:
    try:
        parent = raw.get("parent")
        return SpanRecord(
            trace=int(_t.cast(int, raw["trace"])),
            span=int(_t.cast(int, raw["span"])),
            parent=None if parent is None else int(_t.cast(int, parent)),
            name=str(raw["name"]),
            start_ms=float(_t.cast(float, raw["start_ms"])),
            duration_ms=float(_t.cast(float, raw["duration_ms"])),
            status=str(raw.get("status", "ok")),
            attrs=dict(_t.cast(dict, raw.get("attrs", {}))))
    except (KeyError, TypeError, ValueError) as error:
        raise TelemetryError(f"malformed span record {raw!r}: {error}")


def records_from_telemetry(telemetry: "Telemetry") -> list[SpanRecord]:
    """The registry's finished spans in canonical export order."""
    from repro.telemetry.export import span_records

    return [_record_from_dict(raw) for raw in span_records(telemetry)]


def load_spans_jsonl(path: str) -> list[SpanRecord]:
    """Read a ``--export-spans`` JSONL dump back into records."""
    records: list[SpanRecord] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(_record_from_dict(json.loads(line)))
    return records


def load_metric_records(path: str) -> list[dict[str, object]]:
    """Read a ``--export-metrics`` JSONL dump back into records."""
    records: list[dict[str, object]] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# ----------------------------------------------------------------------
# Trace trees
# ----------------------------------------------------------------------
@dataclasses.dataclass
class TraceNode:
    """One span linked into its trace tree."""

    record: SpanRecord
    depth: int = 0
    children: list["TraceNode"] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class TraceTree:
    """One reconstructed trace: a root, its nodes, and any orphans.

    ``orphans`` are spans whose parent id does not appear in the trace —
    a parent that fell out of the span ring or was never closed.  They
    (and their subtrees) are excluded from ``nodes`` so attribution
    never double-counts a detached subtree.
    """

    trace_id: int
    root: TraceNode | None
    #: Every node reachable from the root, pre-order.
    nodes: list[TraceNode] = dataclasses.field(default_factory=list)
    orphans: list[SpanRecord] = dataclasses.field(default_factory=list)

    @property
    def complete(self) -> bool:
        return self.root is not None and not self.orphans


def build_trace_trees(records: _t.Sequence[SpanRecord],
                      ) -> list[TraceTree]:
    """Group spans by trace id and link each trace into a tree."""
    by_trace: dict[int, list[SpanRecord]] = {}
    for record in records:
        by_trace.setdefault(record.trace, []).append(record)
    trees: list[TraceTree] = []
    for trace_id in sorted(by_trace):
        spans = sorted(by_trace[trace_id],
                       key=lambda record: record.span)
        known = {record.span for record in spans}
        nodes = {record.span: TraceNode(record) for record in spans}
        root: TraceNode | None = None
        orphans: list[SpanRecord] = []
        for record in spans:
            if record.parent is None:
                if root is None:
                    root = nodes[record.span]
                else:  # second root in one trace: a linking bug
                    orphans.append(record)
            elif record.parent in known:
                nodes[record.parent].children.append(nodes[record.span])
            else:
                orphans.append(record)
        reachable: list[TraceNode] = []
        if root is not None:
            stack = [root]
            while stack:
                node = stack.pop()
                reachable.append(node)
                for child in sorted(
                        node.children,
                        key=lambda child: child.record.span,
                        reverse=True):
                    child.depth = node.depth + 1
                    stack.append(child)
        # Spans hanging under an orphan are unreachable too; report the
        # whole detached set, sorted for determinism.
        reached_ids = {node.record.span for node in reachable}
        orphan_ids = {record.span for record in orphans}
        for record in spans:
            if record.span not in reached_ids \
                    and record.span not in orphan_ids:
                orphans.append(record)
        trees.append(TraceTree(
            trace_id=trace_id, root=root, nodes=reachable,
            orphans=sorted(orphans, key=lambda record: record.span)))
    return trees


#: The documented span taxonomy: span name → allowed parent names
#: (``None`` = may be a trace root).  ``ap.*`` spans tolerate a missing
#: link (header stripped / prefetch) by allowing ``None``.
TAXONOMY: dict[str, tuple[str | None, ...]] = {
    "request": (None,),
    "dns_piggyback": ("request",),
    "dns_lookup": ("request",),
    "controller_lookup": ("request",),
    "ap_hit": ("request",),
    "ap_delegated": ("request",),
    "edge_fetch": ("request",),
    "ap.request": ("ap_hit", "ap_delegated", None),
    "ap.edge_fetch": ("ap.request", None),
    "ap.pacm_admit": ("ap.request", None),
}


def taxonomy_issues(trees: _t.Sequence[TraceTree],
                    taxonomy: _t.Mapping[str, tuple[str | None, ...]]
                    | None = None) -> list[str]:
    """Validate every tree against the span taxonomy.

    Returns human-readable issue strings (empty = clean): unknown span
    names, disallowed parent/child pairs, orphaned spans, and children
    whose interval escapes their parent's window.
    """
    rules = TAXONOMY if taxonomy is None else taxonomy
    issues: list[str] = []
    for tree in trees:
        prefix = f"trace {tree.trace_id}"
        if tree.root is None:
            issues.append(f"{prefix}: no root span (parent fell out of "
                          f"the span ring?)")
        for record in tree.orphans:
            issues.append(
                f"{prefix}: orphan span #{record.span} {record.name!r} "
                f"(parent #{record.parent} not in trace)")
        for node in tree.nodes:
            name = node.record.name
            allowed = rules.get(name)
            if allowed is None:
                issues.append(f"{prefix}: unknown span name {name!r} "
                              f"(span #{node.record.span})")
                continue
            if node.depth == 0:
                if None not in allowed:
                    issues.append(
                        f"{prefix}: {name!r} (span "
                        f"#{node.record.span}) must not be a root")
            for child in node.children:
                child_rules = rules.get(child.record.name)
                if child_rules is not None and name not in child_rules:
                    issues.append(
                        f"{prefix}: {child.record.name!r} (span "
                        f"#{child.record.span}) must not nest under "
                        f"{name!r}")
                if child.record.start_ms < node.record.start_ms - 1e-9 \
                        or child.record.end_ms > node.record.end_ms \
                        + 1e-9:
                    issues.append(
                        f"{prefix}: span #{child.record.span} "
                        f"{child.record.name!r} escapes its parent's "
                        f"window")
    return issues


# ----------------------------------------------------------------------
# Critical-path attribution
# ----------------------------------------------------------------------
@dataclasses.dataclass
class TraceAttribution:
    """Exact per-stage self-time decomposition of one request."""

    trace_id: int
    app: str
    source: str
    total_ms: float
    #: Stage (span name) → self time; values sum to ``total_ms``.
    self_ms: dict[str, float]
    #: How many requests this trace stands in for — 1.0 normally, the
    #: sampling rate for a 1-in-N keep under tail-based sampling
    #: (``sample.weight`` on the root span); aggregation weights every
    #: statistic by it so attribution still telescopes to fleet totals.
    weight: float = 1.0
    #: Why the sampler kept this trace (``tail``/``error``/``sampled``;
    #: empty when no sampler ran).
    sample_reason: str = ""


def attribute_tree(tree: TraceTree) -> TraceAttribution:
    """Decompose one trace into per-stage self-times.

    Sweep over the root's window: every elementary interval between
    span boundaries is attributed to the *deepest* active span (ties
    break on span id, i.e. the most recently started).  Each instant is
    counted exactly once, so the per-stage times sum to the root
    duration — even when sibling subtrees overlap in simulated time.
    """
    if tree.root is None:
        raise TelemetryError(
            f"trace {tree.trace_id} has no root span to attribute")
    root = tree.root.record
    lo, hi = root.start_ms, root.end_ms
    self_ms = {node.record.name: 0.0 for node in tree.nodes}
    cuts: set[float] = set()
    for node in tree.nodes:
        cuts.add(min(max(node.record.start_ms, lo), hi))
        cuts.add(min(max(node.record.end_ms, lo), hi))
    ordered = sorted(cuts)
    for left, right in zip(ordered, ordered[1:]):
        if right <= left:
            continue
        owner: TraceNode | None = None
        for node in tree.nodes:
            if node.record.start_ms <= left \
                    and node.record.end_ms >= right:
                if owner is None or (node.depth, node.record.span) > \
                        (owner.depth, owner.record.span):
                    owner = node
        if owner is not None:  # root always covers [lo, hi]
            self_ms[owner.record.name] += right - left
    return TraceAttribution(
        trace_id=tree.trace_id,
        app=str(root.attrs.get("app", "?")),
        source=str(root.attrs.get("source", "?")),
        total_ms=root.duration_ms,
        self_ms=self_ms,
        weight=float(_t.cast(float,
                             root.attrs.get("sample.weight", 1.0))),
        sample_reason=str(root.attrs.get("sample.reason", "")))


def _summary(samples: _t.Sequence[float],
             weights: _t.Sequence[float] | None = None,
             ) -> dict[str, float]:
    """Count/mean/percentiles, optionally weighted.

    Each weighted sample stands in for ``weight`` requests (tail-based
    sampling), so ``count`` is the total weight and mean/percentiles
    are weight-expanded.  All-unit weights dispatch to the exact
    unweighted arithmetic, keeping unsampled reports bit-identical.
    """
    if not samples:
        return {"count": 0.0}
    if weights is not None and all(w == 1.0 for w in weights):
        weights = None
    if weights is None:
        return {
            "count": float(len(samples)),
            "mean": math.fsum(samples) / len(samples),
            "p50": percentile(samples, 50.0),
            "p95": percentile(samples, 95.0),
            "p99": percentile(samples, 99.0),
            "max": max(samples),
        }
    total_weight = math.fsum(weights)
    return {
        "count": total_weight,
        "mean": math.fsum(value * weight for value, weight
                          in zip(samples, weights)) / total_weight,
        "p50": percentile(samples, 50.0, weights=weights),
        "p95": percentile(samples, 95.0, weights=weights),
        "p99": percentile(samples, 99.0, weights=weights),
        "max": max(samples),
    }


@dataclasses.dataclass
class AttributionReport:
    """Aggregated critical-path attribution across many requests."""

    #: One attribution per complete request trace.
    requests: list[TraceAttribution]
    #: Traces skipped (orphaned/incomplete or non-request roots).
    skipped: int = 0
    #: Taxonomy/orphan issues collected while building the trees.
    issues: list[str] = dataclasses.field(default_factory=list)

    def sources(self) -> list[str]:
        return sorted({attribution.source
                       for attribution in self.requests})

    def stage_samples(self, source: str = "*",
                      ) -> dict[str, list[float]]:
        """Stage → per-request self-time samples, filtered by source.

        The pseudo-stage ``total`` carries the per-request end-to-end
        latency.  ``source="*"`` merges every request path.  Under
        tail-based sampling, pair with :meth:`stage_weights` (aligned
        element-for-element) to weight the samples.
        """
        samples: dict[str, list[float]] = {}
        for attribution in self.requests:
            if source != "*" and attribution.source != source:
                continue
            samples.setdefault("total", []).append(attribution.total_ms)
            for stage in sorted(attribution.self_ms):
                samples.setdefault(stage, []).append(
                    attribution.self_ms[stage])
        return samples

    def stage_weights(self, source: str = "*",
                      ) -> dict[str, list[float]]:
        """Stage → per-request sampling weights, aligned with
        :meth:`stage_samples` (same filter, same iteration order)."""
        weights: dict[str, list[float]] = {}
        for attribution in self.requests:
            if source != "*" and attribution.source != source:
                continue
            weights.setdefault("total", []).append(attribution.weight)
            for stage in sorted(attribution.self_ms):
                weights.setdefault(stage, []).append(attribution.weight)
        return weights

    def summary(self) -> dict[str, dict[str, dict[str, float]]]:
        """``source → stage → {count, mean, p50, p95, p99, max}``.

        Weighted by each trace's sampling weight, so a 1-in-N sampled
        trace counts as N requests; unsampled runs (all weights 1) are
        bit-identical to the historical unweighted summary.
        """
        result: dict[str, dict[str, dict[str, float]]] = {}
        for source in ("*", *self.sources()):
            per_stage = self.stage_samples(source)
            per_weight = self.stage_weights(source)
            result[source] = {
                stage: _summary(per_stage[stage], per_weight[stage])
                for stage in sorted(per_stage)}
        return result

    def table(self, title: str = "critical-path latency attribution",
              ) -> ExperimentTable:
        """Per-(source, stage) self-time table, request-path order."""
        table = ExperimentTable(
            title=title,
            columns=["source", "stage", "count", "share", "mean_ms",
                     "p50_ms", "p95_ms", "p99_ms"])
        for source in self.sources():
            per_stage = self.stage_samples(source)
            per_weight = self.stage_weights(source)
            total = math.fsum(
                value * weight for value, weight
                in zip(per_stage.get("total", ()),
                       per_weight.get("total", ())))
            for stage in sorted(per_stage):
                if stage == "total":
                    continue
                stats = _summary(per_stage[stage], per_weight[stage])
                stage_sum = math.fsum(
                    value * weight for value, weight
                    in zip(per_stage[stage], per_weight[stage]))
                table.add_row(
                    source=source, stage=stage,
                    count=int(stats["count"]),
                    share=stage_sum / total if total else 0.0,
                    mean_ms=stats["mean"], p50_ms=stats["p50"],
                    p95_ms=stats["p95"], p99_ms=stats["p99"])
            stats = _summary(per_stage.get("total", ()),
                             per_weight.get("total", ()))
            if stats["count"]:
                table.add_row(source=source, stage="(end-to-end)",
                              count=int(stats["count"]), share=1.0,
                              mean_ms=stats["mean"], p50_ms=stats["p50"],
                              p95_ms=stats["p95"], p99_ms=stats["p99"])
        table.notes.append(
            f"{len(self.requests)} requests attributed, "
            f"{self.skipped} traces skipped, "
            f"{len(self.issues)} taxonomy issues")
        table.notes.append(
            "per-stage self-times: each instant belongs to the deepest "
            "active span, so stages sum exactly to end-to-end")
        weighted = math.fsum(attribution.weight
                             for attribution in self.requests)
        if weighted != float(len(self.requests)):
            table.notes.append(
                f"tail-sampled: {len(self.requests)} kept traces stand "
                f"in for {weighted:.0f} requests (stats weighted by "
                f"sample.weight)")
        return table

    def to_json_dict(self) -> dict[str, object]:
        """Deterministic JSON shape for ``BENCH_obs.json``."""
        summary = self.summary()
        return {
            "requests": len(self.requests),
            "skipped": self.skipped,
            "issues": list(self.issues),
            "stages": {
                source: {
                    stage: {key: round(value, 6)
                            for key, value in sorted(
                                summary[source][stage].items())}
                    for stage in sorted(summary[source])}
                for source in sorted(summary)},
        }


def attribute(records: _t.Sequence[SpanRecord],
              root_name: str = "request") -> AttributionReport:
    """Build the attribution report for every ``root_name`` trace."""
    trees = build_trace_trees(records)
    issues = taxonomy_issues(trees)
    requests: list[TraceAttribution] = []
    skipped = 0
    for tree in trees:
        if tree.root is None or tree.root.record.name != root_name:
            skipped += 1
            continue
        if tree.orphans:
            skipped += 1
            continue
        requests.append(attribute_tree(tree))
    return AttributionReport(requests=requests, skipped=skipped,
                             issues=issues)


# ----------------------------------------------------------------------
# Run diffing
# ----------------------------------------------------------------------
@dataclasses.dataclass
class RunData:
    """One exported run: metric records plus span records."""

    metrics: list[dict[str, object]] = dataclasses.field(
        default_factory=list)
    spans: list[SpanRecord] = dataclasses.field(default_factory=list)

    @staticmethod
    def from_telemetry(telemetry: "Telemetry") -> "RunData":
        from repro.telemetry.export import metric_records

        return RunData(metrics=metric_records(telemetry),
                       spans=records_from_telemetry(telemetry))


def load_run(path: str) -> RunData:
    """Load an exported run from a directory or a single JSONL file.

    A directory is expected to hold ``spans.jsonl`` and/or
    ``metrics.jsonl`` (the names ``repro.cli obs --export-spans/
    --export-metrics`` conventionally write).  A bare ``.jsonl`` file is
    sniffed: span records carry a ``span`` key, metric records a
    ``kind`` key.
    """
    import os

    run = RunData()
    if os.path.isdir(path):
        spans = os.path.join(path, "spans.jsonl")
        metrics = os.path.join(path, "metrics.jsonl")
        if os.path.exists(spans):
            run.spans = load_spans_jsonl(spans)
        if os.path.exists(metrics):
            run.metrics = load_metric_records(metrics)
        if not os.path.exists(spans) and not os.path.exists(metrics):
            raise TelemetryError(
                f"{path}: no spans.jsonl or metrics.jsonl inside")
        return run
    records = load_metric_records(path)
    if records and "span" in records[0]:
        run.spans = [_record_from_dict(raw) for raw in records]
    else:
        run.metrics = records
    return run


@dataclasses.dataclass(frozen=True)
class DiffEntry:
    """One diverging value between two runs."""

    #: ``metric`` | ``stage`` | ``series`` (added/removed series).
    kind: str
    key: str
    field: str
    a: float | None
    b: float | None

    @property
    def delta(self) -> float | None:
        if self.a is None or self.b is None:
            return None
        return self.b - self.a

    def render(self) -> str:
        if self.a is None:
            return f"{self.kind} {self.key} {self.field}: only in B " \
                   f"({self.b:g})"
        if self.b is None:
            return f"{self.kind} {self.key} {self.field}: only in A " \
                   f"({self.a:g})"
        return (f"{self.kind} {self.key} {self.field}: "
                f"{self.a:g} -> {self.b:g} ({self.b - self.a:+g})")


@dataclasses.dataclass
class RunDiff:
    """Every diverging value between two runs (empty = identical)."""

    entries: list[DiffEntry] = dataclasses.field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not self.entries

    def render(self) -> str:
        """One line per divergence; the empty diff renders as ``""``."""
        return "\n".join(entry.render() for entry in self.entries)


def _metric_key(record: _t.Mapping[str, object]) -> str:
    labels = _t.cast(_t.Mapping[str, object], record.get("labels", {}))
    rendered = ",".join(f"{key}={labels[key]}"
                        for key in sorted(labels))
    key = f"{record.get('name')}{{{rendered}}}"
    # Histogram series state their percentile backend in the key, so
    # an exact-mode run never diffs "equal" against a sketch-mode run:
    # same numbers from different estimators are different series.
    summary = record.get("summary")
    if isinstance(summary, _t.Mapping):
        backend = summary.get("backend")
        if backend:
            key += f"#{backend}"
    return key


def _metric_values(record: _t.Mapping[str, object],
                   ) -> dict[str, float]:
    if record.get("kind") == "histogram":
        summary = _t.cast(_t.Mapping[str, object],
                          record.get("summary", {}))
        return {key: float(_t.cast(float, summary[key]))
                for key in sorted(summary)
                if isinstance(summary[key], (int, float))}
    value = record.get("value")
    if isinstance(value, (int, float)):
        return {"value": float(value)}
    return {}


def diff_runs(run_a: RunData, run_b: RunData,
              tolerance: float = 0.0) -> RunDiff:
    """Series-by-series and stage-by-stage delta of two runs.

    ``tolerance`` is the absolute difference below which two values are
    considered equal (0.0 = byte-exact, the same-seed gate).
    """
    entries: list[DiffEntry] = []
    metrics_a = {_metric_key(record): record for record in run_a.metrics}
    metrics_b = {_metric_key(record): record for record in run_b.metrics}
    for key in sorted(set(metrics_a) | set(metrics_b)):
        in_a, in_b = metrics_a.get(key), metrics_b.get(key)
        if in_a is None or in_b is None:
            present = in_a if in_a is not None else in_b
            count = _metric_values(_t.cast(dict, present))
            probe = next(iter(sorted(count.items())),
                         ("value", 0.0))
            entries.append(DiffEntry(
                kind="series", key=key, field=probe[0],
                a=None if in_a is None else probe[1],
                b=None if in_b is None else probe[1]))
            continue
        values_a, values_b = _metric_values(in_a), _metric_values(in_b)
        for field in sorted(set(values_a) | set(values_b)):
            left = values_a.get(field)
            right = values_b.get(field)
            if left is None or right is None \
                    or abs(left - right) > tolerance:
                entries.append(DiffEntry(kind="metric", key=key,
                                         field=field, a=left, b=right))
    if run_a.spans or run_b.spans:
        summary_a = attribute(run_a.spans).summary()
        summary_b = attribute(run_b.spans).summary()
        for source in sorted(set(summary_a) | set(summary_b)):
            stages_a = summary_a.get(source, {})
            stages_b = summary_b.get(source, {})
            for stage in sorted(set(stages_a) | set(stages_b)):
                stats_a = stages_a.get(stage, {})
                stats_b = stages_b.get(stage, {})
                for field in sorted(set(stats_a) | set(stats_b)):
                    left = stats_a.get(field)
                    right = stats_b.get(field)
                    if left is None or right is None \
                            or abs(left - right) > tolerance:
                        entries.append(DiffEntry(
                            kind="stage",
                            key=f"{source}/{stage}", field=field,
                            a=left, b=right))
    return RunDiff(entries=entries)


# ----------------------------------------------------------------------
# Cross-system comparison (significance-annotated)
# ----------------------------------------------------------------------
def compare_systems(system_a: str, system_b: str,
                    seeds: _t.Sequence[int] = (0, 1, 2),
                    n_apps: int | None = None,
                    duration_s: float | None = None,
                    jobs: int = 1,
                    confidence: float = 0.95) -> ExperimentTable:
    """Paired per-seed comparison of two systems on every metric.

    Runs an axis-free sweep (``system × seed``) through the engine,
    folds it with :func:`repro.runner.reduce.fold_multiseed`, and
    annotates each metric's delta with a paired Student-t interval —
    the significance machinery the replication experiment uses.
    """
    from repro.analysis.stats import paired_comparison
    from repro.apps.workload import WorkloadConfig
    from repro.runner import ScenarioSpec, SweepEngine
    from repro.runner.reduce import common_numeric_metrics, \
        fold_multiseed

    workload_kwargs: dict[str, _t.Any] = {}
    if n_apps is not None:
        workload_kwargs["n_apps"] = n_apps
    spec = ScenarioSpec(
        name=f"diff:{system_a}-vs-{system_b}",
        systems=(system_a, system_b), seeds=tuple(seeds),
        workload=WorkloadConfig(**workload_kwargs),
        duration_s=duration_s)
    result = SweepEngine(jobs=jobs).run(spec)
    folded = fold_multiseed(result)
    samples_a = folded[system_a].samples
    samples_b = folded[system_b].samples
    table = ExperimentTable(
        title=f"run diff: {system_a} vs {system_b} "
              f"({len(seeds)} paired seeds)",
        columns=["metric", system_a, system_b, "delta", "ci_low",
                 "ci_high", "verdict"])
    for metric in common_numeric_metrics(result.cells):
        if metric not in samples_a or metric not in samples_b:
            continue
        first, second = samples_a[metric], samples_b[metric]
        if len(first) != len(second) or not first:
            continue
        mean_a = math.fsum(first) / len(first)
        mean_b = math.fsum(second) / len(second)
        if len(first) < 2:
            table.add_row(metric=metric, **{
                system_a: mean_a, system_b: mean_b},
                delta=mean_b - mean_a, ci_low=mean_b - mean_a,
                ci_high=mean_b - mean_a, verdict="n<2")
            continue
        comparison = paired_comparison(second, first,
                                       confidence=confidence)
        table.add_row(metric=metric, **{
            system_a: mean_a, system_b: mean_b},
            delta=comparison.mean_difference,
            ci_low=comparison.ci_low, ci_high=comparison.ci_high,
            verdict=("significant" if comparison.significant
                     else "inconclusive"))
    table.notes.append(
        f"delta = {system_b} - {system_a}; paired per-seed "
        f"{confidence:.0%} Student-t interval "
        f"(repro.analysis.stats.paired_comparison)")
    return table
