"""Prometheus text exposition for the live admin plane.

:func:`render_prometheus` turns a :class:`~repro.telemetry.registry.
Telemetry` registry into the Prometheus text format (version 0.0.4):
``# HELP`` / ``# TYPE`` headers, one sample line per (series, stat),
label values escaped per the exposition rules (``\\``, ``"``, newline),
and **deterministic ordering** — families sorted by exposed name,
series by label set, histogram buckets by ascending ``le`` — so two
scrapes of an idle stack are byte-identical (``tools/check.sh``
asserts this).

Metric names in this repository are dotted (``live.loop_lag_ms``);
the exposition format forbids dots, so names are sanitized (``.`` →
``_``) and the original spelling rides in a ``# SOURCE`` comment line
(standard parsers ignore unknown comments; :func:`parse_exposition`
reads it back so ``repro.cli obs --follow`` can rebuild the registry
under the original names).

Histograms render as cumulative ``le`` buckets plus ``_sum`` and
``_count``.  Exact/capped backends expose their configured bounds;
sketch-backed series expose their **gamma log-buckets** (upper bound
``gamma^i``) and carry ``backend="sketch"`` / ``alpha`` labels so a
scrape never silently mixes fidelities.

:func:`telemetry_from_exposition` is the inverse used by ``obs
--follow``: it rebuilds counters and gauges exactly and refills each
histogram series with bucket-bound synthetic samples (counts exact,
percentiles at bucket resolution), which is enough for every obs panel
and for ``diff_runs`` over exported snapshots.
"""

from __future__ import annotations

import dataclasses
import re
import typing as _t

from repro.errors import TelemetryError
from repro.telemetry.instruments import Counter, Gauge, Histogram
from repro.telemetry.registry import Telemetry

__all__ = [
    "PROM_CONTENT_TYPE",
    "MetricFamily",
    "render_prometheus",
    "parse_exposition",
    "telemetry_from_exposition",
]

#: The content-type the ``/metrics`` endpoint serves.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_name(name: str) -> str:
    """Map a dotted instrument name onto the exposition charset."""
    exposed = _INVALID_CHARS.sub("_", name)
    if not exposed or not _NAME_RE.fullmatch(exposed):
        exposed = "_" + exposed
    return exposed


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _fnum(value: float) -> str:
    """Shortest round-trip decimal for a sample value or bound."""
    if value != value:  # NaN never appears; guard anyway
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def _render_labels(labels: _t.Sequence[tuple[str, str]]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{key}="{_escape_label(value)}"'
                    for key, value in labels)
    return "{" + body + "}"


def _series_labels(key: _t.Sequence[tuple[str, str]],
                   extra: _t.Sequence[tuple[str, str]] = (),
                   ) -> list[tuple[str, str]]:
    return sorted([*key, *extra])


def render_prometheus(telemetry: Telemetry) -> str:
    """The registry as exposition text; deterministic byte-for-byte."""
    families: list[tuple[str, _t.Any]] = []
    seen: dict[str, str] = {}
    for instrument in telemetry.instruments():
        exposed = sanitize_name(instrument.name)
        clash = seen.get(exposed)
        if clash is not None:
            raise TelemetryError(
                f"exposition name collision: {instrument.name!r} and "
                f"{clash!r} both sanitize to {exposed!r}")
        seen[exposed] = instrument.name
        families.append((exposed, instrument))
    lines: list[str] = []
    for exposed, instrument in sorted(families, key=lambda item: item[0]):
        kind = ("histogram" if isinstance(instrument, Histogram)
                else instrument.kind)
        lines.append(f"# HELP {exposed} "
                     f"{_escape_help(instrument.help or exposed)}")
        lines.append(f"# TYPE {exposed} {kind}")
        if instrument.name != exposed:
            lines.append(f"# SOURCE {exposed} {instrument.name}")
        if isinstance(instrument, (Counter, Gauge)):
            for key in instrument.labelsets():
                value = instrument.value(**dict(key))
                lines.append(f"{exposed}{_render_labels(list(key))} "
                             f"{_fnum(value)}")
        elif isinstance(instrument, Histogram):
            for key in instrument.labelsets():
                rows, total, folded, backend = \
                    instrument.cumulative_rows(key)
                extra = [("backend", backend)]
                if backend == "sketch":
                    extra.append(
                        ("alpha",
                         f"{instrument.sketch_relative_error:g}"))
                series = _series_labels(key, extra)
                for bound, cumulative in rows:
                    bucket = _series_labels(series,
                                            [("le", _fnum(bound))])
                    lines.append(
                        f"{exposed}_bucket{_render_labels(bucket)} "
                        f"{cumulative}")
                inf_bucket = _series_labels(series, [("le", "+Inf")])
                lines.append(
                    f"{exposed}_bucket{_render_labels(inf_bucket)} "
                    f"{total}")
                lines.append(f"{exposed}_sum{_render_labels(series)} "
                             f"{_fnum(folded)}")
                lines.append(f"{exposed}_count{_render_labels(series)} "
                             f"{total}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Parsing (the minimal scrape-side parser)
# ----------------------------------------------------------------------
@dataclasses.dataclass
class MetricFamily:
    """One parsed family: name, kind, and its sample lines."""

    name: str
    kind: str
    help: str = ""
    #: The original dotted instrument name (``# SOURCE``), if present.
    source: str | None = None
    #: ``(sample name, labels, value)`` in exposition order.
    samples: list[tuple[str, dict[str, str], float]] = \
        dataclasses.field(default_factory=list)


def _unescape(text: str, line_no: int) -> str:
    out: list[str] = []
    index = 0
    while index < len(text):
        char = text[index]
        if char == "\\":
            if index + 1 >= len(text):
                raise TelemetryError(
                    f"exposition line {line_no}: dangling escape")
            nxt = text[index + 1]
            if nxt == "\\":
                out.append("\\")
            elif nxt == '"':
                out.append('"')
            elif nxt == "n":
                out.append("\n")
            else:
                raise TelemetryError(
                    f"exposition line {line_no}: bad escape "
                    f"\\{nxt!r}")
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def _parse_label_block(body: str, line_no: int) -> dict[str, str]:
    labels: dict[str, str] = {}
    index = 0
    while index < len(body):
        match = _NAME_RE.match(body, index)
        if match is None:
            raise TelemetryError(
                f"exposition line {line_no}: bad label name at "
                f"{body[index:]!r}")
        name = match.group(0)
        index = match.end()
        if body[index:index + 2] != '="':
            raise TelemetryError(
                f"exposition line {line_no}: label {name!r} missing "
                f'="')
        index += 2
        value_chars: list[str] = []
        while index < len(body):
            char = body[index]
            if char == "\\":
                value_chars.append(body[index:index + 2])
                index += 2
                continue
            if char == '"':
                break
            value_chars.append(char)
            index += 1
        else:
            raise TelemetryError(
                f"exposition line {line_no}: unterminated label value")
        labels[name] = _unescape("".join(value_chars), line_no)
        index += 1  # closing quote
        if index < len(body):
            if body[index] != ",":
                raise TelemetryError(
                    f"exposition line {line_no}: expected ',' between "
                    f"labels")
            index += 1
    return labels


def _parse_value(text: str, line_no: int) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    try:
        return float(text)
    except ValueError:
        raise TelemetryError(
            f"exposition line {line_no}: bad sample value {text!r}")


_SUFFIXES = ("_bucket", "_sum", "_count")


def parse_exposition(text: str) -> list[MetricFamily]:
    """Parse exposition text, validating every line and the ordering.

    Raises :class:`TelemetryError` on any malformed line, a sample
    outside its family, or families out of sorted order — the contract
    the ``tools/check.sh`` admin-plane stage scrapes against.
    """
    families: list[MetricFamily] = []
    current: MetricFamily | None = None
    pending_help: tuple[str, str] | None = None
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP "):]
            name, _, help_text = rest.partition(" ")
            if not _NAME_RE.fullmatch(name):
                raise TelemetryError(
                    f"exposition line {line_no}: bad HELP name "
                    f"{name!r}")
            pending_help = (name, _unescape(help_text, line_no))
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE "):]
            parts = rest.split(" ")
            if len(parts) != 2 or parts[1] not in (
                    "counter", "gauge", "histogram"):
                raise TelemetryError(
                    f"exposition line {line_no}: bad TYPE {rest!r}")
            name, kind = parts
            help_text = ""
            if pending_help is not None and pending_help[0] == name:
                help_text = pending_help[1]
            pending_help = None
            if families and families[-1].name >= name:
                raise TelemetryError(
                    f"exposition line {line_no}: family {name!r} out "
                    f"of sorted order after {families[-1].name!r}")
            current = MetricFamily(name=name, kind=kind, help=help_text)
            families.append(current)
            continue
        if line.startswith("# SOURCE "):
            rest = line[len("# SOURCE "):]
            name, _, source = rest.partition(" ")
            if current is None or current.name != name or not source:
                raise TelemetryError(
                    f"exposition line {line_no}: SOURCE outside its "
                    f"family")
            current.source = source
            continue
        if line.startswith("#"):
            continue  # other comments are legal and ignored
        match = _NAME_RE.match(line)
        if match is None:
            raise TelemetryError(
                f"exposition line {line_no}: unparseable line "
                f"{line!r}")
        sample_name = match.group(0)
        rest = line[match.end():]
        labels: dict[str, str] = {}
        if rest.startswith("{"):
            closing = _find_label_end(rest, line_no)
            labels = _parse_label_block(rest[1:closing], line_no)
            rest = rest[closing + 1:]
        if not rest.startswith(" "):
            raise TelemetryError(
                f"exposition line {line_no}: missing value separator")
        value = _parse_value(rest.strip(), line_no)
        if current is None:
            raise TelemetryError(
                f"exposition line {line_no}: sample before any TYPE")
        base = sample_name
        if current.kind == "histogram":
            for suffix in _SUFFIXES:
                if sample_name.endswith(suffix):
                    base = sample_name[:-len(suffix)]
                    break
            else:
                raise TelemetryError(
                    f"exposition line {line_no}: histogram sample "
                    f"{sample_name!r} lacks a "
                    f"_bucket/_sum/_count suffix")
        if base != current.name:
            raise TelemetryError(
                f"exposition line {line_no}: sample {sample_name!r} "
                f"outside family {current.name!r}")
        current.samples.append((sample_name, labels, value))
    return families


def _find_label_end(rest: str, line_no: int) -> int:
    """Index of the ``}`` closing the label block at ``rest[0] == '{'``."""
    index = 1
    in_quotes = False
    while index < len(rest):
        char = rest[index]
        if in_quotes:
            if char == "\\":
                index += 2
                continue
            if char == '"':
                in_quotes = False
        elif char == '"':
            in_quotes = True
        elif char == "}":
            return index
        index += 1
    raise TelemetryError(
        f"exposition line {line_no}: unterminated label block")


# ----------------------------------------------------------------------
# Reconstruction (obs --follow)
# ----------------------------------------------------------------------
def telemetry_from_exposition(text: str) -> Telemetry:
    """Rebuild a registry from a ``/metrics`` scrape.

    Counters and gauges round-trip exactly.  Histogram series are
    refilled with synthetic samples at their bucket upper bounds —
    counts are exact, sums and percentiles carry bucket resolution —
    which is all the obs panels and ``diff_runs`` need from a scrape.
    """
    telemetry = Telemetry()
    for family in parse_exposition(text):
        name = family.source or family.name
        if family.kind == "counter":
            counter = telemetry.counter(name, help=family.help)
            for _sample, labels, value in family.samples:
                counter.inc(value, **labels)
        elif family.kind == "gauge":
            gauge = telemetry.gauge(name, help=family.help)
            for _sample, labels, value in family.samples:
                gauge.set(value, **labels)
        else:
            _rebuild_histogram(telemetry, name, family)
    return telemetry


def _rebuild_histogram(telemetry: Telemetry, name: str,
                       family: MetricFamily) -> None:
    SeriesKey = tuple[tuple[str, str], ...]
    buckets: dict[SeriesKey, dict[float, float]] = {}
    counts: dict[SeriesKey, float] = {}
    bounds: set[float] = set()
    # ``backend``/``alpha`` are exposition metadata stamped by the
    # renderer, not user labels — keeping them would double up on the
    # next render (the rebuilt series gets its own backend tag).
    synthetic = ("le", "backend", "alpha")
    for sample_name, labels, value in family.samples:
        series = tuple(sorted((key, val) for key, val in labels.items()
                              if key not in synthetic))
        if sample_name.endswith("_bucket"):
            bound = _parse_value(labels.get("le", "+Inf"), 0)
            buckets.setdefault(series, {})[bound] = value
            if bound != float("inf"):
                bounds.add(bound)
        elif sample_name.endswith("_count"):
            counts[series] = value
        # _sum is informational; synthetic refill recomputes it.
    if not bounds:
        telemetry.histogram(name, help=family.help)
        return
    ordered = sorted(bounds)
    histogram = telemetry.histogram(name, help=family.help,
                                    buckets=ordered)
    overflow = ordered[-1] * 2.0 + 1.0
    for series in sorted(buckets):
        labels = dict(series)
        cumulative = 0.0
        for bound in ordered:
            reading = buckets[series].get(bound)
            if reading is None:
                continue
            for _ in range(int(reading - cumulative)):
                histogram.observe(bound, **labels)
            cumulative = reading
        total = counts.get(series,
                           buckets[series].get(float("inf"), cumulative))
        for _ in range(int(total - cumulative)):
            histogram.observe(overflow, **labels)
