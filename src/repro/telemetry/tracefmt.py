"""Chrome trace-event export: view span trees in Perfetto.

Converts exported span records into the Trace Event Format JSON that
``chrome://tracing`` and https://ui.perfetto.dev consume: every finished
span becomes one ``"X"`` (complete) event with microsecond ``ts``/
``dur``, grouped onto one track (``tid``) per trace so each request
reads as a waterfall.  Output is deterministic — events are sorted by
(trace, span), JSON is emitted with sorted keys and fixed separators —
so the golden-file test and the check.sh smoke can byte-compare dumps.
"""

from __future__ import annotations

import json
import typing as _t

from repro.telemetry.analysis import SpanRecord

__all__ = ["chrome_trace_events", "chrome_trace_json",
           "write_chrome_trace"]

#: Every span renders into the one simulated process.
_PID = 1


def chrome_trace_events(records: _t.Sequence[SpanRecord],
                        ) -> list[dict[str, object]]:
    """Trace Event Format event dicts for the given span records.

    One metadata pair names the process and each per-trace track, then
    one ``"X"`` complete event per span (``ts``/``dur`` in integer
    microseconds of simulated time).  Span/parent ids and attributes
    ride along in ``args`` so Perfetto's selection panel shows them.
    """
    events: list[dict[str, object]] = [{
        "ph": "M", "pid": _PID, "tid": 0, "name": "process_name",
        "args": {"name": "repro simulated testbed"},
    }]
    ordered = sorted(records,
                     key=lambda record: (record.trace, record.span))
    named: set[int] = set()
    for record in ordered:
        if record.trace not in named:
            named.add(record.trace)
            label = f"trace {record.trace}"
            if record.parent is None and "app" in record.attrs:
                label += f" ({record.attrs['app']})"
            # Under tail-based sampling a kept trace may stand in for
            # N requests; say so on the track label so a Perfetto
            # window of 50 traces is read as the 5000 it represents.
            weight = record.attrs.get("sample.weight")
            if record.parent is None and isinstance(
                    weight, (int, float)) and weight != 1.0:
                label += f" ×{weight:g}"
            events.append({
                "ph": "M", "pid": _PID, "tid": record.trace,
                "name": "thread_name", "args": {"name": label},
            })
        args: dict[str, object] = {
            "span": record.span,
            "parent": record.parent,
            "status": record.status,
        }
        for key in sorted(record.attrs):
            args[f"attr.{key}"] = record.attrs[key]
        events.append({
            "ph": "X",
            "pid": _PID,
            "tid": record.trace,
            "name": record.name,
            "cat": "span",
            "ts": round(record.start_ms * 1000),
            "dur": round(record.duration_ms * 1000),
            "args": args,
        })
    return events


def chrome_trace_json(records: _t.Sequence[SpanRecord]) -> str:
    """The full Trace Event Format document as a deterministic string."""
    document = {
        "displayTimeUnit": "ms",
        "traceEvents": chrome_trace_events(records),
    }
    return json.dumps(document, sort_keys=True, separators=(",", ":"),
                      default=str)


def write_chrome_trace(records: _t.Sequence[SpanRecord],
                       path: str) -> int:
    """Write the trace document to ``path``; returns the span count."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(chrome_trace_json(records) + "\n")
    return len(records)
