"""A deterministic log-bucketed quantile sketch (DDSketch-style).

:class:`QuantileSketch` summarizes a stream of non-negative samples in
**fixed memory** while answering quantile queries with a configurable
*relative*-error bound: for any q, the returned value ``v̂`` satisfies
``|v̂ - v| <= relative_error * v`` where ``v`` is the true sample at
that rank.  The trick is logarithmic bucketing — sample ``x`` lands in
bucket ``ceil(log_gamma(x))`` with ``gamma = (1 + α) / (1 - α)`` — so
every bucket's midpoint is within ``α`` (relative) of everything the
bucket holds, and a quantile query only has to walk bucket counts to
the requested rank.

Design properties the fleet roll-up relies on (docs/telemetry.md):

* **Fixed memory** — bucket count grows with the *dynamic range* of the
  data (log of max/min), never with the sample count.  Sub-millisecond
  to multi-minute latencies fit in a few hundred buckets at α = 1%.
* **Exact count/sum/min/max** — only the quantiles are approximate.
* **Mergeable** — :meth:`merge` adds bucket counts; merging shard
  sketches in any order yields the same bucket multiset, and
  :meth:`state_dict` renders it sorted, so shard-merged exports are
  byte-identical regardless of merge order.  Sums are folded with
  :func:`math.fsum` over the flat list of per-shard contributions
  (``fsum`` computes the exact sum and rounds once, so it is
  independent of term order).
* **Deterministic** — no randomness anywhere; two same-seed runs (or
  any two merge orders over the same shards) produce identical state.
"""

from __future__ import annotations

import math
import typing as _t

from repro.errors import TelemetryError

__all__ = ["QuantileSketch", "DEFAULT_RELATIVE_ERROR"]

#: Default quantile relative-error bound (1%): p99 = 100 ms is reported
#: within [99 ms, 101 ms].
DEFAULT_RELATIVE_ERROR = 0.01

#: Samples below this are indistinguishable from zero (they share one
#: exact "zero bucket"); sim latencies are far above it.
_MIN_TRACKABLE = 1e-9


class QuantileSketch:
    """Fixed-memory quantile summary with a relative-error guarantee."""

    __slots__ = ("relative_error", "_gamma", "_log_gamma", "_buckets",
                 "_zero_count", "_count", "_min", "_max", "_sum_terms",
                 "_sum_local")

    def __init__(self, relative_error: float = DEFAULT_RELATIVE_ERROR,
                 ) -> None:
        if not 0.0 < relative_error < 1.0:
            raise TelemetryError(
                f"sketch relative_error must be in (0, 1), "
                f"got {relative_error!r}")
        self.relative_error = relative_error
        self._gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._log_gamma = math.log(self._gamma)
        #: Bucket index -> sample count; index i covers
        #: (gamma^(i-1), gamma^i].
        self._buckets: dict[int, int] = {}
        self._zero_count = 0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf
        #: Locally accumulated sum plus one term per merged-in shard;
        #: reads fold the flat term list with fsum (order-independent).
        self._sum_local = 0.0
        self._sum_terms: list[float] = []

    # -- recording ------------------------------------------------------
    def add(self, value: float) -> None:
        """Record one sample (non-negative; latencies in sim-ms)."""
        if value < 0.0:
            raise TelemetryError(
                f"sketch samples must be non-negative, got {value!r}")
        if value < _MIN_TRACKABLE:
            self._zero_count += 1
        else:
            index = math.ceil(math.log(value) / self._log_gamma)
            self._buckets[index] = self._buckets.get(index, 0) + 1
        self._count += 1
        self._sum_local += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    # -- exact aggregates -----------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        """Exact sum, order-independent across merges (fsum of terms)."""
        if not self._sum_terms:
            return self._sum_local
        return math.fsum([self._sum_local, *self._sum_terms])

    @property
    def min(self) -> float:
        if not self._count:
            raise TelemetryError("sketch is empty")
        return self._min

    @property
    def max(self) -> float:
        if not self._count:
            raise TelemetryError("sketch is empty")
        return self._max

    def __len__(self) -> int:
        return self._count

    @property
    def bucket_count(self) -> int:
        """Distinct log-buckets in use (the memory footprint)."""
        return len(self._buckets) + (1 if self._zero_count else 0)

    # -- quantiles ------------------------------------------------------
    def quantile(self, q: float) -> float:
        """The q-th percentile (q in [0, 100]), within the error bound.

        Uses the nearest-rank convention over bucket counts; the
        returned bucket midpoint ``2·γ^i / (γ + 1)`` is within
        ``relative_error`` of every sample the bucket holds, and q = 0 /
        q = 100 return the exact min/max.
        """
        if not self._count:
            raise TelemetryError("quantile of an empty sketch")
        if not 0.0 <= q <= 100.0:
            raise TelemetryError(f"q must be within [0, 100], got {q}")
        if q == 0.0:
            return self._min
        if q == 100.0:
            return self._max
        rank = max(1, math.ceil(q / 100.0 * self._count))
        if rank <= self._zero_count:
            return 0.0
        remaining = rank - self._zero_count
        for index in sorted(self._buckets):
            remaining -= self._buckets[index]
            if remaining <= 0:
                midpoint = (2.0 * self._gamma ** index
                            / (self._gamma + 1.0))
                # The estimate never escapes the observed range.
                return min(max(midpoint, self._min), self._max)
        return self._max  # pragma: no cover - rank <= count always hits

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Ascending ``(upper_bound, cumulative_count)`` rows.

        The exposition-format view of the sketch: each log-bucket i
        becomes a cumulative bucket with upper bound ``gamma^i`` (its
        exact inclusive upper edge); the zero bucket, when populated,
        leads with upper bound ``_MIN_TRACKABLE``.  Counts are exact —
        only the bound placement carries the sketch's relative error.
        """
        rows: list[tuple[float, int]] = []
        cumulative = 0
        if self._zero_count:
            cumulative = self._zero_count
            rows.append((_MIN_TRACKABLE, cumulative))
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            rows.append((self._gamma ** index, cumulative))
        return rows

    # -- merging --------------------------------------------------------
    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold another sketch into this one (in place); returns self.

        Bucket counts are integers, so the merged multiset — and hence
        every quantile — is independent of merge order; sums are kept as
        a flat term list folded with fsum on read, so the exported sum
        is byte-identical regardless of shard order too.
        """
        if other.relative_error != self.relative_error:
            raise TelemetryError(
                f"cannot merge sketches with different error bounds "
                f"({self.relative_error} vs {other.relative_error})")
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self._zero_count += other._zero_count
        self._count += other._count
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        if other._sum_local or not other._sum_terms:
            self._sum_terms.append(other._sum_local)
        self._sum_terms.extend(other._sum_terms)
        return self

    # -- serialization --------------------------------------------------
    def state_dict(self) -> dict[str, object]:
        """JSON-able full state; the shard hand-off format.

        The sum-term list is canonicalized (sorted, exact zeros
        dropped) so the same term multiset always renders to the same
        bytes regardless of the order shards were merged in.
        """
        return {
            "relative_error": self.relative_error,
            "count": self._count,
            "zero_count": self._zero_count,
            "sum_terms": sorted(
                term for term in [self._sum_local, *self._sum_terms]
                if term != 0.0),
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
            "buckets": {str(index): self._buckets[index]
                        for index in sorted(self._buckets)},
        }

    @classmethod
    def from_state(cls, state: _t.Mapping[str, object],
                   ) -> "QuantileSketch":
        sketch = cls(relative_error=_t.cast(
            float, state["relative_error"]))
        sketch._count = int(_t.cast(int, state["count"]))
        sketch._zero_count = int(_t.cast(int, state["zero_count"]))
        terms = [float(term) for term in
                 _t.cast(list, state["sum_terms"])]
        sketch._sum_local = terms[0] if terms else 0.0
        sketch._sum_terms = terms[1:]
        if state["min"] is not None:
            sketch._min = float(_t.cast(float, state["min"]))
        if state["max"] is not None:
            sketch._max = float(_t.cast(float, state["max"]))
        sketch._buckets = {
            int(index): int(count)
            for index, count in _t.cast(
                dict, state["buckets"]).items()}
        return sketch

    def __repr__(self) -> str:
        return (f"<QuantileSketch n={self._count} "
                f"buckets={self.bucket_count} "
                f"alpha={self.relative_error}>")
