"""Metric instruments: counters, gauges, and fixed-bucket histograms.

Every instrument supports **labels** — `counter.inc(app="maps",
outcome="hit")` keeps one value per distinct label set — so the paper's
per-app/per-tier/per-outcome breakdowns fall out of one instrument
instead of a bag of ad-hoc name-mangled series.  Label sets are stored
as sorted tuples, which makes aggregation and export order
deterministic regardless of call order.

Histograms record latency-style samples against fixed bucket upper
bounds (sim-milliseconds by default) *and* retain the raw samples, so
percentiles are exact (computed through
:func:`repro.sim.monitor.percentile` — the repository's one percentile
implementation) rather than bucket-interpolated.

Retained samples are bounded: pass ``max_samples`` to cap how many raw
samples each label set keeps (percentiles are *exact until the cap*,
then computed over the first ``max_samples`` observations, with
bucket counts/sum/count staying exact forever).  Drops are counted per
instrument and surfaced through the registry's
``telemetry.samples_dropped`` counter, so a million-request run cannot
silently degrade its percentiles — see docs/telemetry.md.
"""

from __future__ import annotations

import math
import typing as _t

from repro.errors import TelemetryError
from repro.sim.monitor import percentile

__all__ = ["Counter", "Gauge", "Histogram", "Instrument", "LabelSet",
           "DEFAULT_LATENCY_BUCKETS_MS", "labelset"]

#: One label set: ``(("app", "maps"), ("outcome", "hit"))``.
LabelSet = tuple[tuple[str, str], ...]

#: Default histogram bucket upper bounds, in simulated milliseconds.
#: Spans the paper's operating range: ~1 ms WiFi hops, ~7 ms AP hits,
#: ~30 ms edge retrievals, and multi-hundred-ms origin misses.
DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.5, 1.0, 2.0, 3.0, 5.0, 7.5, 10.0, 15.0, 20.0, 30.0, 50.0,
    75.0, 100.0, 150.0, 250.0, 500.0, 1000.0)


def labelset(labels: _t.Mapping[str, object]) -> LabelSet:
    """Normalize keyword labels into the canonical sorted-tuple form."""
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class Instrument:
    """Common base: a named, labelled measurement device."""

    kind: str = "abstract"

    def __init__(self, name: str, help: str = "") -> None:
        if not name:
            raise TelemetryError("instrument name must be non-empty")
        self.name = name
        self.help = help

    def labelsets(self) -> list[LabelSet]:
        """Every label set this instrument has recorded, sorted."""
        raise NotImplementedError  # pragma: no cover - abstract

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class Counter(Instrument):
    """A monotonically increasing count, one value per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[LabelSet, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name}: negative increment {amount!r}")
        key = () if not labels else labelset(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """The count recorded under exactly these labels."""
        key = () if not labels else labelset(labels)
        return self._values.get(key, 0.0)

    def total(self, **labels: object) -> float:
        """Sum across every label set matching the given subset."""
        match = () if not labels else labelset(labels)
        return math.fsum(value for key, value in self._values.items()
                         if set(match) <= set(key))

    def labelsets(self) -> list[LabelSet]:
        return sorted(self._values)


class Gauge(Instrument):
    """A point-in-time value (bytes used, entries cached, ...)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[LabelSet, float] = {}

    def set(self, value: float, **labels: object) -> None:
        key = () if not labels else labelset(labels)
        self._values[key] = float(value)

    def add(self, delta: float, **labels: object) -> None:
        key = () if not labels else labelset(labels)
        self._values[key] = self._values.get(key, 0.0) + delta

    def value(self, **labels: object) -> float:
        key = () if not labels else labelset(labels)
        return self._values.get(key, 0.0)

    def labelsets(self) -> list[LabelSet]:
        return sorted(self._values)


class _HistogramState:
    """Per-label-set histogram storage."""

    __slots__ = ("bucket_counts", "samples", "sum", "dropped")

    def __init__(self, n_buckets: int) -> None:
        #: One count per configured bucket, plus a final +inf bucket.
        self.bucket_counts = [0] * (n_buckets + 1)
        self.samples: list[float] = []
        self.sum = 0.0
        #: Observations not retained as raw samples (max_samples cap).
        self.dropped = 0


class Histogram(Instrument):
    """Fixed-bucket distribution with exact sample-based percentiles.

    ``buckets`` are inclusive upper bounds in ascending order; one
    implicit ``+inf`` bucket catches overflows.  The raw samples are
    retained, so :meth:`percentile` is exact (linear interpolation over
    the sorted samples), matching the paper's reported p50/p95/p99.

    ``max_samples`` bounds the retained raw samples *per label set*:
    past the cap, bucket counts, ``count`` and ``sum`` stay exact while
    further samples are dropped (percentiles become
    first-``max_samples``-exact) and ``on_drop`` — if set — is invoked
    once per dropped sample so the registry can count drops.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: _t.Sequence[float] | None = None,
                 max_samples: int | None = None,
                 on_drop: _t.Callable[[str], None] | None = None) -> None:
        super().__init__(name, help)
        bounds = tuple(buckets if buckets is not None
                       else DEFAULT_LATENCY_BUCKETS_MS)
        if not bounds:
            raise TelemetryError(f"histogram {name}: no buckets")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise TelemetryError(
                f"histogram {name}: buckets must be strictly increasing, "
                f"got {bounds}")
        if max_samples is not None and max_samples < 1:
            raise TelemetryError(
                f"histogram {name}: max_samples must be >= 1, "
                f"got {max_samples}")
        self.buckets = bounds
        self.max_samples = max_samples
        self._on_drop = on_drop
        self._states: dict[LabelSet, _HistogramState] = {}

    # -- recording ------------------------------------------------------
    def observe(self, value: float, **labels: object) -> None:
        key = () if not labels else labelset(labels)
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _HistogramState(len(self.buckets))
        state.bucket_counts[self._bucket_index(value)] += 1
        state.sum += value
        if self.max_samples is not None \
                and len(state.samples) >= self.max_samples:
            state.dropped += 1
            if self._on_drop is not None:
                self._on_drop(self.name)
        else:
            state.samples.append(value)

    def _bucket_index(self, value: float) -> int:
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                return index
        return len(self.buckets)

    # -- aggregation ----------------------------------------------------
    def _matching(self, labels: _t.Mapping[str, object],
                  ) -> list[_HistogramState]:
        """States whose label set contains ``labels`` as a subset."""
        match = set(labelset(labels))
        return [state for key, state in sorted(self._states.items())
                if match <= set(key)]

    def samples(self, **labels: object) -> list[float]:
        """Raw samples across every label set matching the subset."""
        collected: list[float] = []
        for state in self._matching(labels):
            collected.extend(state.samples)
        return collected

    def count(self, **labels: object) -> int:
        """Total observations, including samples dropped at the cap."""
        return sum(len(state.samples) + state.dropped
                   for state in self._matching(labels))

    def dropped(self, **labels: object) -> int:
        """Observations not retained as raw samples (max_samples cap)."""
        return sum(state.dropped for state in self._matching(labels))

    def sum(self, **labels: object) -> float:
        return math.fsum(state.sum for state in self._matching(labels))

    def mean(self, **labels: object) -> float:
        count = self.count(**labels)
        if not count:
            raise TelemetryError(f"histogram {self.name} is empty")
        return self.sum(**labels) / count

    def percentile(self, q: float, **labels: object) -> float:
        """Exact percentile over the matching raw samples."""
        values = self.samples(**labels)
        if not values:
            raise TelemetryError(f"histogram {self.name} is empty")
        return percentile(values, q)

    def bucket_counts(self, **labels: object) -> list[int]:
        """Per-bucket counts (last entry is the +inf overflow bucket)."""
        totals = [0] * (len(self.buckets) + 1)
        for state in self._matching(labels):
            for index, count in enumerate(state.bucket_counts):
                totals[index] += count
        return totals

    def labelsets(self) -> list[LabelSet]:
        return sorted(self._states)

    def summary(self, **labels: object) -> dict[str, float]:
        """count/mean/p50/p95/p99/max over the matching samples.

        ``count`` and ``mean`` cover *every* observation (exact past the
        cap); the percentiles and ``max`` come from the retained
        samples.  A ``samples_dropped`` key appears only once the
        ``max_samples`` cap has actually dropped something, keeping
        uncapped exports byte-identical to the pre-cap format.
        """
        values = self.samples(**labels)
        if not values:
            return {"count": 0.0}
        count = self.count(**labels)
        dropped = self.dropped(**labels)
        summary = {
            "count": float(count),
            "mean": (self.sum(**labels) / count if dropped
                     else math.fsum(values) / len(values)),
            "p50": percentile(values, 50.0),
            "p95": percentile(values, 95.0),
            "p99": percentile(values, 99.0),
            "max": max(values),
        }
        if dropped:
            summary["samples_dropped"] = float(dropped)
        return summary
