"""Metric instruments: counters, gauges, and fixed-bucket histograms.

Every instrument supports **labels** — `counter.inc(app="maps",
outcome="hit")` keeps one value per distinct label set — so the paper's
per-app/per-tier/per-outcome breakdowns fall out of one instrument
instead of a bag of ad-hoc name-mangled series.  Label sets are stored
as sorted tuples, which makes aggregation and export order
deterministic regardless of call order.

Histograms record latency-style samples against fixed bucket upper
bounds (sim-milliseconds by default) and come in two **backends**:

* ``backend="exact"`` retains the raw samples, so percentiles are exact
  (computed through :func:`repro.sim.monitor.percentile` — the
  repository's one percentile implementation).  Pass ``max_samples`` to
  cap how many raw samples each label set keeps (percentiles are
  *exact until the cap*, then computed over the first ``max_samples``
  observations, with bucket counts/sum/count staying exact forever).
  Drops are counted per instrument and surfaced through the registry's
  ``telemetry.samples_dropped`` counter, so a million-request run
  cannot silently degrade its percentiles — see docs/telemetry.md.
* ``backend="sketch"`` summarizes each label set in a fixed-memory
  :class:`~repro.telemetry.sketch.QuantileSketch` instead: percentiles
  carry a configurable relative-error bound while count/sum/min/max
  stay exact and memory stops growing with the sample count — the
  fleet-scale backend.

Every instrument is **mergeable**: :meth:`Instrument.merge` folds a
shard's state into this one, and :meth:`state_dict` /
:meth:`merge_state` round-trip the same fold through JSON for
cross-process hand-off (sweep workers, per-AP fleet shards).  The merge
is associative and commutative, and all float accumulation is kept as
flat per-shard term lists folded with :func:`math.fsum` at read time
(exact summation, rounded once), so merged exports are byte-identical
regardless of shard order — the contract docs/telemetry.md specifies
and ``tests/telemetry/test_merge.py`` property-checks.
"""

from __future__ import annotations

import json
import math
import typing as _t

from repro.errors import TelemetryError
from repro.sim.monitor import percentile
from repro.telemetry.sketch import DEFAULT_RELATIVE_ERROR, QuantileSketch

__all__ = ["Counter", "Gauge", "Histogram", "Instrument", "LabelSet",
           "DEFAULT_LATENCY_BUCKETS_MS", "HISTOGRAM_BACKENDS", "labelset"]

#: One label set: ``(("app", "maps"), ("outcome", "hit"))``.
LabelSet = tuple[tuple[str, str], ...]

#: Default histogram bucket upper bounds, in simulated milliseconds.
#: Spans the paper's operating range: ~1 ms WiFi hops, ~7 ms AP hits,
#: ~30 ms edge retrievals, and multi-hundred-ms origin misses.
DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.5, 1.0, 2.0, 3.0, 5.0, 7.5, 10.0, 15.0, 20.0, 30.0, 50.0,
    75.0, 100.0, 150.0, 250.0, 500.0, 1000.0)

#: The selectable histogram storage strategies.
HISTOGRAM_BACKENDS = ("exact", "sketch")


def labelset(labels: _t.Mapping[str, object]) -> LabelSet:
    """Normalize keyword labels into the canonical sorted-tuple form."""
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def _encode_labelset(key: LabelSet) -> str:
    """Canonical JSON key for one label set (sorted, so unambiguous)."""
    return json.dumps([list(pair) for pair in key],
                      separators=(",", ":"))


def _decode_labelset(text: str) -> LabelSet:
    return tuple((str(key), str(value)) for key, value in json.loads(text))


class Instrument:
    """Common base: a named, labelled measurement device."""

    kind: str = "abstract"

    def __init__(self, name: str, help: str = "") -> None:
        if not name:
            raise TelemetryError("instrument name must be non-empty")
        self.name = name
        self.help = help

    def labelsets(self) -> list[LabelSet]:
        """Every label set this instrument has recorded, sorted."""
        raise NotImplementedError  # pragma: no cover - abstract

    def state_dict(self) -> dict[str, object]:
        """JSON-able full state: the cross-process shard hand-off."""
        raise NotImplementedError  # pragma: no cover - abstract

    def merge_state(self, state: _t.Mapping[str, object]) -> None:
        """Fold a :meth:`state_dict` shard into this instrument."""
        raise NotImplementedError  # pragma: no cover - abstract

    def merge(self, other: "Instrument") -> "Instrument":
        """Fold another instrument's state into this one; returns self.

        Implemented through the state round-trip so in-process and
        cross-process merges are one code path (and provably agree).
        """
        self._check_mergeable(other)
        self.merge_state(other.state_dict())
        return self

    def _check_mergeable(self, other: "Instrument") -> None:
        if type(other) is not type(self) or other.kind != self.kind:
            raise TelemetryError(
                f"cannot merge {other.kind} {other.name!r} into "
                f"{self.kind} {self.name!r}")
        if other.name != self.name:
            raise TelemetryError(
                f"cannot merge instrument {other.name!r} into "
                f"{self.name!r}: names differ")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class Counter(Instrument):
    """A monotonically increasing count, one value per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[LabelSet, float] = {}
        #: Per-shard contributions folded in by merges; reads fsum the
        #: local value plus these terms, so the folded value does not
        #: depend on merge order.
        self._foreign: dict[LabelSet, list[float]] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name}: negative increment {amount!r}")
        key = () if not labels else labelset(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def _folded(self, key: LabelSet) -> float:
        local = self._values.get(key, 0.0)
        terms = self._foreign.get(key)
        if not terms:
            return local
        return math.fsum([local, *terms])

    def value(self, **labels: object) -> float:
        """The count recorded under exactly these labels."""
        key = () if not labels else labelset(labels)
        return self._folded(key)

    def total(self, **labels: object) -> float:
        """Sum across every label set matching the given subset."""
        match = () if not labels else labelset(labels)
        return math.fsum(self._folded(key) for key in self.labelsets()
                         if set(match) <= set(key))

    def labelsets(self) -> list[LabelSet]:
        return sorted(set(self._values) | set(self._foreign))

    def state_dict(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "help": self.help,
            "values": _canonical_terms(self._values, self._foreign),
        }

    def merge_state(self, state: _t.Mapping[str, object]) -> None:
        for encoded, terms in _t.cast(
                dict, state.get("values", {})).items():
            key = _decode_labelset(encoded)
            self._foreign.setdefault(key, []).extend(
                float(term) for term in terms)


def _canonical_terms(values: dict[LabelSet, float],
                     foreign: dict[LabelSet, list[float]],
                     ) -> dict[str, list[float]]:
    """Per-label term lists, canonicalized (sorted, exact zeros
    dropped) so the same term multiset always exports to the same
    bytes regardless of merge order; fsum is unaffected by both."""
    out: dict[str, list[float]] = {}
    for key in sorted(set(values) | set(foreign)):
        terms = [values[key]] if key in values else []
        terms.extend(foreign.get(key, ()))
        out[_encode_labelset(key)] = sorted(
            term for term in terms if term != 0.0)
    return out


class Gauge(Instrument):
    """A point-in-time value (bytes used, entries cached, ...).

    Merging gauges **sums** per-label values across shards — the fleet
    reading of "total bytes cached across all APs".  Give shards
    distinct labels (``ap=ap3``) when a sum would be meaningless.
    """

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[LabelSet, float] = {}
        self._foreign: dict[LabelSet, list[float]] = {}

    def set(self, value: float, **labels: object) -> None:
        key = () if not labels else labelset(labels)
        self._values[key] = float(value)

    def add(self, delta: float, **labels: object) -> None:
        key = () if not labels else labelset(labels)
        self._values[key] = self._values.get(key, 0.0) + delta

    def value(self, **labels: object) -> float:
        key = () if not labels else labelset(labels)
        local = self._values.get(key, 0.0)
        terms = self._foreign.get(key)
        if not terms:
            return local
        return math.fsum([local, *terms])

    def labelsets(self) -> list[LabelSet]:
        return sorted(set(self._values) | set(self._foreign))

    def state_dict(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "help": self.help,
            "values": _canonical_terms(self._values, self._foreign),
        }

    def merge_state(self, state: _t.Mapping[str, object]) -> None:
        for encoded, terms in _t.cast(
                dict, state.get("values", {})).items():
            key = _decode_labelset(encoded)
            self._foreign.setdefault(key, []).extend(
                float(term) for term in terms)


class _HistogramState:
    """Per-label-set histogram storage."""

    __slots__ = ("bucket_counts", "samples", "sum", "sum_terms",
                 "dropped", "sketch")

    def __init__(self, n_buckets: int,
                 sketch_relative_error: float | None = None) -> None:
        #: One count per configured bucket, plus a final +inf bucket.
        self.bucket_counts = [0] * (n_buckets + 1)
        self.samples: list[float] = []
        self.sum = 0.0
        #: Per-shard sum contributions from merges (fsum'd on read).
        self.sum_terms: list[float] = []
        #: Observations not retained as raw samples (max_samples cap).
        self.dropped = 0
        #: The fixed-memory quantile summary (sketch backend only).
        self.sketch = (None if sketch_relative_error is None
                       else QuantileSketch(sketch_relative_error))

    def folded_sum(self) -> float:
        if self.sketch is not None:
            return self.sketch.sum
        if not self.sum_terms:
            return self.sum
        return math.fsum([self.sum, *self.sum_terms])

    def observations(self) -> int:
        if self.sketch is not None:
            return self.sketch.count
        return len(self.samples) + self.dropped


class Histogram(Instrument):
    """Fixed-bucket distribution with exact or sketched percentiles.

    ``buckets`` are inclusive upper bounds in ascending order; one
    implicit ``+inf`` bucket catches overflows.  With the default
    ``backend="exact"`` the raw samples are retained, so
    :meth:`percentile` is exact (linear interpolation over the sorted
    samples), matching the paper's reported p50/p95/p99; with
    ``backend="sketch"`` each label set keeps a fixed-memory
    :class:`~repro.telemetry.sketch.QuantileSketch` whose quantiles are
    within ``sketch_relative_error`` of exact.

    ``max_samples`` (exact backend only) bounds the retained raw
    samples *per label set*: past the cap, bucket counts, ``count`` and
    ``sum`` stay exact while further samples are dropped (percentiles
    become first-``max_samples``-exact) and ``on_drop`` — if set — is
    invoked once per dropped sample so the registry can count drops.
    A capped histogram refuses to merge (the retained-prefix policy is
    order-dependent); switch merging fleets to the sketch backend.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: _t.Sequence[float] | None = None,
                 max_samples: int | None = None,
                 backend: str = "exact",
                 sketch_relative_error: float = DEFAULT_RELATIVE_ERROR,
                 on_drop: _t.Callable[[str], None] | None = None) -> None:
        super().__init__(name, help)
        bounds = tuple(buckets if buckets is not None
                       else DEFAULT_LATENCY_BUCKETS_MS)
        if not bounds:
            raise TelemetryError(f"histogram {name}: no buckets")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise TelemetryError(
                f"histogram {name}: buckets must be strictly increasing, "
                f"got {bounds}")
        if max_samples is not None and max_samples < 1:
            raise TelemetryError(
                f"histogram {name}: max_samples must be >= 1, "
                f"got {max_samples}")
        if backend not in HISTOGRAM_BACKENDS:
            raise TelemetryError(
                f"histogram {name}: unknown backend {backend!r} "
                f"(expected one of {'/'.join(HISTOGRAM_BACKENDS)})")
        if backend == "sketch" and max_samples is not None:
            raise TelemetryError(
                f"histogram {name}: max_samples applies to the exact "
                f"backend only (the sketch is fixed-memory already)")
        self.buckets = bounds
        self.max_samples = max_samples
        self.backend = backend
        self.sketch_relative_error = sketch_relative_error
        self._on_drop = on_drop
        self._states: dict[LabelSet, _HistogramState] = {}

    def _new_state(self) -> _HistogramState:
        return _HistogramState(
            len(self.buckets),
            sketch_relative_error=(self.sketch_relative_error
                                   if self.backend == "sketch" else None))

    # -- recording ------------------------------------------------------
    def observe(self, value: float, **labels: object) -> None:
        key = () if not labels else labelset(labels)
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = self._new_state()
        state.bucket_counts[self._bucket_index(value)] += 1
        if state.sketch is not None:
            state.sketch.add(value)
            return
        state.sum += value
        if self.max_samples is not None \
                and len(state.samples) >= self.max_samples:
            state.dropped += 1
            if self._on_drop is not None:
                self._on_drop(self.name)
        else:
            state.samples.append(value)

    def _bucket_index(self, value: float) -> int:
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                return index
        return len(self.buckets)

    # -- aggregation ----------------------------------------------------
    def _matching(self, labels: _t.Mapping[str, object],
                  ) -> list[_HistogramState]:
        """States whose label set contains ``labels`` as a subset."""
        match = set(labelset(labels))
        return [state for key, state in sorted(self._states.items())
                if match <= set(key)]

    def _merged_sketch(self, states: _t.Sequence[_HistogramState],
                       ) -> QuantileSketch:
        merged = QuantileSketch(self.sketch_relative_error)
        for state in states:
            if state.sketch is not None:
                merged.merge(state.sketch)
        return merged

    def samples(self, **labels: object) -> list[float]:
        """Raw samples across every label set matching the subset.

        Empty under the sketch backend: no raw samples are retained.
        """
        collected: list[float] = []
        for state in self._matching(labels):
            collected.extend(state.samples)
        return collected

    def count(self, **labels: object) -> int:
        """Total observations, including samples dropped at the cap."""
        return sum(state.observations()
                   for state in self._matching(labels))

    def dropped(self, **labels: object) -> int:
        """Observations not retained as raw samples (max_samples cap)."""
        return sum(state.dropped for state in self._matching(labels))

    def sum(self, **labels: object) -> float:
        return math.fsum(state.folded_sum()
                         for state in self._matching(labels))

    def mean(self, **labels: object) -> float:
        count = self.count(**labels)
        if not count:
            raise TelemetryError(f"histogram {self.name} is empty")
        return self.sum(**labels) / count

    def percentile(self, q: float, **labels: object) -> float:
        """Percentile over the matching states (exact or sketched)."""
        if self.backend == "sketch":
            states = self._matching(labels)
            if not any(state.observations() for state in states):
                raise TelemetryError(f"histogram {self.name} is empty")
            return self._merged_sketch(states).quantile(q)
        values = self.samples(**labels)
        if not values:
            raise TelemetryError(f"histogram {self.name} is empty")
        return percentile(values, q)

    def bucket_counts(self, **labels: object) -> list[int]:
        """Per-bucket counts (last entry is the +inf overflow bucket)."""
        totals = [0] * (len(self.buckets) + 1)
        for state in self._matching(labels):
            for index, count in enumerate(state.bucket_counts):
                totals[index] += count
        return totals

    def labelsets(self) -> list[LabelSet]:
        return sorted(self._states)

    def cumulative_rows(self, key: LabelSet,
                        ) -> tuple[list[tuple[float, int]], int, float, str]:
        """Prometheus-style cumulative buckets for one exact label set.

        Returns ``(rows, total, sum, backend)`` where ``rows`` is the
        ascending ``(upper_bound, cumulative_count)`` list *excluding*
        the ``+inf`` bucket (``total`` is its value), ``sum`` is the
        folded sample sum and ``backend`` the per-state fidelity tag.
        Exact/capped states expose the configured bounds; sketch states
        expose their gamma log-buckets (exact counts, approximate
        positions within the sketch's relative-error bound).  This is
        the accessor the ``/metrics`` exposition renders from
        (:mod:`repro.telemetry.exposition`).
        """
        state = self._states.get(key)
        if state is None:
            raise TelemetryError(
                f"histogram {self.name}: unknown label set {key!r}")
        if state.sketch is not None:
            rows = state.sketch.cumulative_buckets()
            return rows, state.sketch.count, state.sketch.sum, "sketch"
        rows = []
        cumulative = 0
        for bound, count in zip(self.buckets, state.bucket_counts):
            cumulative += count
            rows.append((bound, cumulative))
        total = cumulative + state.bucket_counts[-1]
        return rows, total, state.folded_sum(), \
            self._backend_tag(state.dropped)

    def _backend_tag(self, dropped: int) -> str:
        if self.backend == "sketch":
            return "sketch"
        return "capped" if dropped else "exact"

    def summary(self, **labels: object) -> dict[str, object]:
        """count/mean/p50/p95/p99/max over the matching states.

        The ``backend`` key states how the percentiles were computed —
        ``exact`` (raw samples), ``capped`` (raw samples truncated at
        the ``max_samples`` cap) or ``sketch`` (relative-error-bounded)
        — so exported series of different fidelities are never compared
        as identical stats (``diff_runs`` keys on it).  ``count`` and
        ``mean`` cover *every* observation under every backend; a
        ``samples_dropped`` key appears only once the cap has actually
        dropped something.
        """
        if self.backend == "sketch":
            states = self._matching(labels)
            sketch = self._merged_sketch(states)
            if not sketch.count:
                return {"count": 0.0, "backend": "sketch"}
            return {
                "count": float(sketch.count),
                "mean": sketch.sum / sketch.count,
                "p50": sketch.quantile(50.0),
                "p95": sketch.quantile(95.0),
                "p99": sketch.quantile(99.0),
                "max": sketch.max,
                "backend": "sketch",
            }
        values = self.samples(**labels)
        if not values:
            return {"count": 0.0, "backend": "exact"}
        count = self.count(**labels)
        dropped = self.dropped(**labels)
        summary: dict[str, object] = {
            "count": float(count),
            "mean": (self.sum(**labels) / count if dropped
                     else math.fsum(values) / len(values)),
            "p50": percentile(values, 50.0),
            "p95": percentile(values, 95.0),
            "p99": percentile(values, 99.0),
            "max": max(values),
            "backend": self._backend_tag(dropped),
        }
        if dropped:
            summary["samples_dropped"] = float(dropped)
        return summary

    # -- merging --------------------------------------------------------
    def _check_state_compat(self, state: _t.Mapping[str, object]) -> None:
        if tuple(_t.cast(list, state["buckets"])) != self.buckets:
            raise TelemetryError(
                f"histogram {self.name}: cannot merge shards with "
                f"different buckets")
        if state["backend"] != self.backend:
            raise TelemetryError(
                f"histogram {self.name}: cannot merge {state['backend']}"
                f"-backend shard into {self.backend} backend")
        if self.backend == "sketch" and \
                state["sketch_relative_error"] != self.sketch_relative_error:
            raise TelemetryError(
                f"histogram {self.name}: cannot merge shards with "
                f"different sketch error bounds")
        if self.max_samples is not None \
                or state.get("max_samples") is not None:
            raise TelemetryError(
                f"histogram {self.name}: capped exact histograms do not "
                f"merge (the retained-sample prefix is order-dependent);"
                f" use backend='sketch' for mergeable fleets")

    def state_dict(self) -> dict[str, object]:
        states: dict[str, object] = {}
        for key in self.labelsets():
            state = self._states[key]
            entry: dict[str, object] = {
                "bucket_counts": list(state.bucket_counts),
            }
            if state.sketch is not None:
                entry["sketch"] = state.sketch.state_dict()
            else:
                entry["samples"] = sorted(state.samples)
                entry["sum_terms"] = sorted(
                    term for term in [state.sum, *state.sum_terms]
                    if term != 0.0)
                entry["dropped"] = state.dropped
            states[_encode_labelset(key)] = entry
        return {
            "kind": self.kind,
            "help": self.help,
            "buckets": list(self.buckets),
            "max_samples": self.max_samples,
            "backend": self.backend,
            "sketch_relative_error": self.sketch_relative_error,
            "states": states,
        }

    def merge_state(self, state: _t.Mapping[str, object]) -> None:
        self._check_state_compat(state)
        for encoded, entry in _t.cast(
                dict, state.get("states", {})).items():
            key = _decode_labelset(encoded)
            mine = self._states.get(key)
            if mine is None:
                mine = self._states[key] = self._new_state()
            for index, count in enumerate(entry["bucket_counts"]):
                mine.bucket_counts[index] += count
            if mine.sketch is not None:
                mine.sketch.merge(QuantileSketch.from_state(
                    entry["sketch"]))
            else:
                # Canonical multiset order: sorting makes the merged
                # sample list — hence every export byte — independent
                # of the order shards were folded in.
                mine.samples = sorted(
                    mine.samples
                    + [float(sample) for sample in entry["samples"]])
                mine.sum_terms.extend(
                    float(term) for term in entry["sum_terms"])
