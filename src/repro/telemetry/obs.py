"""The ``repro obs`` panel: one instrumented run, summarized.

Runs the paper's workload on APE-CACHE with telemetry enabled and
renders what the unified registry saw: the request path's per-stage
latency breakdown (``dns_piggyback`` → AP retrieval → edge fetch),
the span-derived critical-path attribution
(:mod:`repro.telemetry.analysis`), and per-app hit ratios with a Gini
fairness index.  ``--export-spans``/``--export-metrics`` dump the run
as deterministic JSONL, ``--export-trace`` writes a Perfetto-viewable
Chrome trace (:mod:`repro.telemetry.tracefmt`), and ``--profile`` adds
the host-side events/sec view from :mod:`repro.telemetry.profiling`.

:func:`instrumented_run` is the shared "one instrumented run" builder
this panel and the regression sentry (:mod:`repro.telemetry.sentry`)
both sit on.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.apps.workload import Workload, WorkloadConfig
from repro.baselines.ape import ApeCacheSystem
from repro.cache.fairness import gini
from repro.experiments.common import ExperimentTable, effective_duration
from repro.sim.kernel import MINUTE
from repro.telemetry.analysis import (
    AttributionReport,
    attribute,
    records_from_telemetry,
)
from repro.telemetry.export import write_metrics_jsonl, write_spans_jsonl
from repro.telemetry.instruments import Counter, Histogram
from repro.telemetry.profiling import HostProfile, HostProfileReport
from repro.telemetry.registry import Telemetry
from repro.testbed import TestbedConfig

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.baselines.base import CachingSystem
    from repro.testbed import Testbed

__all__ = ["ObsRun", "instrumented_run", "run_obs", "stage_table",
           "hit_ratio_table"]

#: Retrieval sources in request-path order (device first, origin last).
_SOURCES = ("device-hit", "ap-hit", "ap-delegated", "edge")


def _histogram(telemetry: Telemetry, name: str) -> Histogram | None:
    instrument = telemetry.get(name)
    return instrument if isinstance(instrument, Histogram) else None


def _stage_row(table: ExperimentTable, stage: str,
               histogram: Histogram | None, **labels: object) -> None:
    if histogram is None:
        return
    summary = histogram.summary(**labels)
    if not summary.get("count"):
        return
    table.add_row(stage=stage, count=int(summary["count"]),
                  mean_ms=summary["mean"], p50_ms=summary["p50"],
                  p95_ms=summary["p95"], p99_ms=summary["p99"])


def stage_table(telemetry: Telemetry) -> ExperimentTable:
    """Per-stage latency breakdown (dns / ap / edge), in sim-ms."""
    table = ExperimentTable(
        title="obs: per-stage latency breakdown (APE-CACHE)",
        columns=["stage", "count", "mean_ms", "p50_ms", "p95_ms",
                 "p99_ms"])
    lookup = _histogram(telemetry, "client.lookup_ms")
    retrieval = _histogram(telemetry, "client.retrieval_ms")
    _stage_row(table, "dns lookup (piggybacked)", lookup)
    for source in _SOURCES:
        _stage_row(table, f"retrieval [{source}]", retrieval,
                   source=source)
    _stage_row(table, "ap->edge fetch",
               _histogram(telemetry, "ap.edge_fetch_ms"))
    _stage_row(table, "end-to-end", _histogram(telemetry,
                                               "client.total_ms"))
    table.notes.append(
        "stages from client.lookup_ms / client.retrieval_ms / "
        "ap.edge_fetch_ms / client.total_ms histograms")
    return table


def hit_ratio_table(telemetry: Telemetry) -> ExperimentTable:
    """Per-app AP-hit ratios plus a Gini fairness index across apps."""
    table = ExperimentTable(
        title="obs: per-app hit ratio",
        columns=["app", "fetches", "hits", "hit_ratio"])
    counter = telemetry.get("client.fetches")
    if not isinstance(counter, Counter):
        table.notes.append("no client.fetches counter recorded")
        return table
    apps = sorted({dict(labels).get("app", "")
                   for labels in counter.labelsets()})
    ratios = []
    rows = []
    for app in apps:
        total = counter.total(app=app)
        hits = counter.total(app=app, hit="yes")
        ratio = hits / total if total else 0.0
        ratios.append(ratio)
        rows.append({"app": app, "fetches": int(total),
                     "hits": int(hits), "hit_ratio": ratio})
    for row in sorted(rows, key=lambda row: (-_t.cast(int, row["fetches"]),
                                             row["app"])):
        table.add_row(**row)
    grand_total = counter.total()
    grand_hits = counter.total(hit="yes")
    if grand_total:
        table.notes.append(
            f"overall hit ratio {grand_hits / grand_total:.3f} over "
            f"{grand_total:.0f} fetches")
    table.notes.append(
        f"Gini over per-app hit ratios: {gini(ratios):.3f} "
        f"(0 = perfectly even)")
    return table


@dataclasses.dataclass
class ObsRun:
    """One completed instrumented run plus everything derived from it."""

    telemetry: Telemetry
    duration_s: float
    seed: int
    #: Host-side profile, only when profiling was requested.
    profile: HostProfileReport | None = None

    def attribution(self) -> AttributionReport:
        """Critical-path attribution over this run's span log."""
        return attribute(records_from_telemetry(self.telemetry))


def instrumented_run(quick: bool = True, seed: int = 0,
                     profile: bool = False,
                     system: "CachingSystem | None" = None,
                     max_samples: int | None = None) -> ObsRun:
    """Run the paper's workload with telemetry on; the obs/sentry core."""
    duration = effective_duration(quick, quick_s=2 * MINUTE)
    config = WorkloadConfig(
        n_apps=30, duration_s=duration, seed=seed,
        testbed=TestbedConfig(seed=seed, enable_telemetry=True,
                              telemetry_max_samples=max_samples))
    workload = Workload(config)

    profiles: list[HostProfile] = []

    def _profiler(bed: "Testbed", _system: "CachingSystem",
                  ) -> _t.Generator[object, object, None]:
        profiles.append(HostProfile(bed.sim).start())
        yield bed.sim.timeout(0.0)

    extra = [_profiler] if profile else []
    workload.run(system if system is not None else ApeCacheSystem(),
                 extra_processes=extra)
    bed: "Testbed" = workload._last_bed
    return ObsRun(telemetry=bed.telemetry, duration_s=duration,
                  seed=seed,
                  profile=profiles[0].stop() if profiles else None)


def run_obs(quick: bool = True, seed: int = 0,
            spans_path: str | None = None,
            profile: bool = False,
            metrics_path: str | None = None,
            trace_path: str | None = None) -> list[ExperimentTable]:
    """One telemetry-enabled APE-CACHE run, rendered as panels."""
    run = instrumented_run(quick, seed, profile=profile)
    telemetry = run.telemetry

    report = run.attribution()
    tables = [stage_table(telemetry), report.table(),
              hit_ratio_table(telemetry)]
    tables[0].notes.append(
        f"{len(telemetry.spans)} spans, "
        f"{len(telemetry.instruments())} instruments recorded over "
        f"{run.duration_s:.0f} sim-s (seed {seed})")
    if spans_path is not None:
        count = write_spans_jsonl(telemetry, spans_path)
        tables[0].notes.append(f"wrote {count} spans to {spans_path}")
    if metrics_path is not None:
        count = write_metrics_jsonl(telemetry, metrics_path)
        tables[0].notes.append(
            f"wrote {count} metric records to {metrics_path}")
    if trace_path is not None:
        from repro.telemetry.tracefmt import write_chrome_trace

        count = write_chrome_trace(records_from_telemetry(telemetry),
                                   trace_path)
        tables[0].notes.append(
            f"wrote {count} spans as a Chrome trace to {trace_path} "
            f"(open in ui.perfetto.dev)")
    if run.profile is not None:
        tables[0].notes.append(run.profile.render())
    return tables


if __name__ == "__main__":  # pragma: no cover
    for table in run_obs():
        print(table)
        print()
