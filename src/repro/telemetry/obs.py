"""The ``repro obs`` panel: one instrumented run, summarized.

Runs the paper's workload on APE-CACHE with telemetry enabled and
renders what the unified registry saw: the request path's per-stage
latency breakdown (``dns_piggyback`` → AP retrieval → edge fetch),
the span-derived critical-path attribution
(:mod:`repro.telemetry.analysis`), and per-app hit ratios with a Gini
fairness index.  ``--export-spans``/``--export-metrics`` dump the run
as deterministic JSONL, ``--export-trace`` writes a Perfetto-viewable
Chrome trace (:mod:`repro.telemetry.tracefmt`), and ``--profile`` adds
the host-side events/sec view from :mod:`repro.telemetry.profiling`.

:func:`instrumented_run` is the shared "one instrumented run" builder
this panel and the regression sentry (:mod:`repro.telemetry.sentry`)
both sit on.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.apps.workload import Workload, WorkloadConfig
from repro.baselines.ape import ApeCacheSystem
from repro.cache.fairness import gini
from repro.experiments.common import ExperimentTable, effective_duration
from repro.sim.kernel import MINUTE
from repro.telemetry.analysis import (
    AttributionReport,
    attribute,
    records_from_telemetry,
)
from repro.telemetry.export import write_metrics_jsonl, write_spans_jsonl
from repro.telemetry.instruments import Counter, Gauge, Histogram
from repro.telemetry.profiling import HostProfile, HostProfileReport
from repro.telemetry.registry import Telemetry
from repro.testbed import Testbed, TestbedConfig

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.baselines.base import CachingSystem
    from repro.baselines.multi_ap import WiCacheDistributedSystem

__all__ = ["ObsRun", "follow_obs", "instrumented_run", "run_obs",
           "stage_table", "hit_ratio_table", "live_health_table",
           "fleet_tables", "fleet_table", "top_traces_table"]

_MB = 1024 * 1024

#: Retrieval sources in request-path order (device first, origin last).
_SOURCES = ("device-hit", "ap-hit", "ap-delegated", "edge")


def _histogram(telemetry: Telemetry, name: str) -> Histogram | None:
    instrument = telemetry.get(name)
    return instrument if isinstance(instrument, Histogram) else None


def _stage_row(table: ExperimentTable, stage: str,
               histogram: Histogram | None, **labels: object) -> None:
    if histogram is None:
        return
    summary = histogram.summary(**labels)
    if not summary.get("count"):
        return
    table.add_row(stage=stage, count=int(summary["count"]),
                  mean_ms=summary["mean"], p50_ms=summary["p50"],
                  p95_ms=summary["p95"], p99_ms=summary["p99"])


def stage_table(telemetry: Telemetry) -> ExperimentTable:
    """Per-stage latency breakdown (dns / ap / edge), in sim-ms."""
    table = ExperimentTable(
        title="obs: per-stage latency breakdown (APE-CACHE)",
        columns=["stage", "count", "mean_ms", "p50_ms", "p95_ms",
                 "p99_ms"])
    lookup = _histogram(telemetry, "client.lookup_ms")
    retrieval = _histogram(telemetry, "client.retrieval_ms")
    _stage_row(table, "dns lookup (piggybacked)", lookup)
    for source in _SOURCES:
        _stage_row(table, f"retrieval [{source}]", retrieval,
                   source=source)
    _stage_row(table, "ap->edge fetch",
               _histogram(telemetry, "ap.edge_fetch_ms"))
    _stage_row(table, "end-to-end", _histogram(telemetry,
                                               "client.total_ms"))
    table.notes.append(
        "stages from client.lookup_ms / client.retrieval_ms / "
        "ap.edge_fetch_ms / client.total_ms histograms")
    return table


def hit_ratio_table(telemetry: Telemetry) -> ExperimentTable:
    """Per-app AP-hit ratios plus a Gini fairness index across apps."""
    table = ExperimentTable(
        title="obs: per-app hit ratio",
        columns=["app", "fetches", "hits", "hit_ratio"])
    counter = telemetry.get("client.fetches")
    if not isinstance(counter, Counter):
        table.notes.append("no client.fetches counter recorded")
        return table
    apps = sorted({dict(labels).get("app", "")
                   for labels in counter.labelsets()})
    ratios = []
    rows = []
    for app in apps:
        total = counter.total(app=app)
        hits = counter.total(app=app, hit="yes")
        ratio = hits / total if total else 0.0
        ratios.append(ratio)
        rows.append({"app": app, "fetches": int(total),
                     "hits": int(hits), "hit_ratio": ratio})
    for row in sorted(rows, key=lambda row: (-_t.cast(int, row["fetches"]),
                                             row["app"])):
        table.add_row(**row)
    grand_total = counter.total()
    grand_hits = counter.total(hit="yes")
    if grand_total:
        table.notes.append(
            f"overall hit ratio {grand_hits / grand_total:.3f} over "
            f"{grand_total:.0f} fetches")
    table.notes.append(
        f"Gini over per-app hit ratios: {gini(ratios):.3f} "
        f"(0 = perfectly even)")
    return table


def live_health_table(telemetry: Telemetry) -> ExperimentTable | None:
    """Health of a live-engine run (``live.*`` instruments).

    Returns ``None`` when the registry holds no live instruments —
    the normal case for simulated runs, whose transport never touches
    a socket.  On live registries every row renders unconditionally
    (:mod:`repro.engine.livenet` pre-registers the instruments at stack
    construction), so a clean run — and the very first ``/metrics``
    scrape — shows honest zeros instead of omitting rows.
    """
    errors = telemetry.get("live.socket_errors")
    if not isinstance(errors, Counter):
        return None

    def counter_total(name: str) -> int:
        instrument = telemetry.get(name)
        return (int(instrument.total())
                if isinstance(instrument, Counter) else 0)

    def gauge_now(name: str) -> int:
        instrument = telemetry.get(name)
        if not isinstance(instrument, Gauge):
            return 0
        return int(sum(instrument.value(**dict(key))
                       for key in instrument.labelsets()))

    table = ExperimentTable(
        title="obs: live socket health",
        columns=["instrument", "value"])
    table.add_row(instrument="live.socket_errors",
                  value=int(errors.total()))
    table.add_row(instrument="live.request_timeouts",
                  value=counter_total("live.request_timeouts"))
    table.add_row(instrument="live.in_flight (now)",
                  value=gauge_now("live.in_flight"))
    table.add_row(instrument="live.tasks_active (now)",
                  value=gauge_now("live.tasks_active"))
    table.add_row(instrument="live.loop_stalls",
                  value=counter_total("live.loop_stalls"))
    lag = _histogram(telemetry, "live.loop_lag_ms")
    lag_p99 = lag.percentile(99.0) if lag is not None and lag.count() \
        else 0.0
    table.add_row(instrument="live.loop_lag_ms (p99)",
                  value=round(lag_p99, 3))
    table.notes.append(
        "live-engine health; a drained stack ends with in_flight 0 "
        "and the live-budgets gate requires socket_errors 0 and "
        "loop_stalls 0 (docs/live.md)")
    return table


def follow_obs(url: str, interval_s: float = 2.0, count: int = 0,
               metrics_path: str | None = None,
               emit: _t.Callable[[str], None] = print) -> int:
    """Poll a live admin plane's ``/metrics`` and stream the panels.

    The ``repro.cli obs --follow URL`` implementation: every
    ``interval_s`` it scrapes the exposition text, rebuilds a registry
    (:func:`~repro.telemetry.exposition.telemetry_from_exposition` —
    counters/gauges exact, histogram percentiles at bucket resolution)
    and re-renders the stage / hit-ratio / live-health panels.
    ``count`` bounds the polls (0 = until the endpoint goes away or
    Ctrl-C); ``metrics_path`` writes the final scrape as metric JSONL,
    diffable by ``repro.cli diff``.
    """
    import time as _time
    from urllib.request import urlopen

    from repro.telemetry.exposition import telemetry_from_exposition

    target = url if "://" in url else f"http://{url}"
    if not target.rstrip("/").endswith("/metrics"):
        target = target.rstrip("/") + "/metrics"
    polls = 0
    telemetry: Telemetry | None = None
    while True:
        try:
            with urlopen(target, timeout=10.0) as response:
                text = response.read().decode("utf-8")
        except OSError as err:
            if polls:
                emit(f"obs --follow: endpoint gone after {polls} "
                     f"polls ({err})")
                break
            raise
        telemetry = telemetry_from_exposition(text)
        polls += 1
        emit(f"obs --follow: poll {polls} of {target} "
             f"({len(text)} bytes, "
             f"{len(telemetry.instruments())} instruments)")
        for table in (stage_table(telemetry),
                      hit_ratio_table(telemetry)):
            emit(str(table))
            emit("")
        live_health = live_health_table(telemetry)
        if live_health is not None:
            emit(str(live_health))
            emit("")
        if count and polls >= count:
            break
        _time.sleep(interval_s)
    if metrics_path is not None and telemetry is not None:
        written = write_metrics_jsonl(telemetry, metrics_path)
        emit(f"obs --follow: wrote {written} metric records to "
             f"{metrics_path} (final snapshot, diffable by "
             f"`repro.cli diff`)")
    return 0


@dataclasses.dataclass
class ObsRun:
    """One completed instrumented run plus everything derived from it."""

    telemetry: Telemetry
    duration_s: float
    seed: int
    #: Host-side profile, only when profiling was requested.
    profile: HostProfileReport | None = None

    def attribution(self) -> AttributionReport:
        """Critical-path attribution over this run's span log."""
        return attribute(records_from_telemetry(self.telemetry))


def instrumented_run(quick: bool = True, seed: int = 0,
                     profile: bool = False,
                     system: "CachingSystem | None" = None,
                     max_samples: int | None = None,
                     backend: str = "exact",
                     tail_threshold_ms: float | None = None,
                     tail_sample_every: int = 0) -> ObsRun:
    """Run the paper's workload with telemetry on; the obs/sentry core.

    ``backend`` selects histogram storage (``exact``/``sketch``);
    ``tail_threshold_ms``/``tail_sample_every`` attach a tail-based
    trace sampler (off by default, so every trace is kept).
    """
    duration = effective_duration(quick, quick_s=2 * MINUTE)
    config = WorkloadConfig(
        n_apps=30, duration_s=duration, seed=seed,
        testbed=TestbedConfig(
            seed=seed, enable_telemetry=True,
            telemetry_max_samples=max_samples,
            telemetry_backend=backend,
            telemetry_tail_threshold_ms=tail_threshold_ms,
            telemetry_tail_sample_every=tail_sample_every))
    workload = Workload(config)

    profiles: list[HostProfile] = []

    def _profiler(bed: "Testbed", _system: "CachingSystem",
                  ) -> _t.Generator[object, object, None]:
        profiles.append(HostProfile(bed.sim).start())
        yield bed.sim.timeout(0.0)

    extra = [_profiler] if profile else []
    workload.run(system if system is not None else ApeCacheSystem(),
                 extra_processes=extra)
    bed: "Testbed" = workload._last_bed
    return ObsRun(telemetry=bed.telemetry, duration_s=duration,
                  seed=seed,
                  profile=profiles[0].stop() if profiles else None)


def run_obs(quick: bool = True, seed: int = 0,
            spans_path: str | None = None,
            profile: bool = False,
            metrics_path: str | None = None,
            trace_path: str | None = None,
            backend: str = "exact",
            tail_threshold_ms: float | None = None,
            tail_sample_every: int = 0,
            fleet: int = 0,
            top: int = 0) -> list[ExperimentTable]:
    """One telemetry-enabled APE-CACHE run, rendered as panels.

    ``fleet=N`` appends the merged-shard fleet rollup from an N-AP
    distributed Wi-Cache run; ``top=N`` appends the N slowest request
    traces with their per-stage self-time breakdown.
    """
    run = instrumented_run(quick, seed, profile=profile,
                           backend=backend,
                           tail_threshold_ms=tail_threshold_ms,
                           tail_sample_every=tail_sample_every)
    telemetry = run.telemetry

    report = run.attribution()
    tables = [stage_table(telemetry), report.table(),
              hit_ratio_table(telemetry)]
    live_health = live_health_table(telemetry)
    if live_health is not None:  # live-engine telemetry only
        tables.append(live_health)
    tables[0].notes.append(
        f"{len(telemetry.spans)} spans, "
        f"{len(telemetry.instruments())} instruments recorded over "
        f"{run.duration_s:.0f} sim-s (seed {seed})")
    if backend != "exact":
        tables[0].notes.append(
            f"histogram backend: {backend} (percentiles within the "
            f"declared relative-error bound of exact)")
    dropped = telemetry.get("telemetry.samples_dropped")
    if isinstance(dropped, Counter) and dropped.total():
        tables[0].notes.append(
            f"WARNING: {dropped.total():.0f} raw histogram samples "
            f"dropped (telemetry.samples_dropped; raise "
            f"--max-samples or use --backend sketch)")
    sampler = telemetry.spans.sampler
    if sampler is not None:
        stats = sampler.stats()
        tables[0].notes.append(
            f"tail sampler: kept {sampler.kept_traces}/"
            f"{stats['roots_seen']} traces (tail={stats['kept_tail']} "
            f"error={stats['kept_error']} "
            f"sampled={stats['kept_sampled']}), dropped "
            f"{stats['dropped_spans']} spans")
    if spans_path is not None:
        count = write_spans_jsonl(telemetry, spans_path)
        tables[0].notes.append(f"wrote {count} spans to {spans_path}")
    if metrics_path is not None:
        count = write_metrics_jsonl(telemetry, metrics_path)
        tables[0].notes.append(
            f"wrote {count} metric records to {metrics_path}")
    if trace_path is not None:
        from repro.telemetry.tracefmt import write_chrome_trace

        count = write_chrome_trace(records_from_telemetry(telemetry),
                                   trace_path)
        tables[0].notes.append(
            f"wrote {count} spans as a Chrome trace to {trace_path} "
            f"(open in ui.perfetto.dev)")
    if run.profile is not None:
        tables[0].notes.append(run.profile.render())
    if top:
        tables.append(top_traces_table(report, top))
    if fleet:
        tables.extend(fleet_tables(n_aps=fleet, quick=quick, seed=seed))
    return tables


# ----------------------------------------------------------------------
# Top-N slowest traces
# ----------------------------------------------------------------------
def top_traces_table(report: AttributionReport,
                     n: int) -> ExperimentTable:
    """The ``n`` slowest request traces, with per-stage self-times."""
    table = ExperimentTable(
        title=f"obs: top {n} slowest request traces",
        columns=["trace", "app", "source", "weight", "total_ms",
                 "stage_breakdown"])
    ranked = sorted(report.requests,
                    key=lambda attribution: (-attribution.total_ms,
                                             attribution.trace_id))
    for attribution in ranked[:n]:
        stages = sorted(attribution.self_ms.items(),
                        key=lambda item: (-item[1], item[0]))
        breakdown = " | ".join(f"{stage} {self_ms:.2f}"
                               for stage, self_ms in stages
                               if self_ms > 0.0)
        weight = f"{attribution.weight:g}"
        if attribution.sample_reason:
            weight += f" ({attribution.sample_reason})"
        table.add_row(trace=attribution.trace_id, app=attribution.app,
                      source=attribution.source, weight=weight,
                      total_ms=attribution.total_ms,
                      stage_breakdown=breakdown)
    table.notes.append(
        "ranked by end-to-end duration; breakdown is per-stage "
        "self-time (each instant owned by the deepest active span)")
    if not report.requests:
        table.notes.append("no complete request traces recorded")
    return table


# ----------------------------------------------------------------------
# Fleet rollup (sharded registries -> one controller view)
# ----------------------------------------------------------------------
def fleet_table(merged: Telemetry, n_shards: int) -> ExperimentTable:
    """Per-AP stats from the merged fleet registry, plus a Gini note."""
    table = ExperimentTable(
        title="obs: fleet rollup (merged per-AP telemetry shards)",
        columns=["ap", "fetches", "hit_ratio", "served", "fills",
                 "cache_mb", "serve_p95_ms"])
    fetches = merged.get("fleet.fetches")
    if not isinstance(fetches, Counter) or not fetches.labelsets():
        table.notes.append("no fleet.* instruments in the merged "
                           "registry (was the run instrumented?)")
        return table
    requests = merged.get("fleet.requests")
    fills = merged.get("fleet.fills")
    used = merged.get("fleet.cache_used_bytes")
    serve = merged.get("fleet.serve_ms")
    aps = sorted({str(dict(labels).get("ap", ""))
                  for labels in fetches.labelsets()})
    ratios = []
    for ap in aps:
        total = fetches.total(ap=ap)
        hits = fetches.total(ap=ap, hit="yes")
        ratio = hits / total if total else 0.0
        ratios.append(ratio)
        summary: dict[str, object] = {}
        if isinstance(serve, Histogram):
            summary = serve.summary(ap=ap)
        table.add_row(
            ap=ap, fetches=int(total), hit_ratio=ratio,
            served=(int(requests.total(ap=ap, hit="yes"))
                    if isinstance(requests, Counter) else 0),
            fills=(int(fills.total(ap=ap))
                   if isinstance(fills, Counter) else 0),
            cache_mb=(used.value(ap=ap) / _MB
                      if isinstance(used, Gauge) else 0.0),
            serve_p95_ms=_t.cast(float, summary.get("p95", 0.0)))
    table.notes.append(
        f"Gini over per-AP hit ratios: {gini(ratios):.3f} "
        f"(0 = perfectly even)")
    table.notes.append(
        f"merged from {n_shards} per-AP sketch shards via "
        f"Telemetry.merge (order-independent fold)")
    return table


def fleet_tables(n_aps: int = 2, quick: bool = True,
                 seed: int = 0) -> list[ExperimentTable]:
    """Run an instrumented N-AP distributed Wi-Cache fleet and render
    the controller's merged-shard view."""
    from repro.apps.executor import AppRunner
    from repro.apps.generator import DummyAppParams, generate_apps
    from repro.apps.workload import zipf_rates
    from repro.baselines.multi_ap import WiCacheDistributedSystem

    duration = effective_duration(quick, quick_s=2 * MINUTE)
    bed = Testbed(TestbedConfig(seed=seed, enable_telemetry=True))
    system = WiCacheDistributedSystem(n_aps=n_aps,
                                      cache_capacity_per_ap=2 * _MB)
    system.install(bed)
    apps = generate_apps(24, seed=seed, params=DummyAppParams())
    rates = zipf_rates(24, 0.8, 3.0)

    def _drive(runner: AppRunner, rate_per_s: float,
               ) -> _t.Generator[object, object, None]:
        rng = bed.streams.stream(f"obsfleet:{runner.app.app_id}")
        while True:
            yield bed.sim.timeout(rng.expovariate(rate_per_s))
            yield bed.sim.process(runner.execute())

    for index, (app, rate) in enumerate(zip(apps, rates)):
        home = system.home_ap_name(index)
        node = bed.add_client(f"client-{app.app_id}", ap_name=home)
        fetcher = system.new_fetcher(bed, node, app.app_id)
        for obj in app.objects:
            bed.host_object(obj.url, obj.size_bytes,
                            origin_delay_s=obj.origin_delay_s)
        bed.sim.process(_drive(AppRunner(bed.sim, app, fetcher), rate))
    bed.run(until=duration)

    table = fleet_table(system.fleet_rollup(), len(system.shards))
    table.notes.append(
        f"{n_aps} APs, 24 apps round-robin over home APs, "
        f"{duration:.0f} sim-s (seed {seed})")
    return [table]


if __name__ == "__main__":  # pragma: no cover
    for table in run_obs():
        print(table)
        print()
