"""The ``repro obs`` panel: one instrumented run, summarized.

Runs the paper's workload on APE-CACHE with telemetry enabled and
renders what the unified registry saw: the request path's per-stage
latency breakdown (``dns_piggyback`` → AP retrieval → edge fetch) and
per-app hit ratios with a Gini fairness index.  ``--spans FILE`` dumps
the span log as deterministic JSONL; ``--profile`` adds the host-side
events/sec view from :mod:`repro.telemetry.profiling`.
"""

from __future__ import annotations

import typing as _t

from repro.apps.workload import Workload, WorkloadConfig
from repro.baselines.ape import ApeCacheSystem
from repro.cache.fairness import gini
from repro.experiments.common import ExperimentTable, effective_duration
from repro.sim.kernel import MINUTE
from repro.telemetry.export import write_spans_jsonl
from repro.telemetry.instruments import Counter, Histogram
from repro.telemetry.profiling import HostProfile
from repro.telemetry.registry import Telemetry
from repro.testbed import TestbedConfig

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.baselines.base import CachingSystem
    from repro.testbed import Testbed

__all__ = ["run_obs", "stage_table", "hit_ratio_table"]

#: Retrieval sources in request-path order (device first, origin last).
_SOURCES = ("device-hit", "ap-hit", "ap-delegated", "edge")


def _histogram(telemetry: Telemetry, name: str) -> Histogram | None:
    instrument = telemetry.get(name)
    return instrument if isinstance(instrument, Histogram) else None


def _stage_row(table: ExperimentTable, stage: str,
               histogram: Histogram | None, **labels: object) -> None:
    if histogram is None:
        return
    summary = histogram.summary(**labels)
    if not summary.get("count"):
        return
    table.add_row(stage=stage, count=int(summary["count"]),
                  mean_ms=summary["mean"], p50_ms=summary["p50"],
                  p95_ms=summary["p95"], p99_ms=summary["p99"])


def stage_table(telemetry: Telemetry) -> ExperimentTable:
    """Per-stage latency breakdown (dns / ap / edge), in sim-ms."""
    table = ExperimentTable(
        title="obs: per-stage latency breakdown (APE-CACHE)",
        columns=["stage", "count", "mean_ms", "p50_ms", "p95_ms",
                 "p99_ms"])
    lookup = _histogram(telemetry, "client.lookup_ms")
    retrieval = _histogram(telemetry, "client.retrieval_ms")
    _stage_row(table, "dns lookup (piggybacked)", lookup)
    for source in _SOURCES:
        _stage_row(table, f"retrieval [{source}]", retrieval,
                   source=source)
    _stage_row(table, "ap->edge fetch",
               _histogram(telemetry, "ap.edge_fetch_ms"))
    _stage_row(table, "end-to-end", _histogram(telemetry,
                                               "client.total_ms"))
    table.notes.append(
        "stages from client.lookup_ms / client.retrieval_ms / "
        "ap.edge_fetch_ms / client.total_ms histograms")
    return table


def hit_ratio_table(telemetry: Telemetry) -> ExperimentTable:
    """Per-app AP-hit ratios plus a Gini fairness index across apps."""
    table = ExperimentTable(
        title="obs: per-app hit ratio",
        columns=["app", "fetches", "hits", "hit_ratio"])
    counter = telemetry.get("client.fetches")
    if not isinstance(counter, Counter):
        table.notes.append("no client.fetches counter recorded")
        return table
    apps = sorted({dict(labels).get("app", "")
                   for labels in counter.labelsets()})
    ratios = []
    rows = []
    for app in apps:
        total = counter.total(app=app)
        hits = counter.total(app=app, hit="yes")
        ratio = hits / total if total else 0.0
        ratios.append(ratio)
        rows.append({"app": app, "fetches": int(total),
                     "hits": int(hits), "hit_ratio": ratio})
    for row in sorted(rows, key=lambda row: (-_t.cast(int, row["fetches"]),
                                             row["app"])):
        table.add_row(**row)
    grand_total = counter.total()
    grand_hits = counter.total(hit="yes")
    if grand_total:
        table.notes.append(
            f"overall hit ratio {grand_hits / grand_total:.3f} over "
            f"{grand_total:.0f} fetches")
    table.notes.append(
        f"Gini over per-app hit ratios: {gini(ratios):.3f} "
        f"(0 = perfectly even)")
    return table


def run_obs(quick: bool = True, seed: int = 0,
            spans_path: str | None = None,
            profile: bool = False) -> list[ExperimentTable]:
    """One telemetry-enabled APE-CACHE run, rendered as panels."""
    duration = effective_duration(quick, quick_s=2 * MINUTE)
    config = WorkloadConfig(
        n_apps=30, duration_s=duration, seed=seed,
        testbed=TestbedConfig(seed=seed, enable_telemetry=True))
    workload = Workload(config)

    profiles: list[HostProfile] = []

    def _profiler(bed: "Testbed", _system: "CachingSystem",
                  ) -> _t.Generator[object, object, None]:
        profiles.append(HostProfile(bed.sim).start())
        yield bed.sim.timeout(0.0)

    extra = [_profiler] if profile else []
    workload.run(ApeCacheSystem(), extra_processes=extra)
    bed: "Testbed" = workload._last_bed
    telemetry = bed.telemetry

    tables = [stage_table(telemetry), hit_ratio_table(telemetry)]
    tables[0].notes.append(
        f"{len(telemetry.spans)} spans, "
        f"{len(telemetry.instruments())} instruments recorded over "
        f"{duration:.0f} sim-s (seed {seed})")
    if spans_path is not None:
        count = write_spans_jsonl(telemetry, spans_path)
        tables[0].notes.append(f"wrote {count} spans to {spans_path}")
    if profiles:
        tables[0].notes.append(profiles[0].stop().render())
    return tables


if __name__ == "__main__":  # pragma: no cover
    for table in run_obs():
        print(table)
        print()
