"""Trace-correlated structured logging (JSONL records).

:class:`StructuredLog` is the live stack's event log: a bounded ring of
JSON-able records, each stamped with the engine clock and — when the
caller passes the active :class:`~repro.telemetry.spans.Span` — the
``x-ape-trace`` trace id (:func:`~repro.telemetry.spans.
format_trace_parent` spelling, ``trace.span``).  That correlation is
the point: a slow trace surfaced by ``/debug/traces`` greps straight to
its log lines::

    python -m repro.cli live --serve --logs live.jsonl ...
    grep '"trace": "17\\.' live.jsonl

Records are plain dicts rendered with sorted keys and compact
separators (the same canonical JSON the telemetry exports use), so log
files diff cleanly.  The clock is injected — ``engine.now`` for live
runs, ``Simulator.now`` for tests — keeping this module free of host
clock reads like the rest of the telemetry layer (DET004).
"""

from __future__ import annotations

import collections
import json
import typing as _t

from repro.errors import TelemetryError
from repro.telemetry.spans import Span, format_trace_parent

__all__ = ["StructuredLog", "LOG_LEVELS"]

#: Record severities, in increasing order.
LOG_LEVELS = ("debug", "info", "warning", "error")


class StructuredLog:
    """A bounded, deterministic ring of structured log records.

    ``clock`` is any zero-argument callable returning engine seconds
    (``None`` pins records to t=0, for unit tests); ``max_records``
    bounds memory the same way :class:`SpanLog`'s ring does — overflow
    drops the oldest record and bumps :attr:`dropped`.
    """

    def __init__(self, clock: _t.Callable[[], float] | None = None,
                 max_records: int = 10_000) -> None:
        if max_records < 1:
            raise TelemetryError(
                f"max_records must be >= 1, got {max_records}")
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.max_records = max_records
        self._records: collections.deque[dict[str, object]] = \
            collections.deque(maxlen=max_records)
        self.dropped = 0

    def log(self, event: str, *, span: Span | None = None,
            level: str = "info", **fields: object) -> dict[str, object]:
        """Append one record; returns it (already JSON-able).

        ``span`` threads the trace correlation: the record carries the
        wire-format ``trace`` id (``x-ape-trace`` spelling) plus the
        emitting span's own id.
        """
        if level not in LOG_LEVELS:
            raise TelemetryError(
                f"unknown log level {level!r} "
                f"(expected one of {'/'.join(LOG_LEVELS)})")
        record: dict[str, object] = {
            "t_ms": self._clock() * 1e3,
            "level": level,
            "event": event,
        }
        if span is not None:
            record["trace"] = format_trace_parent(span)
            record["span"] = span.span_id
        for key in sorted(fields):
            if key in record:
                raise TelemetryError(
                    f"log field {key!r} collides with a record key")
            record[key] = fields[key]
        if len(self._records) == self.max_records:
            self.dropped += 1
        self._records.append(record)
        return record

    # -- inspection -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> _t.Iterator[dict[str, object]]:
        return iter(self._records)

    def tail(self, n: int) -> list[dict[str, object]]:
        """The most recent ``n`` records, oldest first."""
        if n <= 0:
            return []
        return list(self._records)[-n:]

    def records(self, event: str | None = None,
                trace: str | None = None) -> list[dict[str, object]]:
        """Records in append order, optionally filtered."""
        return [record for record in self._records
                if (event is None or record.get("event") == event)
                and (trace is None or record.get("trace") == trace)]

    def to_jsonl(self) -> str:
        """Every record as canonical JSONL (sorted keys, compact)."""
        return "".join(
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            + "\n"
            for record in self._records)

    def write_jsonl(self, path: str) -> int:
        """Write :meth:`to_jsonl` to ``path``; returns record count."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())
        return len(self._records)

    def clear(self) -> None:
        self._records.clear()
        self.dropped = 0

    def __repr__(self) -> str:
        return (f"<StructuredLog records={len(self._records)} "
                f"dropped={self.dropped}>")
