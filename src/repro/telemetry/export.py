"""Exporters: JSONL span/metric dumps and a text snapshot table.

Every exporter is deterministic — records are sorted by stable keys
(trace id, span id, instrument name, label set) and JSON is emitted with
sorted keys and fixed separators — so two runs of the same seeded
experiment produce **byte-identical** output.  Tests hash these dumps to
catch nondeterminism regressions anywhere in the instrumented stack.
"""

from __future__ import annotations

import json
import typing as _t

from repro.telemetry.instruments import Counter, Gauge, Histogram
from repro.telemetry.registry import Telemetry

__all__ = ["span_records", "spans_to_jsonl", "metric_records",
           "metrics_to_jsonl", "write_spans_jsonl",
           "write_metrics_jsonl", "snapshot_table"]


def _dumps(record: dict[str, object]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"),
                      default=str)


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
def span_records(telemetry: Telemetry) -> list[dict[str, object]]:
    """Finished spans as plain dicts, sorted by (trace, span) id."""
    records = []
    for span in sorted(telemetry.spans,
                       key=lambda span: (span.trace_id, span.span_id)):
        records.append({
            "trace": span.trace_id,
            "span": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "start_ms": span.start_s * 1e3,
            "duration_ms": span.duration_s * 1e3,
            "status": span.status,
            "attrs": {key: span.attrs[key] for key in sorted(span.attrs)},
        })
    return records


def spans_to_jsonl(telemetry: Telemetry) -> str:
    """One JSON object per finished span, newline-separated."""
    return "\n".join(_dumps(record) for record in span_records(telemetry))


def write_spans_jsonl(telemetry: Telemetry, path: str) -> int:
    """Dump the span log to ``path``; returns the span count."""
    records = span_records(telemetry)
    with open(path, "w") as handle:
        for record in records:
            handle.write(_dumps(record) + "\n")
    return len(records)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def metric_records(telemetry: Telemetry) -> list[dict[str, object]]:
    """Every (instrument, label set) as one record, sorted."""
    records: list[dict[str, object]] = []
    for instrument in telemetry.instruments():
        for labels in instrument.labelsets():
            record: dict[str, object] = {
                "name": instrument.name,
                "kind": instrument.kind,
                "labels": dict(labels),
            }
            keyed = dict(labels)
            if isinstance(instrument, Counter):
                record["value"] = instrument.value(**keyed)
            elif isinstance(instrument, Gauge):
                record["value"] = instrument.value(**keyed)
            elif isinstance(instrument, Histogram):
                # The summary's "backend" key states how percentiles
                # were computed (exact/capped/sketch); the top-level
                # key mirrors the configured storage strategy so
                # consumers can filter without parsing summaries.
                record["backend"] = instrument.backend
                record["summary"] = instrument.summary(**keyed)
                record["buckets"] = list(instrument.buckets)
                record["bucket_counts"] = \
                    instrument.bucket_counts(**keyed)
            records.append(record)
    return records


def metrics_to_jsonl(telemetry: Telemetry) -> str:
    """One JSON object per (instrument, label set), newline-separated."""
    return "\n".join(_dumps(record)
                     for record in metric_records(telemetry))


def write_metrics_jsonl(telemetry: Telemetry, path: str) -> int:
    """Dump every metric record to ``path``; returns the record count."""
    records = metric_records(telemetry)
    with open(path, "w") as handle:
        for record in records:
            handle.write(_dumps(record) + "\n")
    return len(records)


# ----------------------------------------------------------------------
# Text snapshot
# ----------------------------------------------------------------------
def _format_labels(labels: _t.Mapping[str, object]) -> str:
    if not labels:
        return "-"
    return ",".join(f"{key}={value}"
                    for key, value in sorted(labels.items()))


def snapshot_table(telemetry: Telemetry) -> str:
    """A fixed-width table of every instrument's current state."""
    rows: list[tuple[str, str, str, str]] = []
    for record in metric_records(telemetry):
        labels = _format_labels(_t.cast(dict, record["labels"]))
        if record["kind"] == "histogram":
            summary = _t.cast(dict, record["summary"])
            if summary.get("count"):
                value = (f"n={summary['count']:.0f} "
                         f"mean={summary['mean']:.3f} "
                         f"p50={summary['p50']:.3f} "
                         f"p95={summary['p95']:.3f} "
                         f"p99={summary['p99']:.3f}")
            else:
                value = "n=0"
        else:
            value = f"{_t.cast(float, record['value']):g}"
        rows.append((_t.cast(str, record["name"]),
                     _t.cast(str, record["kind"]), labels, value))
    if not rows:
        return "(no instruments recorded)"
    headers = ("instrument", "kind", "labels", "value")
    widths = [max(len(headers[index]), *(len(row[index]) for row in rows))
              for index in range(4)]
    lines = ["  ".join(header.ljust(width)
                       for header, width in zip(headers, widths))]
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)))
    return "\n".join(lines)
