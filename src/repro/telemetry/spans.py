"""Sim-time spans: the per-request trace tree.

A span measures one stage of the DNS→AP→edge request path on the
**simulated** clock (``Simulator.now``), never the wall clock, so traces
are byte-identical across runs with the same seed.  Spans nest — one
client request yields a tree like::

    request
    ├── dns_piggyback
    └── ap_delegated          (client side)
        └── ap.request        (AP side, linked via the x-ape-trace header)
            ├── ap.edge_fetch
            └── ap.pacm_admit

Because simulated processes interleave at every ``yield``, an ambient
"current span" stack would mis-parent spans from concurrent requests.
Parents are therefore **explicit**: pass the parent span (or a
``(trace_id, span_id)`` pair recovered from a protocol header) to
:meth:`SpanLog.span`.  The context manager reads the clock on entry and
exit and records the finished span::

    with log.span("request", app="maps") as req:
        with log.span("dns_piggyback", parent=req):
            ...
"""

from __future__ import annotations

import collections
import dataclasses
import itertools
import typing as _t

from repro.errors import TelemetryError

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.sampling import TailSampler

__all__ = ["Span", "SpanLog", "SpanScope", "format_trace_parent",
           "parse_trace_parent"]

#: Anything accepted as a span parent: a live span, or the
#: ``(trace_id, span_id)`` context recovered from a wire header.
ParentLike = _t.Union["Span", tuple[int, int], None]


def format_trace_parent(span: "Span") -> str:
    """Encode a span's context for a protocol header (``trace.span``)."""
    return f"{span.trace_id}.{span.span_id}"


def parse_trace_parent(value: str | None) -> tuple[int, int] | None:
    """Decode a :func:`format_trace_parent` header; None if absent/bad."""
    if not value:
        return None
    trace, _, span = value.partition(".")
    try:
        return (int(trace), int(span))
    except ValueError:
        return None


@dataclasses.dataclass
class Span:
    """One timed stage of a request, anchored in a trace tree."""

    name: str
    span_id: int
    trace_id: int
    parent_id: int | None
    start_s: float
    end_s: float | None = None
    status: str = "ok"
    attrs: dict[str, object] = dataclasses.field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            raise TelemetryError(f"span {self.name!r} has not finished")
        return self.end_s - self.start_s

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    def set_attr(self, key: str, value: object) -> None:
        """Attach/replace one attribute on a live span."""
        self.attrs[key] = value

    @property
    def context(self) -> tuple[int, int]:
        """The ``(trace_id, span_id)`` pair used for wire propagation."""
        return (self.trace_id, self.span_id)

    def render(self) -> str:
        extras = " ".join(f"{key}={value}"
                          for key, value in sorted(self.attrs.items()))
        timing = (f"{self.start_s * 1e3:.3f}ms"
                  f"+{self.duration_s * 1e3:.3f}ms"
                  if self.finished else f"{self.start_s * 1e3:.3f}ms+...")
        body = f"{self.name} [{timing}] {extras}".rstrip()
        return f"#{self.span_id}<-{self.parent_id} {body} ({self.status})"


class SpanScope:
    """Context manager tracking one span from entry to exit."""

    def __init__(self, log: "SpanLog", name: str, parent: ParentLike,
                 attrs: dict[str, object]) -> None:
        self._log = log
        self._name = name
        self._parent = parent
        self._attrs = attrs
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._log._start(self._name, self._parent, self._attrs)
        return self._span

    def __exit__(self, exc_type: type | None, exc: BaseException | None,
                 _tb: object) -> None:
        span = self._span
        if span is None:  # pragma: no cover - enter always ran
            return
        if exc_type is not None:
            span.status = f"error:{exc_type.__name__}"
        self._log._finish(span)


class SpanLog:
    """A bounded, deterministic record of finished spans.

    Span ids are sequential (one shared counter), so exports are
    reproducible.  Spans are stored in *completion* order — children
    before parents — inside a ring of ``max_spans``; overflow drops the
    oldest finished span and bumps :attr:`dropped`.

    With a :class:`~repro.telemetry.sampling.TailSampler` attached, the
    log becomes a flight recorder: finished spans are buffered per
    trace and only committed (or discarded wholesale) when the trace's
    root finishes — see :mod:`repro.telemetry.sampling`.
    """

    def __init__(self, clock: _t.Callable[[], float],
                 max_spans: int = 100_000,
                 sampler: "TailSampler | None" = None) -> None:
        if max_spans < 1:
            raise TelemetryError(
                f"max_spans must be >= 1, got {max_spans}")
        self._clock = clock
        self.max_spans = max_spans
        self.sampler = sampler
        #: Trace id → finished-but-undecided spans (sampler mode only).
        self._pending: dict[int, list[Span]] = {}
        self._finished: collections.deque[Span] = collections.deque(
            maxlen=max_spans)
        self._ids = itertools.count(1)
        self.dropped = 0
        self.started = 0

    # -- recording ------------------------------------------------------
    def span(self, name: str, parent: ParentLike = None,
             **attrs: object) -> SpanScope:
        """A context manager opening a span at ``sim.now`` on entry."""
        return SpanScope(self, name, parent, dict(attrs))

    def _start(self, name: str, parent: ParentLike,
               attrs: dict[str, object]) -> Span:
        span_id = next(self._ids)
        if parent is None:
            trace_id, parent_id = span_id, None
        elif isinstance(parent, Span):
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = parent
        self.started += 1
        return Span(name=name, span_id=span_id, trace_id=trace_id,
                    parent_id=parent_id, start_s=self._clock(),
                    attrs=attrs)

    def _finish(self, span: Span) -> None:
        span.end_s = self._clock()
        if self.sampler is None:
            self._record(span)
            return
        bucket = self._pending.get(span.trace_id)
        if bucket is None:
            if len(self._pending) >= self.sampler.max_pending_traces:
                # Flight-recorder overflow: evict the oldest pending
                # trace (its root never finished) to stay bounded.
                oldest = next(iter(self._pending))
                evicted = self._pending.pop(oldest)
                self.sampler.evicted_traces += 1
                self.sampler.dropped_spans += len(evicted)
            bucket = self._pending[span.trace_id] = []
        bucket.append(span)
        if span.parent_id is not None:
            return
        # The trace's root finished: decide the whole trace now.
        trace = self._pending.pop(span.trace_id)
        reason, weight = self.sampler.decide(span)
        if reason is None:
            self.sampler.dropped_traces += 1
            self.sampler.dropped_spans += len(trace)
            return
        self.sampler.kept[reason] += 1
        span.attrs["sample.reason"] = reason
        span.attrs["sample.weight"] = weight
        for kept in trace:
            self._record(kept)

    def _record(self, span: Span) -> None:
        if len(self._finished) == self.max_spans:
            self.dropped += 1
        self._finished.append(span)

    # -- inspection -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._finished)

    def __iter__(self) -> _t.Iterator[Span]:
        return iter(self._finished)

    def finished(self, name: str | None = None) -> list[Span]:
        """Finished spans (completion order), optionally by name."""
        return [span for span in self._finished
                if name is None or span.name == name]

    def traces(self) -> dict[int, list[Span]]:
        """Finished spans grouped by trace, sorted by span id."""
        grouped: dict[int, list[Span]] = {}
        for span in self._finished:
            grouped.setdefault(span.trace_id, []).append(span)
        return {trace_id: sorted(spans, key=lambda span: span.span_id)
                for trace_id, spans in sorted(grouped.items())}

    def children_of(self, parent: Span) -> list[Span]:
        return [span for span in self._finished
                if span.parent_id == parent.span_id]

    def render_trace(self, trace_id: int) -> str:
        """ASCII tree of one trace, children indented under parents."""
        spans = self.traces().get(trace_id, [])
        by_parent: dict[int | None, list[Span]] = {}
        for span in spans:
            by_parent.setdefault(span.parent_id, []).append(span)
        lines: list[str] = []

        def walk(parent_id: int | None, depth: int) -> None:
            for span in by_parent.get(parent_id, []):
                lines.append("  " * depth + span.render())
                walk(span.span_id, depth + 1)

        walk(None, 0)
        # Orphans whose parent lives on another component's records
        # (cross-component links) or fell out of the ring.
        known = {span.span_id for span in spans}
        for span in spans:
            if span.parent_id is not None and span.parent_id not in known:
                lines.append(span.render() + "  (parent elsewhere)")
                walk(span.span_id, 1)
        return "\n".join(lines)

    def clear(self) -> None:
        self._finished.clear()
        self._pending.clear()
        self.dropped = 0
