"""Opt-in host profiling: how fast does the simulator itself run?

Everything else in :mod:`repro.telemetry` is clocked on simulated time;
this module is the one deliberate exception.  It measures the *host's*
execution of a run — events processed per wall second and wall
milliseconds spent per simulated second — the numbers the scaling work
(sharding, batching, async kernels) needs as its before/after yardstick.

Wall time is read exclusively through :func:`repro.perf.perf_timer`, the
repository's single blessed wall-clock seam.  The ``DET004`` lint rule
forbids direct ``time.monotonic``/``time.perf_counter`` calls anywhere
in ``repro.telemetry`` outside this allowlisted module, so stray host
time cannot leak into metric or span recording.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import TelemetryError
from repro.perf import perf_timer

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

__all__ = ["HostProfile", "HostProfileReport"]


@dataclasses.dataclass(frozen=True)
class HostProfileReport:
    """One profiled window of host execution."""

    wall_s: float
    sim_s: float
    events: int
    events_per_wall_s: float
    wall_ms_per_sim_s: float

    def render(self) -> str:
        return (f"host profile: {self.events} events in "
                f"{self.wall_s:.3f}s wall / {self.sim_s:.1f}s sim "
                f"({self.events_per_wall_s:,.0f} events/s, "
                f"{self.wall_ms_per_sim_s:.2f} wall-ms per sim-s)")


class HostProfile:
    """Stopwatch over a simulation run.

    Usage::

        profile = HostProfile(bed.sim).start()
        bed.run(until=duration)
        report = profile.stop()

    ``start``/``stop`` may wrap any window; deltas are taken against the
    kernel's ``events_processed`` counter and ``now`` at ``start``.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._elapsed: _t.Callable[[], float] | None = None
        self._events0 = 0
        self._sim0 = 0.0

    def start(self) -> "HostProfile":
        self._elapsed = perf_timer()
        self._events0 = self.sim.events_processed
        self._sim0 = self.sim.now
        return self

    def stop(self) -> HostProfileReport:
        if self._elapsed is None:
            raise TelemetryError("HostProfile.stop() before start()")
        wall_s = self._elapsed()
        events = self.sim.events_processed - self._events0
        sim_s = self.sim.now - self._sim0
        self._elapsed = None
        return HostProfileReport(
            wall_s=wall_s,
            sim_s=sim_s,
            events=events,
            events_per_wall_s=events / wall_s if wall_s > 0 else 0.0,
            wall_ms_per_sim_s=(wall_s * 1e3) / sim_s if sim_s > 0 else 0.0)
