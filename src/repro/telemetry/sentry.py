"""The regression sentry: declarative latency/throughput budgets.

``python -m repro.cli sentry`` runs one instrumented quick scenario,
evaluates a declarative budget spec against the critical-path
attribution (:mod:`repro.telemetry.analysis`), the metric registry, and
(optionally) the host profile, writes ``BENCH_obs.json``, and exits
non-zero on any violation — the paper's "millisecond-level, almost for
free" claim as a CI gate.

Budgets live in ``pyproject.toml``::

    [tool.repro-sentry]
    budgets = [
        "stage:ap-hit/edge_fetch/count <= 0",
        "stage:ap-hit/total/p95 <= 20",
        "issues <= 0",
    ]

Each budget is ``SELECTOR <= LIMIT`` or ``SELECTOR >= LIMIT`` with one
of six selector forms:

``stage:<source>/<stage>/<stat>``
    From the attribution summary — ``source`` is a request-path source
    label (``ap-hit``, ``edge``, ... or ``*`` for all), ``stage`` a
    span name or ``total``, ``stat`` one of count/mean/p50/p95/p99/max.
    A missing stage reads as ``count = 0`` (that *is* the claim "the
    hit path never touches the edge"); other stats on a missing stage
    are violations.
``metric:<name>{k=v,...}/<stat>``
    From the registry — counters/gauges use stat ``value`` (summed over
    matching label sets); histograms use a summary stat.
``profile:<stat>``
    From the host profile (``events_per_wall_s``,
    ``wall_ms_per_sim_s``).  Wall-clock derived, hence nondeterministic:
    these verdicts are segregated under the report's ``timings`` key
    and skipped entirely when profiling is off.
``kernel:events_per_s``
    The scheduler microbenchmark's throughput floor.  Validated here
    but **evaluated by** ``benchmarks/test_kernel.py`` (which writes
    ``BENCH_kernel.json``); the obs-run sentry skips these.
``obs:overhead_pct``
    The telemetry overhead governor: recording-path slowdown of the
    sketch backend versus a NULL-telemetry run, in percent.  Validated
    here but **evaluated by** ``benchmarks/test_telemetry_overhead.py``
    (which amends ``BENCH_obs.json``); the obs-run sentry skips these.
``issues``
    The taxonomy/orphan issue count from the span-tree builder.

The written report is byte-deterministic for a given seed *except* the
``timings`` subtree, which ``tools/check.sh`` strips before comparing
two same-seed runs.
"""

from __future__ import annotations

import dataclasses
import json
import typing as _t

from repro.errors import ConfigError
from repro.experiments.common import ExperimentTable
from repro.telemetry.analysis import AttributionReport, STATS
from repro.telemetry.instruments import Counter, Gauge, Histogram
from repro.telemetry.registry import Telemetry

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.obs import ObsRun

__all__ = ["Budget", "BudgetResult", "parse_budget", "load_budgets",
           "load_live_budgets", "evaluate_budgets",
           "evaluate_metric_records", "run_live_sentry",
           "sentry_report", "run_sentry", "DEFAULT_REPORT_PATH"]

DEFAULT_REPORT_PATH = "BENCH_obs.json"

_OPS: dict[str, _t.Callable[[float, float], bool]] = {
    "<=": lambda value, limit: value <= limit,
    ">=": lambda value, limit: value >= limit,
}


@dataclasses.dataclass(frozen=True)
class Budget:
    """One declarative bound: ``selector op limit``."""

    selector: str
    op: str
    limit: float

    @property
    def is_profile(self) -> bool:
        """Wall-clock derived → nondeterministic → ``timings``-only."""
        return self.selector.startswith("profile:")

    def render(self) -> str:
        return f"{self.selector} {self.op} {self.limit:g}"


@dataclasses.dataclass(frozen=True)
class BudgetResult:
    """One evaluated budget."""

    budget: Budget
    #: Observed value; None when the selector resolved to nothing.
    value: float | None
    ok: bool

    def to_json_dict(self) -> dict[str, object]:
        return {
            "budget": self.budget.render(),
            "value": (None if self.value is None
                      else round(self.value, 6)),
            "ok": self.ok,
        }


def parse_budget(text: str) -> Budget:
    """Parse ``"SELECTOR <= LIMIT"`` / ``"SELECTOR >= LIMIT"``."""
    for op in _OPS:
        selector, sep, limit = text.partition(op)
        if sep:
            selector = selector.strip()
            limit = limit.strip()
            if not selector or not limit:
                break
            try:
                bound = float(limit)
            except ValueError:
                raise ConfigError(
                    f"budget {text!r}: limit {limit!r} is not a number")
            _validate_selector(selector, text)
            return Budget(selector=selector, op=op, limit=bound)
    raise ConfigError(
        f"budget {text!r}: expected 'SELECTOR <= LIMIT' or "
        f"'SELECTOR >= LIMIT'")


def _validate_selector(selector: str, source: str) -> None:
    if selector == "issues":
        return
    kind, sep, rest = selector.partition(":")
    if not sep or kind not in ("stage", "metric", "profile", "kernel",
                               "obs", "lint"):
        raise ConfigError(
            f"budget {source!r}: unknown selector {selector!r} "
            f"(expected stage:/metric:/profile:/kernel:/obs:/lint: or "
            f"'issues')")
    if kind == "stage":
        parts = rest.split("/")
        if len(parts) != 3 or not all(parts):
            raise ConfigError(
                f"budget {source!r}: stage selector needs "
                f"<source>/<stage>/<stat>")
        if parts[2] not in STATS:
            raise ConfigError(
                f"budget {source!r}: stat {parts[2]!r} not in "
                f"{'/'.join(STATS)}")
    elif kind == "metric":
        name, sep, stat = rest.rpartition("/")
        if not sep or not name or not stat:
            raise ConfigError(
                f"budget {source!r}: metric selector needs "
                f"<name>[{{k=v,...}}]/<stat>")
    elif kind == "profile":
        if rest not in ("events_per_wall_s", "wall_ms_per_sim_s"):
            raise ConfigError(
                f"budget {source!r}: profile stat must be "
                f"events_per_wall_s or wall_ms_per_sim_s")
    elif kind == "kernel":
        # Gated by benchmarks/test_kernel.py against BENCH_kernel.json;
        # the obs-run sentry has no scheduler microbenchmark to check.
        if rest != "events_per_s":
            raise ConfigError(
                f"budget {source!r}: kernel stat must be events_per_s")
    elif kind == "obs":
        # Gated by benchmarks/test_telemetry_overhead.py; the obs-run
        # sentry measures sim time, not recording-path wall overhead.
        if rest != "overhead_pct":
            raise ConfigError(
                f"budget {source!r}: obs stat must be overhead_pct")
    elif kind == "lint":
        # Gated by benchmarks/test_lint_wall.py against BENCH_lint.json:
        # the warm-cache whole-program lint must stay an editor-loop
        # tool, not a batch job.
        if rest != "wall_ms":
            raise ConfigError(
                f"budget {source!r}: lint stat must be wall_ms")


def load_budgets(pyproject_path: str,
                 key: str = "budgets") -> list[Budget]:
    """Budgets from ``[tool.repro-sentry].<key>`` in pyproject.

    ``budgets`` gates the simulated sentry run; ``live-budgets`` holds
    the extra gates the parity harness checks against the *live*
    engine's telemetry (``repro.cli parity``, docs/live.md) — live-only
    metrics would resolve as violations on a sim run, so they get
    their own list.
    """
    import tomllib

    with open(pyproject_path, "rb") as handle:
        document = tomllib.load(handle)
    section = document.get("tool", {}).get("repro-sentry", {})
    unknown = set(section) - {"budgets", "live-budgets"}
    if unknown:
        raise ConfigError(
            f"[tool.repro-sentry]: unknown keys {sorted(unknown)}")
    budgets = section.get(key, [])
    if not isinstance(budgets, list) \
            or not all(isinstance(item, str) for item in budgets):
        raise ConfigError(
            f"[tool.repro-sentry].{key} must be a list of strings")
    return [parse_budget(item) for item in budgets]


def load_live_budgets(pyproject_path: str) -> list[Budget]:
    """The gates ``repro.cli parity`` checks against the live run."""
    return load_budgets(pyproject_path, key="live-budgets")


# ----------------------------------------------------------------------
# Selector resolution
# ----------------------------------------------------------------------
def _parse_metric_selector(rest: str) -> tuple[str, dict[str, str], str]:
    spec, _sep, stat = rest.rpartition("/")
    labels: dict[str, str] = {}
    name = spec
    if spec.endswith("}"):
        name, brace, body = spec.partition("{")
        if not brace:
            raise ConfigError(f"metric selector {rest!r}: bad labels")
        for pair in body[:-1].split(","):
            if not pair:
                continue
            key, sep, value = pair.partition("=")
            if not sep:
                raise ConfigError(
                    f"metric selector {rest!r}: label {pair!r} "
                    f"needs k=v")
            labels[key.strip()] = value.strip()
    return name, labels, stat


def _resolve_metric(telemetry: Telemetry, rest: str) -> float | None:
    name, labels, stat = _parse_metric_selector(rest)
    instrument = telemetry.get(name)
    if instrument is None:
        return None
    if isinstance(instrument, Histogram):
        summary = instrument.summary(**labels)
        return summary.get(stat)
    if isinstance(instrument, (Counter, Gauge)):
        if stat != "value":
            return None
        if isinstance(instrument, Counter):
            return instrument.total(**labels)
        return instrument.value(**labels)
    return None


def _resolve_stage(report: AttributionReport, rest: str) -> float | None:
    source, stage, stat = rest.split("/")
    stages = report.summary().get(source)
    if stages is None:
        return None
    stats = stages.get(stage)
    if stats is None:
        # A stage that never ran: its sample count is exactly zero —
        # the checkable form of "the hit path excludes edge_fetch".
        return 0.0 if stat == "count" else None
    return stats.get(stat)


def evaluate_budgets(budgets: _t.Sequence[Budget], run: "ObsRun",
                     report: AttributionReport) -> list[BudgetResult]:
    """Resolve and check every budget against one instrumented run.

    ``profile:`` budgets are skipped (not failed) when the run was not
    profiled; everything else resolves or fails.
    """
    results: list[BudgetResult] = []
    for budget in budgets:
        value: float | None
        if budget.selector == "issues":
            value = float(len(report.issues))
        elif budget.selector.startswith("stage:"):
            value = _resolve_stage(report, budget.selector[6:])
        elif budget.selector.startswith("metric:"):
            value = _resolve_metric(run.telemetry, budget.selector[7:])
        elif budget.selector.startswith("profile:"):
            if run.profile is None:
                continue
            value = _t.cast(
                float, getattr(run.profile, budget.selector[8:]))
        elif budget.selector.startswith("kernel:"):
            # Evaluated by the kernel microbenchmark, not the obs run.
            continue
        elif budget.selector.startswith("obs:"):
            # Evaluated by the telemetry-overhead benchmark.
            continue
        elif budget.selector.startswith("lint:"):
            # Evaluated by the lint wall-time benchmark.
            continue
        else:  # pragma: no cover - parse_budget rejects these
            value = None
        ok = value is not None and _OPS[budget.op](value, budget.limit)
        results.append(BudgetResult(budget=budget, value=value, ok=ok))
    return results


def evaluate_metric_records(budgets: _t.Sequence[Budget],
                            records: _t.Sequence[_t.Mapping[str, object]],
                            ) -> list[BudgetResult]:
    """Check ``metric:`` budgets against exported metric JSONL records.

    The offline half of the live gate: a ``repro.cli live
    --export-metrics`` run leaves a records file, and this evaluates
    the ``live-budgets`` against it without re-running anything.
    ``value`` stats sum matching records (the subset-sum reading of
    ``Counter.total``; no matching records reads as an honest 0, the
    state of a pre-registered counter that never fired).  Histogram
    stats need the records: ``count`` sums across matching series,
    other stats resolve only when exactly one series matches (summaries
    of different label sets cannot be merged after export).  Non-metric
    budgets are skipped.
    """
    import math

    results: list[BudgetResult] = []
    for budget in budgets:
        if not budget.selector.startswith("metric:"):
            continue
        name, labels, stat = _parse_metric_selector(budget.selector[7:])
        want = set(labels.items())
        matching = [
            record for record in records
            if record.get("name") == name and want <= set(
                _t.cast(dict, record.get("labels", {})).items())]
        value: float | None
        if stat == "value":
            value = math.fsum(
                _t.cast(float, record["value"]) for record in matching
                if "value" in record)
        else:
            summaries = [_t.cast(dict, record["summary"])
                         for record in matching
                         if record.get("kind") == "histogram"]
            if stat == "count":
                value = math.fsum(summary.get("count", 0.0)
                                  for summary in summaries) \
                    if summaries else None
            elif len(summaries) == 1:
                value = _t.cast("float | None",
                                summaries[0].get(stat))
            else:
                value = None
        ok = value is not None and _OPS[budget.op](value, budget.limit)
        results.append(BudgetResult(budget=budget, value=value, ok=ok))
    return results


def run_live_sentry(metrics_path: str,
                    pyproject: str = "pyproject.toml",
                    extra_budgets: _t.Sequence[str] = (),
                    ) -> tuple[list[ExperimentTable], int]:
    """The ``repro.cli sentry --live-metrics`` core.

    Loads the ``live-budgets`` from pyproject, evaluates them against
    the metric JSONL a live run exported, and returns the verdict
    panel plus the exit code (1 on any violation or unresolved budget)
    — the offline gate ``tools/check.sh`` points at a stall-injected
    run.
    """
    from repro.telemetry.analysis import load_metric_records

    budgets = load_live_budgets(pyproject)
    budgets.extend(parse_budget(text) for text in extra_budgets)
    records = load_metric_records(metrics_path)
    results = evaluate_metric_records(budgets, records)
    table = budget_table(results)
    table.title = "sentry: live-budget verdicts"
    table.notes.append(
        f"evaluated against {len(records)} metric records from "
        f"{metrics_path}")
    violations = [result for result in results if not result.ok]
    if violations:
        table.notes.append(f"{len(violations)} budget violation(s)")
    return [table], (1 if violations else 0)


# ----------------------------------------------------------------------
# Report assembly
# ----------------------------------------------------------------------
def budget_table(results: _t.Sequence[BudgetResult]) -> ExperimentTable:
    table = ExperimentTable(
        title="sentry: budget verdicts",
        columns=["budget", "value", "verdict"])
    for result in results:
        table.add_row(
            budget=result.budget.render(),
            value=("(unresolved)" if result.value is None
                   else f"{result.value:g}"),
            verdict="ok" if result.ok else "VIOLATION")
    if not results:
        table.notes.append("no budgets configured "
                           "([tool.repro-sentry] in pyproject.toml)")
    return table


def sentry_report(run: "ObsRun", report: AttributionReport,
                  results: _t.Sequence[BudgetResult],
                  ) -> dict[str, object]:
    """The ``BENCH_obs.json`` document.

    Deterministic for a given seed except the ``timings`` subtree
    (host-profile numbers and ``profile:`` budget verdicts), which
    comparisons must strip.
    """
    deterministic = [result for result in results
                     if not result.budget.is_profile]
    timed = [result for result in results if result.budget.is_profile]
    document: dict[str, object] = {
        "scenario": {
            "seed": run.seed,
            "duration_s": run.duration_s,
            "system": "APE-CACHE",
            "spans": len(run.telemetry.spans),
            "instruments": len(run.telemetry.instruments()),
        },
        "attribution": report.to_json_dict(),
        "budgets": [result.to_json_dict() for result in deterministic],
        "ok": all(result.ok for result in deterministic),
    }
    timings: dict[str, object] = {}
    if run.profile is not None:
        timings["host_profile"] = {
            "wall_s": run.profile.wall_s,
            "sim_s": run.profile.sim_s,
            "events": run.profile.events,
            "events_per_wall_s": run.profile.events_per_wall_s,
            "wall_ms_per_sim_s": run.profile.wall_ms_per_sim_s,
        }
    if timed:
        timings["budgets"] = [result.to_json_dict()
                              for result in timed]
        timings["ok"] = all(result.ok for result in timed)
    document["timings"] = timings
    return document


def write_report(document: dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True, indent=2)
        handle.write("\n")


def run_sentry(quick: bool = True, seed: int = 0,
               output: str = DEFAULT_REPORT_PATH,
               pyproject: str = "pyproject.toml",
               extra_budgets: _t.Sequence[str] = (),
               profile: bool = False,
               ) -> tuple[list[ExperimentTable], int]:
    """The ``repro.cli sentry`` core: run, judge, write, exit-code.

    Returns the rendered panels plus the process exit code (0 = every
    budget held, 1 = at least one violation, including ``profile:``
    budgets when profiling ran).
    """
    from repro.telemetry.obs import instrumented_run

    budgets = load_budgets(pyproject)
    budgets.extend(parse_budget(text) for text in extra_budgets)
    run = instrumented_run(quick=quick, seed=seed, profile=profile)
    report = run.attribution()
    results = evaluate_budgets(budgets, run, report)

    document = sentry_report(run, report, results)
    write_report(document, output)

    tables = [report.table("sentry: critical-path latency attribution"),
              budget_table(results)]
    tables[1].notes.append(f"report written to {output}")
    if run.profile is not None:
        tables[1].notes.append(run.profile.render())
    violations = [result for result in results if not result.ok]
    if violations:
        tables[1].notes.append(
            f"{len(violations)} budget violation(s)")
    return tables, (1 if violations else 0)
