"""Tail-based span sampling: keep the traces worth keeping.

At fleet scale, materializing a full span tree for every request is the
dominant observability cost — and almost all of those trees describe
boring, fast, successful requests.  :class:`TailSampler` turns the span
log into a **flight recorder**: finished spans are buffered per trace
until the trace's *root* span finishes, and only then is the whole
trace either committed to the log or discarded.  The decision is made
with the complete trace in hand (hence "tail-based"), so the kept set
is exactly:

* **tail** — the root's duration breached ``threshold_ms`` (sim-ms);
* **error** — the root finished with a non-``ok`` status;
* **sampled** — a deterministic 1-in-``sample_every`` baseline (the
  1st, N+1th, 2N+1th... completed root), kept so the *fast* path stays
  observable and aggregate attribution stays unbiased.

Kept roots are annotated with ``sample.reason`` and ``sample.weight``
attributes: tail/error keeps represent only themselves (weight 1),
while each sampled keep stands in for ``sample_every`` requests.  The
analysis layer (:func:`repro.telemetry.analysis.attribute`) reads the
weight so per-stage attribution still telescopes to fleet totals, and
``diff_runs``/``tracefmt`` surface it alongside the trace.

Everything is deterministic: decisions depend only on sim-time
durations, statuses, and completion order — all seed-stable — so two
same-seed runs keep byte-identical trace sets.

The pending buffer is bounded (``max_pending_traces``); if a trace's
root never finishes (a request still in flight at ring capacity), the
oldest pending trace is evicted and counted in :attr:`evicted_traces`.
Spans that finish *after* their root (outside the documented taxonomy)
land in a pending bucket that never flushes; the sim's span trees
close children before parents, so this does not occur on the
instrumented request path.
"""

from __future__ import annotations

import typing as _t

from repro.errors import TelemetryError

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.spans import Span

__all__ = ["TailSampler"]


class TailSampler:
    """The keep/drop policy applied when a trace's root span finishes."""

    def __init__(self, threshold_ms: float | None = None,
                 sample_every: int = 0,
                 max_pending_traces: int = 4096) -> None:
        if threshold_ms is not None and threshold_ms < 0:
            raise TelemetryError(
                f"threshold_ms must be >= 0, got {threshold_ms!r}")
        if sample_every < 0:
            raise TelemetryError(
                f"sample_every must be >= 0, got {sample_every!r}")
        if max_pending_traces < 1:
            raise TelemetryError(
                f"max_pending_traces must be >= 1, "
                f"got {max_pending_traces!r}")
        if threshold_ms is None and not sample_every:
            raise TelemetryError(
                "a sampler that keeps nothing records nothing: set "
                "threshold_ms and/or sample_every")
        self.threshold_ms = threshold_ms
        self.sample_every = sample_every
        self.max_pending_traces = max_pending_traces
        #: Completed roots seen (the deterministic 1-in-N clock).
        self.roots_seen = 0
        #: Traces committed to the log, by reason.
        self.kept = {"tail": 0, "error": 0, "sampled": 0}
        #: Whole traces discarded at the root decision.
        self.dropped_traces = 0
        #: Spans inside discarded traces.
        self.dropped_spans = 0
        #: Pending traces evicted because the buffer overflowed.
        self.evicted_traces = 0

    def decide(self, root: "Span") -> tuple[str | None, float]:
        """``(reason, weight)`` for a finished root; reason None = drop.

        Must be called exactly once per completed root — it advances
        the deterministic 1-in-N sampling clock.
        """
        self.roots_seen += 1
        if root.status != "ok":
            return ("error", 1.0)
        if self.threshold_ms is not None \
                and root.duration_s * 1e3 >= self.threshold_ms:
            return ("tail", 1.0)
        if self.sample_every \
                and (self.roots_seen - 1) % self.sample_every == 0:
            return ("sampled", float(self.sample_every))
        return (None, 0.0)

    @property
    def kept_traces(self) -> int:
        return sum(self.kept.values())

    def stats(self) -> dict[str, int]:
        """Deterministic counters for panels and exports."""
        return {
            "roots_seen": self.roots_seen,
            "kept_tail": self.kept["tail"],
            "kept_error": self.kept["error"],
            "kept_sampled": self.kept["sampled"],
            "dropped_traces": self.dropped_traces,
            "dropped_spans": self.dropped_spans,
            "evicted_traces": self.evicted_traces,
        }

    def __repr__(self) -> str:
        return (f"<TailSampler threshold_ms={self.threshold_ms} "
                f"sample_every={self.sample_every} "
                f"kept={self.kept_traces}/{self.roots_seen}>")
