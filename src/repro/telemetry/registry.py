"""The instrument registry and the no-op null backend.

:class:`Telemetry` is the single recording path: components ask it for
named instruments (created lazily, shared by name) and open sim-time
spans through it.  One instance per testbed, clocked off the testbed's
:class:`~repro.sim.kernel.Simulator`, observes every tier — client
runtimes, the AP, the network — so cross-tier traces share one id space.

Un-instrumented runs pay (almost) nothing: every component defaults to
:data:`NULL`, a shared backend whose instruments and spans are inert
singletons — no samples retained, no spans recorded, no per-call
allocation beyond the call itself.
"""

from __future__ import annotations

import typing as _t

from repro.errors import TelemetryError
from repro.telemetry.instruments import (
    HISTOGRAM_BACKENDS,
    Counter,
    Gauge,
    Histogram,
    Instrument,
)
from repro.telemetry.sketch import DEFAULT_RELATIVE_ERROR
from repro.telemetry.spans import ParentLike, Span, SpanLog, SpanScope

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator
    from repro.telemetry.sampling import TailSampler

__all__ = ["Telemetry", "NullTelemetry", "NULL"]

#: ``state_dict()["kind"]`` → instrument class, for shard revival.
_KINDS: dict[str, type[Instrument]] = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
}


def _zero_clock() -> float:
    return 0.0


class Telemetry:
    """A registry of named instruments plus the span log.

    ``clock`` is a :class:`Simulator` (spans and snapshots read its
    ``now``) or any zero-argument callable; ``None`` pins the clock to
    zero, which suits pure unit tests of instruments.

    ``max_samples`` is the default retained-raw-sample cap applied to
    every histogram created through :meth:`histogram` (``None`` =
    unbounded, the historical behaviour).  Capped drops are tallied in
    the ``telemetry.samples_dropped`` counter, labelled by instrument.

    ``histogram_backend`` selects the default histogram storage:
    ``"exact"`` (raw samples, exact percentiles) or ``"sketch"``
    (fixed-memory :class:`~repro.telemetry.sketch.QuantileSketch` per
    label set, percentiles within ``sketch_relative_error`` of exact —
    the mergeable fleet-scale backend).  ``sampler`` attaches a
    :class:`~repro.telemetry.sampling.TailSampler` so only
    slow/erroring/1-in-N request traces are committed to the span log.
    """

    enabled = True

    def __init__(self, clock: "Simulator | _t.Callable[[], float] | None"
                 = None, max_spans: int = 100_000,
                 max_samples: int | None = None,
                 histogram_backend: str = "exact",
                 sketch_relative_error: float = DEFAULT_RELATIVE_ERROR,
                 sampler: "TailSampler | None" = None) -> None:
        if clock is None:
            self._clock: _t.Callable[[], float] = _zero_clock
        elif callable(clock):
            self._clock = clock
        else:
            self._clock = lambda: clock.now
        if histogram_backend not in HISTOGRAM_BACKENDS:
            raise TelemetryError(
                f"unknown histogram backend {histogram_backend!r} "
                f"(expected one of {'/'.join(HISTOGRAM_BACKENDS)})")
        self._instruments: dict[str, Instrument] = {}
        self.max_samples = max_samples
        self.histogram_backend = histogram_backend
        self.sketch_relative_error = sketch_relative_error
        self.spans = SpanLog(self._clock, max_spans=max_spans,
                             sampler=sampler)
        # Pre-registered (not lazily, like everything else) so the
        # default sentry budget `metric:telemetry.samples_dropped/value
        # <= 0` resolves to an honest zero instead of "unresolved" on
        # runs that never dropped a sample.  Zero label sets recorded
        # means zero exported records, so JSONL dumps are unchanged.
        self._get("telemetry.samples_dropped", Counter,
                  help="histogram samples not retained "
                       "(max_samples cap)")

    def _count_dropped_sample(self, instrument: str) -> None:
        self.counter(
            "telemetry.samples_dropped",
            "histogram samples not retained (max_samples cap)",
        ).inc(instrument=instrument)

    # -- clock ----------------------------------------------------------
    def now(self) -> float:
        """The registry's (simulated) clock reading."""
        return self._clock()

    # -- instruments ----------------------------------------------------
    def _get(self, name: str, cls: type[Instrument],
             **kwargs: object) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = cls(name, **kwargs)
        elif not isinstance(instrument, cls):
            raise TelemetryError(
                f"instrument {name!r} is a {instrument.kind}, "
                f"requested {cls.kind}")
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return _t.cast(Counter, self._get(name, Counter, help=help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return _t.cast(Gauge, self._get(name, Gauge, help=help))

    def histogram(self, name: str, help: str = "",
                  buckets: _t.Sequence[float] | None = None,
                  max_samples: int | None = None,
                  backend: str | None = None) -> Histogram:
        """A histogram; ``max_samples``/``backend`` override defaults."""
        resolved = self.histogram_backend if backend is None else backend
        cap = self.max_samples if max_samples is None else max_samples
        if resolved == "sketch":
            cap = None  # the sketch is fixed-memory already
        return _t.cast(Histogram, self._get(
            name, Histogram, help=help, buckets=buckets,
            max_samples=cap, backend=resolved,
            sketch_relative_error=self.sketch_relative_error,
            on_drop=self._count_dropped_sample))

    def instruments(self) -> list[Instrument]:
        """Every registered instrument, sorted by name."""
        return [self._instruments[name]
                for name in sorted(self._instruments)]

    def get(self, name: str) -> Instrument | None:
        return self._instruments.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    # -- merging --------------------------------------------------------
    def state_dict(self) -> dict[str, object]:
        """JSON-able snapshot of every instrument: the shard hand-off.

        Spans are *not* included — span/trace ids are per-registry
        sequences, so merging logs would collide ids; shards keep (and
        sample) their own span logs while metrics roll up.
        """
        return {"instruments": {
            name: self._instruments[name].state_dict()
            for name in sorted(self._instruments)}}

    def merge_state(self, state: _t.Mapping[str, object]) -> "Telemetry":
        """Fold one :meth:`state_dict` shard into this registry.

        Instruments are created on demand (with the shard's own
        configuration) and merged by name; a kind clash — the shard's
        ``requests`` is a counter, ours is a gauge — raises.  The fold
        is associative and commutative: any merge order over the same
        shards yields byte-identical exports (docs/telemetry.md).
        """
        for name, istate in sorted(_t.cast(
                dict, state.get("instruments", {})).items()):
            kind = _t.cast(str, istate["kind"])
            cls = _KINDS.get(kind)
            if cls is None:
                raise TelemetryError(
                    f"shard instrument {name!r} has unknown kind "
                    f"{kind!r}")
            mine = self._instruments.get(name)
            if mine is None:
                if cls is Histogram:
                    mine = Histogram(
                        name, help=_t.cast(str, istate["help"]),
                        buckets=_t.cast(list, istate["buckets"]),
                        max_samples=_t.cast(
                            "int | None", istate["max_samples"]),
                        backend=_t.cast(str, istate["backend"]),
                        sketch_relative_error=_t.cast(
                            float, istate["sketch_relative_error"]),
                        on_drop=self._count_dropped_sample)
                else:
                    mine = cls(name, help=_t.cast(str, istate["help"]))
                self._instruments[name] = mine
            elif mine.kind != kind:
                raise TelemetryError(
                    f"cannot merge shard {kind} {name!r} into existing "
                    f"{mine.kind}")
            mine.merge_state(istate)
        return self

    def merge(self, other: "Telemetry") -> "Telemetry":
        """Fold another registry's instruments into this one.

        One code path with the cross-process fold: implemented as
        ``merge_state(other.state_dict())``.
        """
        return self.merge_state(other.state_dict())

    @classmethod
    def from_states(cls, states: _t.Iterable[_t.Mapping[str, object]],
                    ) -> "Telemetry":
        """A fresh registry folding the given shard snapshots."""
        merged = cls()
        for state in states:
            merged.merge_state(state)
        return merged

    # -- spans ----------------------------------------------------------
    def span(self, name: str, parent: ParentLike = None,
             **attrs: object) -> SpanScope:
        """Open a sim-time span (context manager); see :mod:`.spans`."""
        return self.spans.span(name, parent=parent, **attrs)

    def __repr__(self) -> str:
        return (f"<Telemetry instruments={len(self._instruments)} "
                f"spans={len(self.spans)}>")


class _NullInstrument(Counter, Gauge, Histogram):
    """One inert object quacking like every instrument type."""

    kind = "null"

    def __init__(self) -> None:  # pylint: disable=super-init-not-called
        self.name = "null"
        self.help = ""
        self.buckets = ()
        self.backend = "exact"
        self.max_samples = None

    # Recording is a no-op; reads report emptiness.
    def inc(self, amount: float = 1.0, **labels: object) -> None:
        pass

    def set(self, value: float, **labels: object) -> None:
        pass

    def add(self, delta: float, **labels: object) -> None:
        pass

    def observe(self, value: float, **labels: object) -> None:
        pass

    def value(self, **labels: object) -> float:
        return 0.0

    def total(self, **labels: object) -> float:
        return 0.0

    def samples(self, **labels: object) -> list[float]:
        return []

    def count(self, **labels: object) -> int:
        return 0

    def sum(self, **labels: object) -> float:
        return 0.0

    def dropped(self, **labels: object) -> int:
        return 0

    def mean(self, **labels: object) -> float:
        return 0.0

    def percentile(self, q: float, **labels: object) -> float:
        return 0.0

    def bucket_counts(self, **labels: object) -> list[int]:
        return []

    def labelsets(self) -> list:
        return []

    def summary(self, **labels: object) -> dict[str, object]:
        return {"count": 0.0}

    def state_dict(self) -> dict[str, object]:
        return {"kind": "null"}

    def merge_state(self, state: _t.Mapping[str, object]) -> None:
        pass

    def merge(self, other: Instrument) -> Instrument:
        return self


class _NullSpanScope:
    """A reusable no-op span context manager."""

    __slots__ = ("_span",)

    def __init__(self) -> None:
        # One shared inert span: never finished into any log.
        self._span = Span(name="null", span_id=0, trace_id=0,
                          parent_id=None, start_s=0.0, end_s=0.0)

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *_exc: object) -> None:
        pass


class NullTelemetry(Telemetry):
    """The no-op backend un-instrumented components default to.

    Hands out shared inert singletons, so hot paths stay allocation-free
    when nobody asked for telemetry.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(clock=None, max_spans=1)
        self._null_instrument = _NullInstrument()
        self._null_scope = _NullSpanScope()

    def counter(self, name: str, help: str = "") -> Counter:
        return self._null_instrument

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._null_instrument

    def histogram(self, name: str, help: str = "",
                  buckets: _t.Sequence[float] | None = None,
                  max_samples: int | None = None,
                  backend: str | None = None) -> Histogram:
        return self._null_instrument

    def span(self, name: str, parent: ParentLike = None,
             **attrs: object) -> SpanScope:
        return _t.cast(SpanScope, self._null_scope)

    def state_dict(self) -> dict[str, object]:
        return {"instruments": {}}

    def merge_state(self, state: _t.Mapping[str, object]) -> "Telemetry":
        raise TelemetryError(
            "the null backend cannot absorb shards; merge into a real "
            "Telemetry registry")

    def merge(self, other: "Telemetry") -> "Telemetry":
        raise TelemetryError(
            "the null backend cannot absorb shards; merge into a real "
            "Telemetry registry")

    def __repr__(self) -> str:
        return "<NullTelemetry>"


#: The process-wide null backend; safe to share (it records nothing).
NULL = NullTelemetry()
