"""The instrument registry and the no-op null backend.

:class:`Telemetry` is the single recording path: components ask it for
named instruments (created lazily, shared by name) and open sim-time
spans through it.  One instance per testbed, clocked off the testbed's
:class:`~repro.sim.kernel.Simulator`, observes every tier — client
runtimes, the AP, the network — so cross-tier traces share one id space.

Un-instrumented runs pay (almost) nothing: every component defaults to
:data:`NULL`, a shared backend whose instruments and spans are inert
singletons — no samples retained, no spans recorded, no per-call
allocation beyond the call itself.
"""

from __future__ import annotations

import typing as _t

from repro.errors import TelemetryError
from repro.telemetry.instruments import (
    Counter,
    Gauge,
    Histogram,
    Instrument,
)
from repro.telemetry.spans import ParentLike, Span, SpanLog, SpanScope

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

__all__ = ["Telemetry", "NullTelemetry", "NULL"]


def _zero_clock() -> float:
    return 0.0


class Telemetry:
    """A registry of named instruments plus the span log.

    ``clock`` is a :class:`Simulator` (spans and snapshots read its
    ``now``) or any zero-argument callable; ``None`` pins the clock to
    zero, which suits pure unit tests of instruments.

    ``max_samples`` is the default retained-raw-sample cap applied to
    every histogram created through :meth:`histogram` (``None`` =
    unbounded, the historical behaviour).  Capped drops are tallied in
    the ``telemetry.samples_dropped`` counter, labelled by instrument.
    """

    enabled = True

    def __init__(self, clock: "Simulator | _t.Callable[[], float] | None"
                 = None, max_spans: int = 100_000,
                 max_samples: int | None = None) -> None:
        if clock is None:
            self._clock: _t.Callable[[], float] = _zero_clock
        elif callable(clock):
            self._clock = clock
        else:
            self._clock = lambda: clock.now
        self._instruments: dict[str, Instrument] = {}
        self.max_samples = max_samples
        self.spans = SpanLog(self._clock, max_spans=max_spans)

    def _count_dropped_sample(self, instrument: str) -> None:
        self.counter(
            "telemetry.samples_dropped",
            "histogram samples not retained (max_samples cap)",
        ).inc(instrument=instrument)

    # -- clock ----------------------------------------------------------
    def now(self) -> float:
        """The registry's (simulated) clock reading."""
        return self._clock()

    # -- instruments ----------------------------------------------------
    def _get(self, name: str, cls: type[Instrument],
             **kwargs: object) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = cls(name, **kwargs)
        elif not isinstance(instrument, cls):
            raise TelemetryError(
                f"instrument {name!r} is a {instrument.kind}, "
                f"requested {cls.kind}")
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return _t.cast(Counter, self._get(name, Counter, help=help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return _t.cast(Gauge, self._get(name, Gauge, help=help))

    def histogram(self, name: str, help: str = "",
                  buckets: _t.Sequence[float] | None = None,
                  max_samples: int | None = None) -> Histogram:
        """A histogram; ``max_samples`` overrides the registry default."""
        cap = self.max_samples if max_samples is None else max_samples
        return _t.cast(Histogram, self._get(
            name, Histogram, help=help, buckets=buckets,
            max_samples=cap, on_drop=self._count_dropped_sample))

    def instruments(self) -> list[Instrument]:
        """Every registered instrument, sorted by name."""
        return [self._instruments[name]
                for name in sorted(self._instruments)]

    def get(self, name: str) -> Instrument | None:
        return self._instruments.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    # -- spans ----------------------------------------------------------
    def span(self, name: str, parent: ParentLike = None,
             **attrs: object) -> SpanScope:
        """Open a sim-time span (context manager); see :mod:`.spans`."""
        return self.spans.span(name, parent=parent, **attrs)

    def __repr__(self) -> str:
        return (f"<Telemetry instruments={len(self._instruments)} "
                f"spans={len(self.spans)}>")


class _NullInstrument(Counter, Gauge, Histogram):
    """One inert object quacking like every instrument type."""

    kind = "null"

    def __init__(self) -> None:  # pylint: disable=super-init-not-called
        self.name = "null"
        self.help = ""
        self.buckets = ()

    # Recording is a no-op; reads report emptiness.
    def inc(self, amount: float = 1.0, **labels: object) -> None:
        pass

    def set(self, value: float, **labels: object) -> None:
        pass

    def add(self, delta: float, **labels: object) -> None:
        pass

    def observe(self, value: float, **labels: object) -> None:
        pass

    def value(self, **labels: object) -> float:
        return 0.0

    def total(self, **labels: object) -> float:
        return 0.0

    def samples(self, **labels: object) -> list[float]:
        return []

    def count(self, **labels: object) -> int:
        return 0

    def sum(self, **labels: object) -> float:
        return 0.0

    def dropped(self, **labels: object) -> int:
        return 0

    def mean(self, **labels: object) -> float:
        return 0.0

    def percentile(self, q: float, **labels: object) -> float:
        return 0.0

    def bucket_counts(self, **labels: object) -> list[int]:
        return []

    def labelsets(self) -> list:
        return []

    def summary(self, **labels: object) -> dict[str, float]:
        return {"count": 0.0}


class _NullSpanScope:
    """A reusable no-op span context manager."""

    __slots__ = ("_span",)

    def __init__(self) -> None:
        # One shared inert span: never finished into any log.
        self._span = Span(name="null", span_id=0, trace_id=0,
                          parent_id=None, start_s=0.0, end_s=0.0)

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *_exc: object) -> None:
        pass


class NullTelemetry(Telemetry):
    """The no-op backend un-instrumented components default to.

    Hands out shared inert singletons, so hot paths stay allocation-free
    when nobody asked for telemetry.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(clock=None, max_spans=1)
        self._null_instrument = _NullInstrument()
        self._null_scope = _NullSpanScope()

    def counter(self, name: str, help: str = "") -> Counter:
        return self._null_instrument

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._null_instrument

    def histogram(self, name: str, help: str = "",
                  buckets: _t.Sequence[float] | None = None,
                  max_samples: int | None = None) -> Histogram:
        return self._null_instrument

    def span(self, name: str, parent: ParentLike = None,
             **attrs: object) -> SpanScope:
        return _t.cast(SpanScope, self._null_scope)

    def __repr__(self) -> str:
        return "<NullTelemetry>"


#: The process-wide null backend; safe to share (it records nothing).
NULL = NullTelemetry()
