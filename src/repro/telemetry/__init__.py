"""Unified observability for the DNS→AP→edge request path.

One :class:`Telemetry` registry per testbed collects three signal kinds:

* **metrics** — named :class:`Counter`/:class:`Gauge`/:class:`Histogram`
  instruments with ``app``/``tier``/``outcome``-style labels;
* **spans** — sim-time trace trees (``request → dns_piggyback →
  {ap_hit | edge_fetch → pacm_admit}``) clocked on ``Simulator.now``;
* **host profiling** — the opt-in wall-clock view in :mod:`.profiling`.

Components take an optional ``telemetry`` argument defaulting to
:data:`NULL`, the no-op backend, so un-instrumented runs record nothing.
Exports (:mod:`.export`) are deterministic: same seed → byte-identical
JSONL.  See ``docs/telemetry.md`` for the instrument catalogue and span
taxonomy.

The analysis layer turns recordings into decisions: :mod:`.analysis`
(span trees, critical-path attribution, run diffing), :mod:`.tracefmt`
(Perfetto-viewable Chrome traces), and :mod:`.sentry` (declarative
latency/throughput budgets behind ``python -m repro.cli sentry``).
"""

from repro.telemetry.analysis import (
    AttributionReport,
    SpanRecord,
    TraceTree,
    attribute,
    build_trace_trees,
    diff_runs,
    records_from_telemetry,
)
from repro.telemetry.export import (
    metric_records,
    metrics_to_jsonl,
    snapshot_table,
    span_records,
    spans_to_jsonl,
    write_metrics_jsonl,
    write_spans_jsonl,
)
from repro.telemetry.instruments import (
    DEFAULT_LATENCY_BUCKETS_MS,
    HISTOGRAM_BACKENDS,
    Counter,
    Gauge,
    Histogram,
    Instrument,
    LabelSet,
    labelset,
)
from repro.telemetry.profiling import HostProfile, HostProfileReport
from repro.telemetry.registry import NULL, NullTelemetry, Telemetry
from repro.telemetry.sampling import TailSampler
from repro.telemetry.sketch import DEFAULT_RELATIVE_ERROR, QuantileSketch
from repro.telemetry.spans import (
    Span,
    SpanLog,
    SpanScope,
    format_trace_parent,
    parse_trace_parent,
)

__all__ = [
    "AttributionReport",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "DEFAULT_RELATIVE_ERROR",
    "Gauge",
    "HISTOGRAM_BACKENDS",
    "Histogram",
    "HostProfile",
    "HostProfileReport",
    "Instrument",
    "LabelSet",
    "NULL",
    "NullTelemetry",
    "QuantileSketch",
    "Span",
    "SpanLog",
    "SpanRecord",
    "SpanScope",
    "TailSampler",
    "Telemetry",
    "TraceTree",
    "attribute",
    "build_trace_trees",
    "diff_runs",
    "format_trace_parent",
    "labelset",
    "parse_trace_parent",
    "metric_records",
    "metrics_to_jsonl",
    "records_from_telemetry",
    "snapshot_table",
    "span_records",
    "spans_to_jsonl",
    "write_metrics_jsonl",
    "write_spans_jsonl",
]
