"""Sim-vs-live parity: one workload through both engines, diffed.

The engine seam's acceptance test: replay the same request sequence
through the virtual-time :class:`~repro.sim.kernel.Simulator` testbed
and the :class:`~repro.engine.wallclock.WallClock` live stack
(:mod:`repro.engine.live`), then compare the two telemetry span logs
with the existing :func:`~repro.telemetry.analysis.diff_runs` tooling.

The parity contract (docs/live.md) has two tiers:

1. **Exact**: the request *taxonomy* — which sources appear
   (``ap-hit`` / ``ap-delegated`` / ``edge``), which stages each source
   passes through, and how many requests land in each — must be
   identical.  The components are shared, so any divergence here is an
   engine-seam bug, not jitter.
2. **Toleranced**: latency statistics (mean/p50/p95/p99/max, in ms)
   may differ by up to ``tolerance_ms`` per field.  Virtual time is
   noiseless; wall time pays scheduler jitter, socket syscalls, and
   loopback copies.  The default of 250 ms is deliberately loose — it
   catches pathologies (a lost retry burning a 1 s UDP timeout, an
   accidental real sleep) while never flaking on a loaded CI host.

Live-only sentry gates from ``[tool.repro-sentry].live-budgets``
(e.g. zero socket errors) are evaluated against the live run's
telemetry on top of the diff.
"""

from __future__ import annotations

import asyncio
import dataclasses
import typing as _t

from repro.core.annotations import CacheableSpec
from repro.telemetry.analysis import (
    AttributionReport,
    RunData,
    attribute,
    diff_runs,
    records_from_telemetry,
)

if _t.TYPE_CHECKING:
    from repro.experiments.common import ExperimentTable
    from repro.telemetry.analysis import SpanRecord

__all__ = ["ParityReport", "run_parity", "parity_workload"]

#: Default per-field latency-statistic tolerance (milliseconds); the
#: wall-jitter contract documented in docs/live.md.
DEFAULT_TOLERANCE_MS = 250.0

#: The replayed workload: app -> ordered (url, size) catalog.  Small
#: objects keep the live transfer time negligible next to the stage
#: structure being compared.
_WORKLOAD: dict[str, tuple[tuple[str, int], ...]] = {
    "app-a": (("http://app-a.example/obj-1", 24 * 1024),
              ("http://app-a.example/obj-2", 64 * 1024)),
    "app-b": (("http://app-b.example/obj-1", 128 * 1024),),
}
_SPEC_PRIORITY = 2
_SPEC_TTL_S = 300.0


def parity_workload(rounds: int) -> list[tuple[str, str]]:
    """The deterministic request sequence: (app_id, url) per fetch.

    Sequential by construction — no two requests are in flight at
    once — so delegation coalescing never diverges between engines.
    """
    sequence: list[tuple[str, str]] = []
    for _round in range(rounds):
        for app_id, catalog in _WORKLOAD.items():
            sequence.extend((app_id, url) for url, _size in catalog)
    return sequence


@dataclasses.dataclass
class _EngineRun:
    """One engine's replay: span log + derived attribution."""

    engine: str
    sources: list[str]
    spans: list["SpanRecord"]
    duration_s: float
    telemetry: object = None

    def report(self) -> AttributionReport:
        return attribute(self.spans)


def _specs() -> list[CacheableSpec]:
    return [CacheableSpec(url=url, priority=_SPEC_PRIORITY,
                          ttl_s=_SPEC_TTL_S)
            for catalog in _WORKLOAD.values()
            for url, _size in catalog]


def _sim_run(seed: int, rounds: int) -> _EngineRun:
    """Replay through the virtual-time testbed (APE-CACHE installed)."""
    from repro.baselines.ape import ApeCacheSystem
    from repro.testbed import Testbed, TestbedConfig

    bed = Testbed(TestbedConfig(seed=seed, enable_telemetry=True))
    system = ApeCacheSystem()
    system.install(bed)
    for catalog in _WORKLOAD.values():
        for url, size in catalog:
            bed.host_object(url, size)
    clients = {}
    for app_id in _WORKLOAD:
        node = bed.add_client()
        client = system.new_fetcher(bed, node, app_id)
        for spec in _specs():
            client.register_spec(spec)
        clients[app_id] = client

    sources: list[str] = []

    def _driver():
        for app_id, url in parity_workload(rounds):
            result = yield from clients[app_id].fetch(url)
            sources.append(result.source)

    bed.sim.run_process(_driver())
    return _EngineRun(engine="sim", sources=sources,
                      spans=records_from_telemetry(bed.telemetry),
                      duration_s=bed.sim.now,
                      telemetry=bed.telemetry)


def _live_run(seed: int, rounds: int) -> _EngineRun:
    """Replay through the live stack on loopback sockets."""
    from repro.engine.live import LiveStack
    from repro.engine.wallclock import WallClock

    async def _replay() -> _EngineRun:
        engine = WallClock()
        stack = LiveStack(engine)
        for catalog in _WORKLOAD.values():
            for url, size in catalog:
                stack.host_object(url, size)
        await stack.start()
        clients = {}
        for app_id in _WORKLOAD:
            client = stack.add_client(app_id)
            for spec in _specs():
                client.register_spec(spec)
            clients[app_id] = client
        sources: list[str] = []
        try:
            for app_id, url in parity_workload(rounds):
                result = await stack.fetch(clients[app_id], url)
                sources.append(result.source)
        finally:
            await stack.stop()
        engine.raise_unwaited()
        return _EngineRun(
            engine="live", sources=sources,
            spans=records_from_telemetry(stack.telemetry),
            duration_s=engine.now, telemetry=stack.telemetry)

    return asyncio.run(_replay())


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
def _count_map(report: AttributionReport) -> dict[tuple[str, str], int]:
    """(source, stage) -> request count, from the summary tree."""
    counts: dict[tuple[str, str], int] = {}
    for source, stages in report.summary().items():
        for stage, stats in stages.items():
            counts[(source, stage)] = int(stats.get("count", 0))
    return counts


@dataclasses.dataclass
class ParityReport:
    """Everything the parity gate decided, renderable as tables."""

    sim: _EngineRun
    live: _EngineRun
    tolerance_ms: float
    #: Taxonomy divergences (exact tier): human-readable lines.
    mismatches: list[str]
    #: Latency-stat divergences beyond tolerance (toleranced tier).
    stat_entries: list[str]
    #: Live sentry-budget verdicts ([tool.repro-sentry].live-budgets).
    budget_results: list[object]

    @property
    def ok(self) -> bool:
        return (not self.mismatches and not self.stat_entries
                and all(getattr(result, "ok", False)
                        for result in self.budget_results))

    def tables(self) -> list["ExperimentTable"]:
        from repro.experiments.common import ExperimentTable
        from repro.telemetry.sentry import budget_table

        sim_counts = _count_map(self.sim.report())
        live_counts = _count_map(self.live.report())
        table = ExperimentTable(
            title="parity: request taxonomy (sim vs live)",
            columns=["source", "stage", "sim_count", "live_count",
                     "verdict"])
        for key in sorted(set(sim_counts) | set(live_counts)):
            source, stage = key
            left = sim_counts.get(key)
            right = live_counts.get(key)
            table.add_row(
                source=source, stage=stage,
                sim_count="-" if left is None else str(left),
                live_count="-" if right is None else str(right),
                verdict="ok" if left == right else "MISMATCH")
        table.notes.append(
            f"latency stats compared with |delta| <= "
            f"{self.tolerance_ms:g} ms wall-jitter tolerance "
            f"(docs/live.md); sim run {self.sim.duration_s * 1e3:.1f} "
            f"virtual ms, live run {self.live.duration_s * 1e3:.1f} "
            f"wall ms")
        for line in self.mismatches:
            table.notes.append(f"MISMATCH: {line}")
        for line in self.stat_entries:
            table.notes.append(f"BEYOND TOLERANCE: {line}")
        tables: list[ExperimentTable] = [table]
        budgets = budget_table(self.budget_results)
        budgets.title = "parity: live sentry budgets"
        tables.append(budgets)
        from repro.telemetry.obs import live_health_table

        health = live_health_table(
            _t.cast("_t.Any", self.live.telemetry))
        if health is not None:
            tables.append(health)
        return tables


def _compare(sim: _EngineRun, live: _EngineRun,
             tolerance_ms: float) -> tuple[list[str], list[str]]:
    """Exact taxonomy check, then the toleranced stat diff."""
    mismatches: list[str] = []
    if sim.sources != live.sources:
        mismatches.append(
            f"fetch outcome sequence diverged: "
            f"sim={sim.sources} live={live.sources}")
    sim_counts = _count_map(sim.report())
    live_counts = _count_map(live.report())
    for key in sorted(set(sim_counts) | set(live_counts)):
        if sim_counts.get(key) != live_counts.get(key):
            source, stage = key
            mismatches.append(
                f"{source}/{stage} count: sim={sim_counts.get(key)} "
                f"live={live_counts.get(key)}")

    # Metrics are deliberately excluded: the simulated testbed records
    # series (link queueing, CDN internals) the live loopback stack has
    # no counterpart for, and vice versa — spans are the shared truth.
    delta = diff_runs(RunData(metrics=[], spans=sim.spans),
                      RunData(metrics=[], spans=live.spans),
                      tolerance=tolerance_ms)
    stat_entries = [entry.render() for entry in delta.entries
                    if entry.field != "count"]
    return mismatches, stat_entries


def run_parity(quick: bool = True, seed: int = 0,
               tolerance_ms: float = DEFAULT_TOLERANCE_MS,
               pyproject: str = "pyproject.toml",
               emit: _t.Callable[[str], None] = print,
               ) -> tuple[list["ExperimentTable"], int]:
    """The ``repro.cli parity`` implementation.

    Returns the rendered tables and the exit code (0 = parity holds).
    """
    from repro.telemetry.obs import ObsRun
    from repro.telemetry.sentry import evaluate_budgets, \
        load_live_budgets

    rounds = 3 if quick else 6
    emit(f"parity: replaying {len(parity_workload(rounds))} requests "
         f"through the sim engine")
    sim = _sim_run(seed, rounds)
    emit("parity: replaying the same workload through the live engine "
         "(loopback sockets)")
    live = _live_run(seed, rounds)

    mismatches, stat_entries = _compare(sim, live, tolerance_ms)
    live_obs = ObsRun(
        telemetry=_t.cast("_t.Any", live.telemetry),
        duration_s=live.duration_s, seed=seed)
    budget_results = evaluate_budgets(load_live_budgets(pyproject),
                                      live_obs, live.report())

    report = ParityReport(sim=sim, live=live,
                          tolerance_ms=tolerance_ms,
                          mismatches=mismatches,
                          stat_entries=stat_entries,
                          budget_results=list(budget_results))
    return report.tables(), 0 if report.ok else 1
