"""Event primitives shared by every engine.

The kernel follows the classic generator-based design (as popularised by
SimPy): activities are Python generators that ``yield`` events and are
resumed by the scheduler when those events trigger.  An :class:`Event`
moves through three states:

* *pending* — created, nothing has happened yet;
* *triggered* — scheduled to fire, sitting with the scheduler;
* *processed* — callbacks have run, ``value`` (or an exception) is final.

Only an engine schedules events; user code creates them through the
factory methods of a :class:`~repro.engine.api.Scheduler` — the
virtual-time :class:`repro.sim.Simulator` or the real-time
:class:`repro.engine.WallClock`.  Nothing here reads a clock or touches
an event heap, which is what lets the same primitives drive both.
"""

from __future__ import annotations

import typing as _t

from repro.errors import ProcessInterrupt, SimulationError

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.engine.api import Scheduler

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
]

_PENDING = object()


class Event:
    """A happening at a point in time with an optional value.

    Callbacks registered on the event run when it is processed.  An event
    may *succeed* (carry a value) or *fail* (carry an exception that will be
    re-raised inside any process waiting on it).
    """

    def __init__(self, sim: "Scheduler") -> None:
        self.sim = sim
        self.callbacks: list[_t.Callable[["Event"], None]] | None = []
        self._value: object = _PENDING
        self._ok = True

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> object:
        """The event's payload; raises if read before the event triggers."""
        if self._value is _PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with ``value`` as its payload."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._value = value
        self.sim._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to raise in waiters."""
        if not isinstance(exception, BaseException):
            raise SimulationError(f"{exception!r} is not an exception")
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.sim._schedule(self)
        return self

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay."""

    def __init__(self, sim: "Scheduler", delay: float,
                 value: object = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        sim._schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay!r}>"


class Process(Event):
    """Wraps a generator so it can be driven by the scheduler.

    The process is itself an event that triggers when the generator returns
    (its value is the generator's return value) or raises (the process
    fails, propagating to any process waiting on it).
    """

    def __init__(self, sim: "Scheduler",
                 generator: _t.Generator["Event", object, object]) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(
                f"{generator!r} is not a generator; did you forget a yield?")
        super().__init__(sim)
        self._generator = generator
        self._target: Event | None = None
        # Kick the process off via an immediately-scheduled init event.
        init = Event(sim)
        init.callbacks.append(self._resume)
        init._value = None
        sim._schedule(init)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`ProcessInterrupt` into the process.

        The process may catch the interrupt and continue; the event it was
        waiting on is detached so a later trigger does not resume it twice.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has already terminated")
        if self._target is self:
            raise SimulationError("a process cannot interrupt itself")
        interrupt_event = Event(self.sim)
        interrupt_event._ok = False
        interrupt_event._value = ProcessInterrupt(cause)
        interrupt_event.callbacks.append(self._resume)
        self.sim._schedule(interrupt_event, priority=0)
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None

    def _resume(self, event: Event) -> None:
        """Advance the generator with the triggering event's outcome."""
        self.sim._active_process = self
        try:
            while True:
                try:
                    if event._ok:
                        target = self._generator.send(event._value)
                    else:
                        target = self._generator.throw(
                            _t.cast(BaseException, event._value))
                except StopIteration as stop:
                    self._value = stop.value
                    self.sim._schedule(self)
                    break
                except BaseException as exc:
                    self._ok = False
                    self._value = exc
                    self.sim._schedule(self)
                    break
                if not isinstance(target, Event):
                    exc = SimulationError(
                        f"process yielded {target!r}, expected an Event")
                    event = Event(self.sim)
                    event._ok = False
                    event._value = exc
                    continue
                if target.sim is not self.sim:
                    exc = SimulationError(
                        "yielded an event belonging to another simulator")
                    event = Event(self.sim)
                    event._ok = False
                    event._value = exc
                    continue
                if target.callbacks is not None:
                    # Event still outstanding: park until it triggers.
                    target.callbacks.append(self._resume)
                    self._target = target
                    break
                # Already processed: feed its outcome straight back in.
                event = target
        finally:
            self.sim._active_process = None

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", "process")
        return f"<Process {name} alive={self.is_alive}>"


class Condition(Event):
    """Triggers based on the outcome of a set of component events.

    Subclasses define :meth:`_satisfied`.  The condition's value is a dict
    mapping each *triggered* component event to its value, which lets
    callers retrieve partial results from :class:`AnyOf`.
    """

    def __init__(self, sim: "Scheduler",
                 events: _t.Sequence[Event]) -> None:
        super().__init__(sim)
        self._events = list(events)
        # Each component reports to _observe exactly once (immediately for
        # already-processed events, else via callback), so a running count
        # replaces recounting every component per trigger — which made a
        # wide AllOf quadratic in its event count.
        self._done = 0
        for event in self._events:
            if event.sim is not sim:
                raise SimulationError(
                    "condition mixes events from different simulators")
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:
                self._observe(event)
            else:
                event.callbacks.append(self._observe)

    def _satisfied(self, done: int, total: int) -> bool:
        raise NotImplementedError

    def _observe(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(_t.cast(BaseException, event._value))
            return
        self._done += 1
        if self._satisfied(self._done, len(self._events)):
            self.succeed({ev: ev._value for ev in self._events
                          if ev.processed and ev._ok})


class AllOf(Condition):
    """Triggers when every component event has triggered successfully."""

    def _satisfied(self, done: int, total: int) -> bool:
        return done == total


class AnyOf(Condition):
    """Triggers when at least one component event triggers successfully."""

    def _satisfied(self, done: int, total: int) -> bool:
        return done >= 1
