"""The real-time engine: the Scheduler protocol on an asyncio loop.

:class:`WallClock` implements the same seam as
:class:`repro.sim.kernel.Simulator`, but ``now`` is the host's monotonic
clock (seconds since the engine was created) and ``_schedule`` maps onto
``loop.call_soon`` / ``loop.call_later``.  The event primitives in
:mod:`repro.engine.events` are reused unchanged, so any generator-based
component — the AP runtime, the DNS services, a ``ServiceQueue`` — runs
on real time without modification.

Two bridges connect the generator world to asyncio:

* :meth:`WallClock.from_awaitable` wraps a coroutine as an
  :class:`~repro.engine.events.Event` a process can ``yield`` — this is
  how the live transport does socket IO from inside a protocol handler.
* :meth:`WallClock.wait` awaits an event from a coroutine — this is how
  a live server awaits a handler process before writing the response.

Scheduling-order contract (documented divergence from the simulator):
the simulator breaks same-instant ties by priority then insertion
order; asyncio's callback queue is FIFO only, so *urgent* events
(process interrupts) do not preempt normal events scheduled for the
same instant.  Nothing in the served stack relies on that preemption.

This is the **only** module in the library blessed to read the host
clock for simulated-looking time (``[tool.repro-lint]
engine-wallclock-allow``); everything downstream takes time from
``engine.now`` and stays engine-agnostic.
"""

from __future__ import annotations

import asyncio
import typing as _t
from time import monotonic

from repro.errors import SimulationError
from repro.engine.api import NORMAL
from repro.engine.events import AllOf, AnyOf, Event, Process, Timeout

__all__ = ["LoopLagWatchdog", "OwnedTaskSet", "WallClock"]


class _TaskGauge(_t.Protocol):  # pragma: no cover - typing only
    def set(self, value: float, **labels: object) -> None: ...


class _LagHistogram(_t.Protocol):  # pragma: no cover - typing only
    def observe(self, value: float, **labels: object) -> None: ...


class _StallCounter(_t.Protocol):  # pragma: no cover - typing only
    def inc(self, amount: float = 1.0, **labels: object) -> None: ...


class LoopLagWatchdog:
    """Periodic probe of asyncio scheduling delay (event-loop lag).

    Every ``interval_s`` the watchdog schedules a callback and, when it
    actually runs, records how far past its deadline the loop delivered
    it — the canonical "is something blocking the loop" signal.  Lags
    land in a histogram (``live.loop_lag_ms``); any probe later than
    ``stall_threshold_ms`` additionally bumps a stall counter
    (``live.loop_stalls``, sentry-gated via the ``live-budgets`` in
    pyproject.toml) and invokes ``on_stall`` so the structured log can
    record the incident.

    The instruments are duck-typed (same pattern as
    :class:`OwnedTaskSet`): this module stays free of telemetry
    imports, and the host-clock reads below are exactly why it is the
    one ``engine-wallclock-allow`` module.

    The first probe fires via ``call_soon`` with a deadline of "now",
    so every started stack records at least one (near-zero) lag sample
    immediately — the parity gate's ``live.loop_lag_ms`` budget always
    resolves, even on runs too short for a full interval to elapse.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop,
                 lag_histogram: _LagHistogram,
                 stall_counter: _StallCounter,
                 interval_s: float = 0.25,
                 stall_threshold_ms: float = 250.0,
                 on_stall: _t.Callable[[float], None] | None = None,
                 ) -> None:
        if interval_s <= 0.0:
            raise SimulationError(
                f"watchdog interval must be positive, got {interval_s!r}")
        self._loop = loop
        self._histogram = lag_histogram
        self._counter = stall_counter
        self.interval_s = interval_s
        self.stall_threshold_ms = stall_threshold_ms
        self._on_stall = on_stall
        self._handle: asyncio.Handle | None = None
        self._deadline = 0.0
        self._running = False
        #: Probes delivered / stalls seen since start (introspection).
        self.probes = 0
        self.stalls = 0

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        """Begin probing; idempotent while running."""
        if self._running:
            return
        self._running = True
        self._deadline = monotonic()
        self._handle = self._loop.call_soon(self._probe)

    def stop(self) -> None:
        """Cancel the pending probe; idempotent."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _probe(self) -> None:
        if not self._running:
            return
        lag_ms = max(0.0, (monotonic() - self._deadline) * 1e3)
        self.probes += 1
        self._histogram.observe(lag_ms)
        if lag_ms > self.stall_threshold_ms:
            self.stalls += 1
            self._counter.inc()
            if self._on_stall is not None:
                self._on_stall(lag_ms)
        self._deadline = monotonic() + self.interval_s
        self._handle = self._loop.call_later(self.interval_s, self._probe)

    def __repr__(self) -> str:
        return (f"<LoopLagWatchdog interval={self.interval_s}s "
                f"probes={self.probes} stalls={self.stalls}>")


class OwnedTaskSet:
    """Strong references to in-flight asyncio tasks.

    The event loop keeps only *weak* task references, so a spawned task
    whose handle is dropped is eligible for garbage collection
    mid-flight — the failure mode ASYNC102 flags.  This is the
    sanctioned pattern: :meth:`hold` anchors the task until its done
    callback discards it again.  A bound gauge (``live.tasks_active``)
    tracks the live count for the obs panel.
    """

    def __init__(self) -> None:
        self._tasks: set["asyncio.Task[object]"] = set()
        self._gauge: _TaskGauge | None = None

    def bind_gauge(self, gauge: _TaskGauge) -> None:
        """Mirror ``len(self)`` into ``gauge`` from now on."""
        self._gauge = gauge
        gauge.set(float(len(self._tasks)))

    def hold(self, task: "asyncio.Task[object]") -> "asyncio.Task[object]":
        """Anchor ``task`` until it completes; returns it unchanged."""
        self._tasks.add(task)
        task.add_done_callback(self._discard)
        if self._gauge is not None:
            self._gauge.set(float(len(self._tasks)))
        return task

    def _discard(self, task: "asyncio.Task[object]") -> None:
        self._tasks.discard(task)
        if self._gauge is not None:
            self._gauge.set(float(len(self._tasks)))

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, task: object) -> bool:
        return task in self._tasks


class WallClock:
    """Drives the engine seam with real time on an asyncio event loop.

    Must be created while an asyncio loop is running (or be handed one
    explicitly): every ``_schedule`` call lands on that loop.  ``now``
    counts wall seconds since construction, so spans and timeouts read
    exactly like their simulated counterparts, just jittery.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop | None = None) -> None:
        if loop is None:
            try:
                loop = asyncio.get_running_loop()
            except RuntimeError:
                raise SimulationError(
                    "WallClock needs a running asyncio event loop; create "
                    "it inside asyncio.run(...) or pass loop= explicitly")
        self._loop = loop
        self._epoch = monotonic()
        self._active_process: Process | None = None
        #: Events executed so far (same contract as Simulator).
        self.events_processed = 0
        #: Exceptions from failed events nobody waited for.  The
        #: simulator raises these out of ``run``; an asyncio callback
        #: has no caller to raise into, so they are collected here and
        #: re-raised by :meth:`raise_unwaited` (the live stack checks on
        #: shutdown, the parity harness after each run).
        self.unwaited_failures: list[BaseException] = []
        #: Strong references to bridged tasks (the loop keeps only weak
        #: ones, so an in-flight task could otherwise be GC'd).
        self.tasks = OwnedTaskSet()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Wall seconds since this engine was created."""
        return monotonic() - self._epoch

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The asyncio loop this engine schedules on."""
        return self._loop

    # ------------------------------------------------------------------
    # Event factories (same surface as Simulator)
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a plain, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that fires ``delay`` wall seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: _t.Generator[Event, object, object],
                ) -> Process:
        """Register a generator as a process and start it."""
        return Process(self, generator)

    def all_of(self, events: _t.Sequence[Event]) -> AllOf:
        """An event triggering once all ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: _t.Sequence[Event]) -> AnyOf:
        """An event triggering once any one of ``events`` has succeeded."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = NORMAL) -> None:
        if delay <= 0.0:
            self._loop.call_soon(self._dispatch, event)
        else:
            self._loop.call_later(delay, self._dispatch, event)

    def _dispatch(self, event: Event) -> None:
        """Process one triggered event (the loop-callback half of step)."""
        self.events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for callback in callbacks:
                callback(event)
        elif not event._ok:
            # A failed event nobody waited for must not pass silently —
            # but raising inside a loop callback would only reach the
            # loop's exception handler.  Park it for raise_unwaited().
            self.unwaited_failures.append(
                _t.cast(BaseException, event._value))

    def raise_unwaited(self) -> None:
        """Re-raise the first failure no process or waiter consumed."""
        if self.unwaited_failures:
            raise self.unwaited_failures[0]

    # ------------------------------------------------------------------
    # asyncio bridges
    # ------------------------------------------------------------------
    def from_awaitable(self, awaitable: _t.Awaitable[object]) -> Event:
        """Wrap a coroutine as an event a process can ``yield``.

        The coroutine runs as an asyncio task; its result succeeds the
        event (its exception fails it), waking whatever process parked
        on the event.
        """
        event = Event(self)
        # The loop holds only weak references to tasks; the owned set
        # anchors this one until it completes or the GC may destroy it
        # mid-flight.
        task = self.tasks.hold(
            self._loop.create_task(_ensure_coroutine(awaitable)))

        def _finish(done: "asyncio.Task[object]") -> None:
            if done.cancelled():
                event.fail(SimulationError("bridged task was cancelled"))
                return
            failure = done.exception()
            if failure is not None:
                event.fail(failure)
            else:
                event.succeed(done.result())

        task.add_done_callback(_finish)
        return event

    async def wait(self, event: Event) -> object:
        """Await an event from coroutine land, returning its value.

        The inverse bridge of :meth:`from_awaitable`: used by the live
        servers to await a protocol-handler process, and by drivers to
        await a whole scenario.
        """
        future: "asyncio.Future[object]" = self._loop.create_future()

        def _done(triggered: Event) -> None:
            if future.cancelled():
                return
            if triggered._ok:
                future.set_result(triggered._value)
            else:
                future.set_exception(
                    _t.cast(BaseException, triggered._value))

        if event.callbacks is None:
            # Already processed: resolve immediately.
            _done(event)
        else:
            event.callbacks.append(_done)
        return await future

    async def run(self, until: Event | float | None = None) -> object:
        """Async analogue of ``Simulator.run``.

        ``until`` may be an event (await it, return its value) or a
        time in engine seconds (sleep until then).  Unlike the
        simulator there is no "run until quiescent" mode — real time
        does not drain.
        """
        if isinstance(until, Event):
            return await self.wait(until)
        if until is not None:
            horizon = float(until)
            if horizon < self.now:
                raise SimulationError(
                    f"until={horizon!r} lies in the past (now={self.now!r})")
            await asyncio.sleep(horizon - self.now)
            return None
        raise SimulationError(
            "WallClock.run needs an event or a horizon; wall time has "
            "no quiescence to run until")

    async def run_process(self, generator:
                          _t.Generator[Event, object, object]) -> object:
        """Convenience: start ``generator`` and await its completion."""
        return await self.wait(self.process(generator))

    def __repr__(self) -> str:
        return f"<WallClock t={self.now:.6f}s>"


def _ensure_coroutine(awaitable: _t.Awaitable[object],
                      ) -> _t.Coroutine[object, object, object]:
    """Adapt any awaitable to what ``loop.create_task`` accepts."""
    if asyncio.iscoroutine(awaitable):
        return awaitable

    async def _shim() -> object:
        return await awaitable

    return _shim()
