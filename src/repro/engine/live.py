"""The live APE-CACHE stack: the simulated components on real sockets.

One OS process, one asyncio loop, one :class:`WallClock` engine, one
shared telemetry registry — and the *unchanged* protocol stack from the
simulation: :class:`~repro.core.ap_runtime.ApRuntime` (DNS-Cache
piggybacking + PACM) on the AP node, an upstream authoritative DNS, the
edge cache, and the origin tier.  Each tier binds real loopback sockets
(port 0 by default, so test runs never collide), and
:class:`~repro.engine.livenet.LiveTransport` routes the stack's
node-address identities onto those endpoints.

Because the components are shared with the simulator, the span taxonomy
(``request`` → ``dns_piggyback`` → ``ap_hit`` / ``ap_delegated`` …), the
TYPE=300 cache RR, the ``x-ape-*`` headers, and the PACM admission path
are identical by construction — which is exactly what the parity
harness (:mod:`repro.engine.parity`) verifies.

Graceful shutdown contract: :meth:`LiveStack.stop` (wired to
SIGINT/SIGTERM by :func:`run_live`) closes the listening sockets,
drains in-flight requests, flushes telemetry JSONL exports, and the
process exits 0.
"""

from __future__ import annotations

import asyncio
import dataclasses
import signal
import typing as _t

from repro.core.ap_runtime import ApRuntime
from repro.core.client_runtime import ClientRuntime, FetchResult
from repro.core.config import ApeCacheConfig
from repro.dnslib.server import AuthoritativeService
from repro.dnslib.zone import Zone
from repro.engine.livenet import (
    LIVE_HOST,
    LiveHttpServer,
    LiveTransport,
    LiveUdpServer,
)
from repro.engine.wallclock import WallClock
from repro.httplib.content import DataObject
from repro.httplib.server import (
    EdgeCacheServer,
    HostingDirectory,
    OriginServer,
)
from repro.httplib.url import Url
from repro.net.address import IPv4Address
from repro.net.node import Node
from repro.telemetry.registry import Telemetry

__all__ = ["LiveStackConfig", "LiveStack", "run_live"]

#: TTL for the upstream zone's A records.  Long enough that a demo or
#: parity run resolves each domain once, like the simulated CDN chain
#: does within its 5 s answer TTL.
_ZONE_TTL_S = 60


@dataclasses.dataclass
class LiveStackConfig:
    """Knobs for the live deployment."""

    #: Loopback host every tier binds.
    host: str = LIVE_HOST
    #: Requests the AP "CPU" serves concurrently (router-class: 1).
    ap_cpu_capacity: int = 1
    #: Concurrency for server-class tiers (edge, origin, upstream DNS).
    server_cpu_capacity: int = 8
    #: Seconds to wait for in-flight requests during shutdown.
    drain_timeout_s: float = 5.0
    #: Flush spans/metrics here on shutdown ("" = no export).
    spans_path: str = ""
    metrics_path: str = ""


class LiveStack:
    """A fully wired live deployment on loopback sockets.

    Build it inside a running asyncio loop, then ``await start()``;
    the node addresses are simulation-style identities (the AP keeps
    its ``192.168.8.1``), mapped to real ephemeral endpoints by the
    live transport.
    """

    def __init__(self, engine: WallClock,
                 config: LiveStackConfig | None = None,
                 ape_config: ApeCacheConfig | None = None,
                 telemetry: Telemetry | None = None) -> None:
        self.engine = engine
        self.config = config or LiveStackConfig()
        #: One registry for every tier, clocked off the wall engine, so
        #: cross-tier traces share one id space — same layout as the
        #: simulated testbed's.
        self.telemetry = (telemetry if telemetry is not None
                          else Telemetry(engine))
        self.transport = LiveTransport(engine, telemetry=self.telemetry)
        # Surface the engine's owned-task count (the ASYNC102 pattern)
        # as a live-health gauge for the obs panel.
        engine.tasks.bind_gauge(self.telemetry.gauge("live.tasks_active"))

        cfg = self.config
        self.ap = Node(engine, "ap", IPv4Address("192.168.8.1"),
                       cpu_capacity=cfg.ap_cpu_capacity)
        self.upstream = Node(engine, "updns", IPv4Address("10.0.0.53"),
                             cpu_capacity=cfg.server_cpu_capacity)
        self.edge = Node(engine, "edge", IPv4Address("10.0.0.10"),
                         cpu_capacity=cfg.server_cpu_capacity)
        self.origin = Node(engine, "origin", IPv4Address("10.0.0.20"),
                           cpu_capacity=cfg.server_cpu_capacity)

        # The upstream authoritative collapses the simulated ADNS → CDN
        # chain: its zones answer app domains directly with the edge's
        # address (the delegation target the AP needs).
        self.dns_service = AuthoritativeService(self.upstream)
        self.dns_service.bind_telemetry(self.telemetry)
        self.dns_service.install()

        self.directory = HostingDirectory()
        self.origin_server = OriginServer(self.origin)
        self.origin_server.install()
        self.edge_server = EdgeCacheServer(self.edge, self.transport,
                                           self.directory)
        self.edge_server.install()

        self.ap_runtime = ApRuntime(self.ap, self.transport,
                                    self.upstream.address,
                                    config=ape_config,
                                    telemetry=self.telemetry)
        self.ap_runtime.install()

        tel = self.telemetry
        self._servers: list[LiveUdpServer | LiveHttpServer] = [
            LiveUdpServer(engine, self.ap, telemetry=tel),
            LiveHttpServer(engine, self.ap, telemetry=tel),
            LiveUdpServer(engine, self.upstream, telemetry=tel),
            LiveHttpServer(engine, self.edge, telemetry=tel),
            LiveHttpServer(engine, self.origin, telemetry=tel),
        ]
        self._domains: set[str] = set()
        self._clients = 0
        #: Serializes start/stop; both write the lifecycle flag and an
        #: interleaved stop could observe a half-started stack.
        self._lifecycle_lock = asyncio.Lock()
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> dict[str, tuple[str, int]]:
        """Bind every tier; returns ``role -> (host, port)``.

        Bring-up is transactional: if any tier fails to bind, every
        already-bound server is stopped again (in reverse order) before
        the error propagates, so a failed ``repro.cli live --serve``
        leaks no listening sockets.
        """
        host = self.config.host
        endpoints: dict[str, tuple[str, int]] = {}
        async with self._lifecycle_lock:
            started: list[LiveUdpServer | LiveHttpServer] = []
            try:
                for server in self._servers:
                    endpoint = await server.start(host=host, port=0)
                    started.append(server)
                    node = server.node
                    if isinstance(server, LiveUdpServer):
                        self.transport.register_udp(node.address, endpoint)
                        endpoints[f"{node.name}/dns"] = endpoint
                    else:
                        self.transport.register_tcp(node.address, endpoint)
                        endpoints[f"{node.name}/http"] = endpoint
            except Exception:
                for server in reversed(started):
                    await server.stop(0.0)
                raise
            self._started = True
        return endpoints

    async def stop(self) -> None:
        """Graceful shutdown: stop listening, drain, flush telemetry."""
        async with self._lifecycle_lock:
            for server in self._servers:
                await server.stop(self.config.drain_timeout_s)
            self._started = False
        self._flush_telemetry()

    def _flush_telemetry(self) -> None:
        from repro.telemetry.export import (
            write_metrics_jsonl,
            write_spans_jsonl,
        )

        if self.config.spans_path:
            write_spans_jsonl(self.telemetry, self.config.spans_path)
        if self.config.metrics_path:
            write_metrics_jsonl(self.telemetry, self.config.metrics_path)

    # ------------------------------------------------------------------
    # Population (mirrors Testbed's surface)
    # ------------------------------------------------------------------
    def add_domain(self, domain: str) -> None:
        """Publish ``domain`` upstream, resolving to the edge cache."""
        if domain in self._domains:
            return
        zone = Zone(domain)
        zone.add_a(domain, self.edge.address, ttl=_ZONE_TTL_S)
        self.dns_service.add_zone(zone)
        self._domains.add(domain)

    def host_object(self, url: str, size_bytes: int,
                    origin_delay_s: float = 0.0,
                    preload_edge: bool = True) -> DataObject:
        """Create an object at the origin and publish its domain."""
        parsed = Url.parse(url)
        self.add_domain(parsed.host)
        data_object = DataObject(parsed.base, size_bytes)
        self.origin_server.host(data_object, service_delay_s=origin_delay_s)
        self.directory.register(parsed.base, self.origin.address)
        if preload_edge:
            self.edge_server.preload([data_object])
            if origin_delay_s:
                self.edge_server.set_serve_delay(parsed.base, origin_delay_s)
        return data_object

    def add_client(self, app_id: str) -> ClientRuntime:
        """A new client device talking to the live AP."""
        self._clients += 1
        node = Node(self.engine, f"client{self._clients}",
                    IPv4Address(f"192.168.8.{100 + self._clients}"),
                    cpu_capacity=4)
        return ClientRuntime(node, self.transport, self.ap.address,
                             app_id=app_id, telemetry=self.telemetry)

    async def fetch(self, client: ClientRuntime, url: str) -> FetchResult:
        """Drive one client fetch to completion (coroutine form)."""
        result = await self.engine.run_process(client.fetch(url))
        return _t.cast(FetchResult, result)

    def __repr__(self) -> str:
        state = "up" if self._started else "down"
        return (f"<LiveStack {state} clients={self._clients} "
                f"domains={len(self._domains)}>")


# ----------------------------------------------------------------------
# The `repro.cli live` entry point
# ----------------------------------------------------------------------

#: The demo catalog: a few app objects sized like the paper's workload.
_DEMO_OBJECTS = (
    ("http://demo-a.example/feed.json", 24 * 1024),
    ("http://demo-a.example/avatar.png", 96 * 1024),
    ("http://demo-b.example/bundle.js", 160 * 1024),
)
_DEMO_TTL_MIN = 5.0
_DEMO_PRIORITY = 2


def _demo_spec(url: str):
    from repro.core.annotations import CacheableSpec

    return CacheableSpec(url=url, priority=_DEMO_PRIORITY,
                         ttl_s=_DEMO_TTL_MIN * 60.0)


async def _run_stack(config: LiveStackConfig, demo_requests: int,
                     serve: bool,
                     emit: _t.Callable[[str], None]) -> int:
    engine = WallClock()
    stack = LiveStack(engine, config=config)
    for url, size in _DEMO_OBJECTS:
        stack.host_object(url, size)
    endpoints = await stack.start()
    for role in sorted(endpoints):
        host, port = endpoints[role]
        emit(f"live: {role} on {host}:{port}")

    shutdown = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, shutdown.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass

    client = stack.add_client("demo")
    for spec_url, _size in _DEMO_OBJECTS:
        client.register_spec(_demo_spec(spec_url))
    hits = 0
    for index in range(demo_requests):
        url, _size = _DEMO_OBJECTS[index % len(_DEMO_OBJECTS)]
        result = await stack.fetch(client, url)
        hits += int(result.source == "ap-hit")
        emit(f"live: fetch {url} -> {result.source} "
             f"({result.total_latency_s * 1e3:.2f} ms)")
    if demo_requests:
        emit(f"live: {hits}/{demo_requests} served from the AP cache")

    if serve:
        emit("live: serving (SIGINT/SIGTERM to stop)")
        await shutdown.wait()
        emit("live: signal received, draining")
    await stack.stop()
    engine.raise_unwaited()
    emit(f"live: drained, {stack.transport.udp_exchanges} udp / "
         f"{stack.transport.tcp_exchanges} tcp exchanges")
    return 0


def run_live(demo_requests: int = 6, serve: bool = False,
             spans_path: str = "", metrics_path: str = "",
             emit: _t.Callable[[str], None] = print) -> int:
    """Serve the live stack; the ``repro.cli live`` implementation.

    Runs the demo request driver, then (with ``serve=True``) stays up
    until SIGINT/SIGTERM, drains, flushes telemetry, and returns 0.
    """
    config = LiveStackConfig(spans_path=spans_path,
                             metrics_path=metrics_path)
    return asyncio.run(_run_stack(config, demo_requests, serve, emit))
