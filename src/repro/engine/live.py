"""The live APE-CACHE stack: the simulated components on real sockets.

One OS process, one asyncio loop, one :class:`WallClock` engine, one
shared telemetry registry — and the *unchanged* protocol stack from the
simulation: :class:`~repro.core.ap_runtime.ApRuntime` (DNS-Cache
piggybacking + PACM) on the AP node, an upstream authoritative DNS, the
edge cache, and the origin tier.  Each tier binds real loopback sockets
(port 0 by default, so test runs never collide), and
:class:`~repro.engine.livenet.LiveTransport` routes the stack's
node-address identities onto those endpoints.

Because the components are shared with the simulator, the span taxonomy
(``request`` → ``dns_piggyback`` → ``ap_hit`` / ``ap_delegated`` …), the
TYPE=300 cache RR, the ``x-ape-*`` headers, and the PACM admission path
are identical by construction — which is exactly what the parity
harness (:mod:`repro.engine.parity`) verifies.

Shutdown contract: :meth:`LiveStack.stop` (wired to SIGINT/SIGTERM by
:func:`run_live`) marks the stack *draining* (``/healthz`` flips to
503 while the admin plane keeps answering), closes the listening
sockets, drains in-flight requests, flushes telemetry JSONL exports,
and the process exits 0.  The flush also runs on the **failure** path:
``_run_stack`` stops the stack in a ``finally``, and :meth:`stop`
itself flushes even when a drain raises, so a crash mid-serve still
leaves spans/metrics/log exports behind.

With ``metrics_port`` set, an :class:`AdminServer` rides alongside the
cache tiers serving ``/metrics`` (Prometheus text exposition,
:mod:`repro.telemetry.exposition`), ``/healthz`` (lifecycle JSON) and
``/debug/traces`` (slowest/error trace trees from the span log) — see
docs/live.md.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import signal
import time
import typing as _t

from repro.core.ap_runtime import ApRuntime
from repro.core.client_runtime import ClientRuntime, FetchResult
from repro.core.config import ApeCacheConfig
from repro.dnslib.server import AuthoritativeService
from repro.dnslib.zone import Zone
from repro.engine.livenet import (
    LIVE_HOST,
    LiveHttpServer,
    LiveTransport,
    LiveUdpServer,
)
from repro.engine.wallclock import LoopLagWatchdog, WallClock
from repro.errors import HttpError
from repro.httplib.content import DataObject
from repro.httplib.messages import HttpRequest
from repro.httplib.server import (
    EdgeCacheServer,
    HostingDirectory,
    OriginServer,
)
from repro.httplib.url import Url
from repro.httplib.wire import encode_payload_response, read_request
from repro.net.address import IPv4Address
from repro.net.node import Node
from repro.telemetry.exposition import PROM_CONTENT_TYPE, render_prometheus
from repro.telemetry.logfmt import StructuredLog
from repro.telemetry.registry import Telemetry
from repro.telemetry.spans import Span

__all__ = ["AdminServer", "LiveStackConfig", "LiveStack", "run_live"]

#: Lifecycle states a :class:`LiveStack` moves through, in order.
LIFECYCLE_STATES = ("starting", "serving", "draining", "stopped")

#: Default trace count ``/debug/traces`` returns.
DEFAULT_TRACE_LIMIT = 10

#: TTL for the upstream zone's A records.  Long enough that a demo or
#: parity run resolves each domain once, like the simulated CDN chain
#: does within its 5 s answer TTL.
_ZONE_TTL_S = 60


@dataclasses.dataclass
class LiveStackConfig:
    """Knobs for the live deployment."""

    #: Loopback host every tier binds.
    host: str = LIVE_HOST
    #: Requests the AP "CPU" serves concurrently (router-class: 1).
    ap_cpu_capacity: int = 1
    #: Concurrency for server-class tiers (edge, origin, upstream DNS).
    server_cpu_capacity: int = 8
    #: Seconds to wait for in-flight requests during shutdown.
    drain_timeout_s: float = 5.0
    #: Seconds to stay in the *draining* state (admin plane answering
    #: 503 on ``/healthz``) before the tier sockets close — gives load
    #: balancers/probes an observable drain window.
    drain_grace_s: float = 0.0
    #: Flush spans/metrics here on shutdown ("" = no export).
    spans_path: str = ""
    metrics_path: str = ""
    #: Flush the structured log here on shutdown ("" = no export).
    logs_path: str = ""
    #: Bind the admin plane (``/metrics``, ``/healthz``,
    #: ``/debug/traces``) on this port; 0 = ephemeral, None = no admin
    #: server.
    metrics_port: int | None = None
    #: Event-loop lag watchdog probe period (seconds).
    watchdog_interval_s: float = 0.25
    #: Probe delay past which a probe counts as a loop stall (ms).
    watchdog_stall_threshold_ms: float = 250.0


class LiveStack:
    """A fully wired live deployment on loopback sockets.

    Build it inside a running asyncio loop, then ``await start()``;
    the node addresses are simulation-style identities (the AP keeps
    its ``192.168.8.1``), mapped to real ephemeral endpoints by the
    live transport.
    """

    def __init__(self, engine: WallClock,
                 config: LiveStackConfig | None = None,
                 ape_config: ApeCacheConfig | None = None,
                 telemetry: Telemetry | None = None) -> None:
        self.engine = engine
        self.config = config or LiveStackConfig()
        #: One registry for every tier, clocked off the wall engine, so
        #: cross-tier traces share one id space — same layout as the
        #: simulated testbed's.
        self.telemetry = (telemetry if telemetry is not None
                          else Telemetry(engine))
        self.transport = LiveTransport(engine, telemetry=self.telemetry)
        # Surface the engine's owned-task count (the ASYNC102 pattern)
        # as a live-health gauge for the obs panel.
        engine.tasks.bind_gauge(self.telemetry.gauge("live.tasks_active"))

        cfg = self.config
        self.ap = Node(engine, "ap", IPv4Address("192.168.8.1"),
                       cpu_capacity=cfg.ap_cpu_capacity)
        self.upstream = Node(engine, "updns", IPv4Address("10.0.0.53"),
                             cpu_capacity=cfg.server_cpu_capacity)
        self.edge = Node(engine, "edge", IPv4Address("10.0.0.10"),
                         cpu_capacity=cfg.server_cpu_capacity)
        self.origin = Node(engine, "origin", IPv4Address("10.0.0.20"),
                           cpu_capacity=cfg.server_cpu_capacity)

        # The upstream authoritative collapses the simulated ADNS → CDN
        # chain: its zones answer app domains directly with the edge's
        # address (the delegation target the AP needs).
        self.dns_service = AuthoritativeService(self.upstream)
        self.dns_service.bind_telemetry(self.telemetry)
        self.dns_service.install()

        self.directory = HostingDirectory()
        self.origin_server = OriginServer(self.origin)
        self.origin_server.install()
        self.edge_server = EdgeCacheServer(self.edge, self.transport,
                                           self.directory)
        self.edge_server.install()

        self.ap_runtime = ApRuntime(self.ap, self.transport,
                                    self.upstream.address,
                                    config=ape_config,
                                    telemetry=self.telemetry)
        self.ap_runtime.install()

        tel = self.telemetry
        self._servers: list[LiveUdpServer | LiveHttpServer] = [
            LiveUdpServer(engine, self.ap, telemetry=tel),
            LiveHttpServer(engine, self.ap, telemetry=tel),
            LiveUdpServer(engine, self.upstream, telemetry=tel),
            LiveHttpServer(engine, self.edge, telemetry=tel),
            LiveHttpServer(engine, self.origin, telemetry=tel),
        ]
        self._domains: set[str] = set()
        self._clients = 0
        #: Serializes start/stop; both write the lifecycle flag and an
        #: interleaved stop could observe a half-started stack.
        self._lifecycle_lock = asyncio.Lock()
        self._started = False
        self._state = "starting"
        #: Trace-correlated JSONL event log, clocked off the engine so
        #: its records line up with span timestamps.
        self.log = StructuredLog(clock=lambda: self.engine.now)
        self.log.log("lifecycle", state=self._state)
        #: role -> (host, port) once started (the /healthz payload).
        self.endpoints: dict[str, tuple[str, int]] = {}
        self.watchdog = LoopLagWatchdog(
            engine.loop,
            self.telemetry.histogram("live.loop_lag_ms"),
            self.telemetry.counter("live.loop_stalls"),
            interval_s=cfg.watchdog_interval_s,
            stall_threshold_ms=cfg.watchdog_stall_threshold_ms,
            on_stall=self._record_stall)
        self.admin = AdminServer(self)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Lifecycle state: starting / serving / draining / stopped."""
        return self._state

    def _set_state(self, state: str) -> None:
        self._state = state
        self.log.log("lifecycle", state=state)

    def _record_stall(self, lag_ms: float) -> None:
        self.log.log("loop_stall", level="warning",
                     lag_ms=round(lag_ms, 3),
                     threshold_ms=self.config.watchdog_stall_threshold_ms)

    async def start(self) -> dict[str, tuple[str, int]]:
        """Bind every tier; returns ``role -> (host, port)``.

        Bring-up is transactional: if any tier fails to bind, every
        already-bound server (the admin plane included) is stopped
        again in reverse order before the error propagates, so a failed
        ``repro.cli live --serve`` leaks no listening sockets.  With
        ``config.metrics_port`` set, the returned map gains an
        ``admin/http`` entry and the lag watchdog starts probing.
        """
        host = self.config.host
        endpoints: dict[str, tuple[str, int]] = {}
        async with self._lifecycle_lock:
            started: list[LiveUdpServer | LiveHttpServer] = []
            admin_started = False
            try:
                for server in self._servers:
                    endpoint = await server.start(host=host, port=0)
                    started.append(server)
                    node = server.node
                    if isinstance(server, LiveUdpServer):
                        self.transport.register_udp(node.address, endpoint)
                        endpoints[f"{node.name}/dns"] = endpoint
                    else:
                        self.transport.register_tcp(node.address, endpoint)
                        endpoints[f"{node.name}/http"] = endpoint
                if self.config.metrics_port is not None:
                    endpoints["admin/http"] = await self.admin.start(
                        host=host, port=self.config.metrics_port)
                    admin_started = True
            except Exception:
                if admin_started:
                    await self.admin.stop()
                for server in reversed(started):
                    await server.stop(0.0)
                raise
            self._started = True
            self.endpoints = dict(endpoints)
            self.watchdog.start()
            self._set_state("serving")
        return endpoints

    async def stop(self) -> None:
        """Graceful shutdown: drain (admin answering 503), then flush.

        The watchdog stops first (the blessed blocking flush below must
        not count as a stall) and the admin plane stops *last*, so
        ``/healthz`` keeps reporting ``draining`` while the cache tiers
        drain.  Telemetry is flushed in a ``finally``: an exception
        while draining still leaves the JSONL exports behind.
        """
        async with self._lifecycle_lock:
            if self._state == "stopped":
                return
            self.watchdog.stop()
            self._set_state("draining")
            try:
                if self.config.drain_grace_s > 0.0:
                    await asyncio.sleep(self.config.drain_grace_s)
                for server in self._servers:
                    await server.stop(self.config.drain_timeout_s)
            finally:
                await self.admin.stop()
                self._started = False
                self._set_state("stopped")
                self._flush_telemetry()

    def _flush_telemetry(self) -> None:
        from repro.telemetry.export import (
            write_metrics_jsonl,
            write_spans_jsonl,
        )

        if self.config.spans_path:
            write_spans_jsonl(self.telemetry, self.config.spans_path)
        if self.config.metrics_path:
            write_metrics_jsonl(self.telemetry, self.config.metrics_path)
        if self.config.logs_path:
            self.log.write_jsonl(self.config.logs_path)

    # ------------------------------------------------------------------
    # Population (mirrors Testbed's surface)
    # ------------------------------------------------------------------
    def add_domain(self, domain: str) -> None:
        """Publish ``domain`` upstream, resolving to the edge cache."""
        if domain in self._domains:
            return
        zone = Zone(domain)
        zone.add_a(domain, self.edge.address, ttl=_ZONE_TTL_S)
        self.dns_service.add_zone(zone)
        self._domains.add(domain)

    def host_object(self, url: str, size_bytes: int,
                    origin_delay_s: float = 0.0,
                    preload_edge: bool = True) -> DataObject:
        """Create an object at the origin and publish its domain."""
        parsed = Url.parse(url)
        self.add_domain(parsed.host)
        data_object = DataObject(parsed.base, size_bytes)
        self.origin_server.host(data_object, service_delay_s=origin_delay_s)
        self.directory.register(parsed.base, self.origin.address)
        if preload_edge:
            self.edge_server.preload([data_object])
            if origin_delay_s:
                self.edge_server.set_serve_delay(parsed.base, origin_delay_s)
        return data_object

    def add_client(self, app_id: str) -> ClientRuntime:
        """A new client device talking to the live AP."""
        self._clients += 1
        node = Node(self.engine, f"client{self._clients}",
                    IPv4Address(f"192.168.8.{100 + self._clients}"),
                    cpu_capacity=4)
        return ClientRuntime(node, self.transport, self.ap.address,
                             app_id=app_id, telemetry=self.telemetry)

    async def fetch(self, client: ClientRuntime, url: str) -> FetchResult:
        """Drive one client fetch to completion (coroutine form)."""
        result = await self.engine.run_process(client.fetch(url))
        return _t.cast(FetchResult, result)

    def __repr__(self) -> str:
        return (f"<LiveStack {self._state} clients={self._clients} "
                f"domains={len(self._domains)}>")


# ----------------------------------------------------------------------
# The admin plane
# ----------------------------------------------------------------------

def _dumps(payload: object) -> bytes:
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _query_int(query: str, key: str, default: int) -> int:
    """``n`` from ``?n=25``-style query strings; default on anything odd."""
    for part in query.split("&"):
        name, sep, value = part.partition("=")
        if sep and name == key:
            try:
                return max(1, int(value))
            except ValueError:
                return default
    return default


def _jsonable(value: object) -> object:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def _span_tree(root: Span, spans: _t.Sequence[Span]) -> dict[str, object]:
    """One trace rendered as a nested span dict (children inline)."""
    by_parent: dict[int | None, list[Span]] = {}
    for span in spans:
        by_parent.setdefault(span.parent_id, []).append(span)

    def node(span: Span) -> dict[str, object]:
        return {
            "name": span.name,
            "span": span.span_id,
            "start_ms": round(span.start_s * 1e3, 3),
            "duration_ms": round(span.duration_s * 1e3, 3),
            "status": span.status,
            "attrs": {key: _jsonable(span.attrs[key])
                      for key in sorted(span.attrs)},
            "children": [node(child)
                         for child in by_parent.get(span.span_id, [])],
        }

    return node(root)


def trace_payload(telemetry: Telemetry,
                  limit: int = DEFAULT_TRACE_LIMIT) -> dict[str, object]:
    """The ``/debug/traces`` document: N slowest/error trace trees.

    Error traces rank ahead of slow ones (that is what a flight
    recorder is for), then by root duration descending; ties break on
    trace id so the payload is deterministic.  Traces whose root lives
    in another registry (cross-component fragments) are skipped.
    """
    ranked: list[tuple[bool, float, int, Span, list[Span]]] = []
    for trace_id, spans in sorted(telemetry.spans.traces().items()):
        roots = [span for span in spans if span.parent_id is None]
        if not roots:
            continue
        root = roots[0]
        errored = any(span.status != "ok" for span in spans)
        ranked.append((errored, root.duration_s, trace_id, root, spans))
    ranked.sort(key=lambda entry: (not entry[0], -entry[1], entry[2]))
    traces = [{
        "trace": trace_id,
        "status": "error" if errored else "ok",
        "total_ms": round(duration_s * 1e3, 3),
        "spans": len(spans),
        "root": _span_tree(root, spans),
    } for errored, duration_s, trace_id, root, spans in ranked[:limit]]
    return {"traces": traces, "total_traces": len(ranked),
            "limit": limit}


class AdminServer:
    """The live admin plane on its own listening socket.

    Serves three endpoints over the same connection-close HTTP/1.1
    wire codec the cache path uses (so ``curl``/``urllib`` just work):

    * ``/metrics`` — Prometheus text exposition of every instrument
      (deterministic byte-for-byte on an idle stack);
    * ``/healthz`` — lifecycle JSON: 200 while ``serving``, 503 while
      ``starting``/``draining``/``stopped``, always carrying the state,
      bound endpoints, and in-flight counts;
    * ``/debug/traces`` — the N slowest/error traces as span trees
      (``?n=`` caps the count).

    Requests never mutate any instrument — a scrape observes the stack
    without perturbing the numbers it reports (admin activity goes to
    the structured log instead).  The server stays up through the
    drain so probes watch the 200 → 503 transition; the stack stops it
    last.
    """

    def __init__(self, stack: LiveStack) -> None:
        self._stack = stack
        self._server: asyncio.AbstractServer | None = None
        self._lock = asyncio.Lock()
        self.endpoint: tuple[str, int] | None = None
        self.requests_served = 0

    async def start(self, host: str = LIVE_HOST,
                    port: int = 0) -> tuple[str, int]:
        """Listen (``port`` 0 = ephemeral) and return the endpoint."""
        async with self._lock:
            server = await asyncio.start_server(self._serve, host, port)
            try:
                sockname = server.sockets[0].getsockname()
                self.endpoint = (sockname[0], sockname[1])
            except Exception:
                server.close()
                raise
            self._server = server
            return self.endpoint

    async def stop(self) -> None:
        async with self._lock:
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
                self._server = None

    async def _serve(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        try:
            request = await read_request(reader)
            status, payload, content_type = self._route(request)
            writer.write(
                encode_payload_response(status, payload, content_type))
            await writer.drain()
            self.requests_served += 1
            self._stack.log.log("admin_request", path=request.url.path,
                                status=status, bytes=len(payload))
        except (HttpError, OSError, asyncio.IncompleteReadError) as err:
            self._stack.log.log("admin_error", level="warning",
                                error=str(err))
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass

    def _route(self, request: HttpRequest) -> tuple[int, bytes, str]:
        stack = self._stack
        path = request.url.path
        if path == "/metrics":
            text = render_prometheus(stack.telemetry)
            return 200, text.encode("utf-8"), PROM_CONTENT_TYPE
        if path == "/healthz":
            payload = self._health_payload()
            status = 200 if payload["ok"] else 503
            return status, _dumps(payload), "application/json"
        if path == "/debug/traces":
            limit = _query_int(request.url.query, "n",
                               DEFAULT_TRACE_LIMIT)
            return 200, _dumps(trace_payload(stack.telemetry, limit)), \
                "application/json"
        return 404, _dumps({
            "error": f"unknown admin path {path}",
            "paths": ["/metrics", "/healthz", "/debug/traces"],
        }), "application/json"

    def _health_payload(self) -> dict[str, object]:
        stack = self._stack
        gauge = stack.telemetry.gauge("live.in_flight")
        in_flight = sum(gauge.value(**dict(key))
                        for key in gauge.labelsets())
        return {
            "state": stack.state,
            "ok": stack.state == "serving",
            "endpoints": {role: list(endpoint) for role, endpoint
                          in sorted(stack.endpoints.items())},
            "in_flight": in_flight,
            "tasks_active": len(stack.engine.tasks),
            "requests_served": sum(server.requests_served
                                   for server in stack._servers),
            "watchdog": {"probes": stack.watchdog.probes,
                         "stalls": stack.watchdog.stalls},
        }


# ----------------------------------------------------------------------
# The `repro.cli live` entry point
# ----------------------------------------------------------------------

#: The demo catalog: a few app objects sized like the paper's workload.
_DEMO_OBJECTS = (
    ("http://demo-a.example/feed.json", 24 * 1024),
    ("http://demo-a.example/avatar.png", 96 * 1024),
    ("http://demo-b.example/bundle.js", 160 * 1024),
)
_DEMO_TTL_MIN = 5.0
_DEMO_PRIORITY = 2


def _demo_spec(url: str):
    from repro.core.annotations import CacheableSpec

    return CacheableSpec(url=url, priority=_DEMO_PRIORITY,
                         ttl_s=_DEMO_TTL_MIN * 60.0)


def _block_loop(seconds: float) -> None:
    """Deliberately block the event loop for ``seconds``.

    The watchdog's demo/test hook (``repro.cli live
    --inject-stall-ms``): a synchronous sleep inside the serving
    coroutine delays every pending callback — including the watchdog
    probe — exactly like an accidental blocking call would.  Blessed in
    ``[tool.repro-lint] async-blocking-allow``; production code must
    never call it.
    """
    time.sleep(seconds)


async def _run_stack(config: LiveStackConfig, demo_requests: int,
                     serve: bool, emit: _t.Callable[[str], None],
                     inject_stall_ms: float = 0.0) -> int:
    engine = WallClock()
    stack = LiveStack(engine, config=config)
    for url, size in _DEMO_OBJECTS:
        stack.host_object(url, size)
    endpoints = await stack.start()
    for role in sorted(endpoints):
        host, port = endpoints[role]
        emit(f"live: {role} on {host}:{port}")

    shutdown = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, shutdown.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass

    try:
        client = stack.add_client("demo")
        for spec_url, _size in _DEMO_OBJECTS:
            client.register_spec(_demo_spec(spec_url))
        hits = 0
        for index in range(demo_requests):
            url, _size = _DEMO_OBJECTS[index % len(_DEMO_OBJECTS)]
            result = await stack.fetch(client, url)
            hits += int(result.source == "ap-hit")
            emit(f"live: fetch {url} -> {result.source} "
                 f"({result.total_latency_s * 1e3:.2f} ms)")
            requests = stack.telemetry.spans.finished("request")
            stack.log.log(
                "fetch", span=requests[-1] if requests else None,
                url=url, source=result.source,
                total_ms=round(result.total_latency_s * 1e3, 3))
        if demo_requests:
            emit(f"live: {hits}/{demo_requests} served from the AP "
                 f"cache")

        if inject_stall_ms > 0.0:
            _block_loop(inject_stall_ms / 1e3)
            # Yield so the now-overdue watchdog probe runs and records
            # the stall before the stack stops.
            await asyncio.sleep(0.05)
            emit(f"live: injected a {inject_stall_ms:.0f} ms loop "
                 f"stall ({stack.watchdog.stalls} counted)")

        if serve:
            emit("live: serving (SIGINT/SIGTERM to stop)")
            await shutdown.wait()
            emit("live: signal received, draining")
    finally:
        # The failure path flushes too: stop() exports spans/metrics/
        # logs even when the serve loop above raised (and stop()'s own
        # finally keeps that true when a drain fails).
        await stack.stop()
    engine.raise_unwaited()
    emit(f"live: drained, {stack.transport.udp_exchanges} udp / "
         f"{stack.transport.tcp_exchanges} tcp exchanges")
    return 0


def run_live(demo_requests: int = 6, serve: bool = False,
             spans_path: str = "", metrics_path: str = "",
             logs_path: str = "", metrics_port: int | None = None,
             drain_grace_s: float = 0.0,
             watchdog_interval_s: float = 0.25,
             inject_stall_ms: float = 0.0,
             emit: _t.Callable[[str], None] = print) -> int:
    """Serve the live stack; the ``repro.cli live`` implementation.

    Runs the demo request driver, then (with ``serve=True``) stays up
    until SIGINT/SIGTERM, drains, flushes telemetry, and returns 0.
    ``metrics_port`` binds the admin plane (0 = ephemeral; the bound
    port is printed as ``live: admin/http on host:port``).
    """
    config = LiveStackConfig(spans_path=spans_path,
                             metrics_path=metrics_path,
                             logs_path=logs_path,
                             metrics_port=metrics_port,
                             drain_grace_s=drain_grace_s,
                             watchdog_interval_s=watchdog_interval_s)
    return asyncio.run(_run_stack(config, demo_requests, serve, emit,
                                  inject_stall_ms=inject_stall_ms))
