"""The engine seam: one clock/scheduler interface, two engines.

Everything above the kernel — the network model, DNS and HTTP stacks,
the AP/client runtimes, PACM — is written against the small
:class:`~repro.engine.api.Scheduler` protocol defined here, never
against a concrete engine.  Two implementations exist:

* :class:`repro.sim.kernel.Simulator` — virtual time, an event heap,
  fully deterministic; every experiment and test runs here.
* :class:`repro.engine.wallclock.WallClock` — real time on an asyncio
  loop; the live serving stack (:mod:`repro.engine.live`) runs the very
  same components on it over loopback sockets.

The event primitives (:mod:`repro.engine.events`) and resource models
(:mod:`repro.engine.resources`) are engine-agnostic and shared by both.
"""

from repro.engine.api import (
    HOUR,
    MINUTE,
    MS,
    SECOND,
    Clock,
    Engine,
    Scheduler,
    build_engine,
)
from repro.engine.events import (
    AllOf,
    AnyOf,
    Condition,
    Event,
    Process,
    Timeout,
)
from repro.engine.resources import Resource, ServiceQueue, Store
from repro.engine.wallclock import WallClock

__all__ = [
    "AllOf",
    "AnyOf",
    "Clock",
    "Condition",
    "Engine",
    "Event",
    "HOUR",
    "MINUTE",
    "MS",
    "Process",
    "Resource",
    "SECOND",
    "Scheduler",
    "ServiceQueue",
    "Store",
    "Timeout",
    "WallClock",
    "build_engine",
]
