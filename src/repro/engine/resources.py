"""Shared-resource primitives for contention, on either engine.

The AP's CPU, an HTTP server's worker pool, and a link's serialization slot
are all modeled as a :class:`Resource` — a counted semaphore with a FIFO
wait queue.  :class:`ServiceQueue` layers a per-request service time on top,
which is how the reproduction models "handling a DNS query costs the router
X microseconds of CPU".  Under the virtual-time engine the service time is
simulated; under :class:`~repro.engine.wallclock.WallClock` it is a real
sleep, so a router-class single-slot CPU still serializes live requests.
"""

from __future__ import annotations

import typing as _t
from collections import deque

from repro.errors import SimulationError
from repro.engine.api import Scheduler
from repro.engine.events import Event

__all__ = ["Resource", "ServiceQueue", "Store"]


class Resource:
    """A counted resource with FIFO queuing.

    Usage inside a process::

        request = resource.request()
        yield request
        try:
            yield sim.timeout(work)
        finally:
            resource.release(request)
    """

    def __init__(self, sim: Scheduler, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiting: deque[Event] = deque()
        self._granted: set[int] = set()

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Event:
        """Return an event that triggers once a slot is granted."""
        event = self.sim.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            self._granted.add(id(event))
            event.succeed(self)
        else:
            self._waiting.append(event)
        return event

    def release(self, request: Event) -> None:
        """Release the slot granted to ``request``."""
        if id(request) not in self._granted:
            if request in self._waiting:
                self._waiting.remove(request)
                return
            raise SimulationError("released a request that was never granted")
        self._granted.discard(id(request))
        self._in_use -= 1
        while self._waiting and self._in_use < self.capacity:
            waiter = self._waiting.popleft()
            self._in_use += 1
            self._granted.add(id(waiter))
            waiter.succeed(self)


class ServiceQueue:
    """A resource whose holders occupy it for a caller-supplied service time.

    ``use(duration)`` returns a process that waits for a slot, holds it for
    ``duration`` seconds, then releases it.  Total sojourn time (wait +
    service) is the process's return value, which experiments use to
    attribute queueing delay.
    """

    def __init__(self, sim: Scheduler, capacity: int = 1) -> None:
        self.sim = sim
        self._resource = Resource(sim, capacity)
        self.busy_time = 0.0
        self.completed = 0

    @property
    def queue_length(self) -> int:
        return self._resource.queue_length

    @property
    def in_use(self) -> int:
        return self._resource.in_use

    def use(self, duration: float):
        """Start a process that occupies one slot for ``duration`` seconds."""
        return self.sim.process(self._use(duration))

    def _use(self, duration: float):
        started = self.sim.now
        request = self._resource.request()
        yield request
        try:
            yield self.sim.timeout(duration)
        finally:
            self._resource.release(request)
            self.busy_time += duration
            self.completed += 1
        return self.sim.now - started

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` wall time the queue spent busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / (elapsed * self._resource.capacity))


class Store:
    """An unbounded FIFO buffer of items with blocking ``get``.

    Used for mailbox-style communication between processes (e.g. a
    server's inbound request queue).
    """

    def __init__(self, sim: Scheduler) -> None:
        self.sim = sim
        self._items: deque[object] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: object) -> None:
        """Deposit ``item``, waking the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that triggers with the next available item."""
        event = self.sim.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event
