"""The clock/scheduler protocol both engines implement.

All simulated (or served) time in this library is expressed in
**seconds** as floats; the helper constants :data:`MS` and
:data:`MINUTE` keep call sites readable.  Components take a
:class:`Scheduler` (the clock plus event factories) and never import a
concrete engine — :func:`build_engine` is the one place an engine kind
is turned into an instance.
"""

from __future__ import annotations

import typing as _t

from repro.errors import ConfigError

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.engine.events import AllOf, AnyOf, Event, Process, Timeout

__all__ = [
    "MS", "SECOND", "MINUTE", "HOUR",
    "URGENT", "NORMAL",
    "Clock", "Scheduler", "Engine",
    "ENGINE_KINDS", "build_engine",
]

MS: float = 1e-3
SECOND: float = 1.0
MINUTE: float = 60.0
HOUR: float = 3600.0

#: Scheduling priorities: urgent events (interrupts, run-until stops)
#: preempt normal ones that fire at the same instant.
URGENT: int = 0
NORMAL: int = 1


@_t.runtime_checkable
class Clock(_t.Protocol):
    """Anything that can tell the current time in seconds."""

    @property
    def now(self) -> float:
        """Current time in seconds (virtual or wall, engine-dependent)."""
        ...


@_t.runtime_checkable
class Scheduler(Clock, _t.Protocol):
    """The engine seam: a clock plus event scheduling.

    :class:`repro.sim.kernel.Simulator` implements this over a virtual
    clock and an event heap; :class:`repro.engine.wallclock.WallClock`
    implements it over an asyncio loop and the host's monotonic clock.
    The event primitives in :mod:`repro.engine.events` only ever touch
    this surface (plus the ``_active_process`` bookkeeping attribute),
    which is what makes every component engine-agnostic.
    """

    #: Events executed so far — the denominator for the telemetry
    #: layer's host-profiling hook (events/sec, wall-ms per sim-s).
    events_processed: int

    @property
    def active_process(self) -> "Process | None":
        """The process currently being resumed, if any."""
        ...

    def event(self) -> "Event":
        """Create a plain, untriggered event."""
        ...

    def timeout(self, delay: float, value: object = None) -> "Timeout":
        """Create an event that fires ``delay`` seconds from now."""
        ...

    def process(self, generator: _t.Generator["Event", object, object],
                ) -> "Process":
        """Register a generator as a process and start it."""
        ...

    def all_of(self, events: _t.Sequence["Event"]) -> "AllOf":
        """An event triggering once all ``events`` have succeeded."""
        ...

    def any_of(self, events: _t.Sequence["Event"]) -> "AnyOf":
        """An event triggering once any one of ``events`` has succeeded."""
        ...

    def _schedule(self, event: "Event", delay: float = 0.0,
                  priority: int = NORMAL) -> None:
        """Schedule ``event`` to be processed ``delay`` seconds from now."""
        ...


#: Components annotate the seam as ``Scheduler``; ``Engine`` is the
#: reading-aloud alias for call sites that hold a whole engine.
Engine = Scheduler

ENGINE_KINDS: tuple[str, ...] = ("sim", "wall")


def build_engine(kind: str = "sim") -> Scheduler:
    """Instantiate an engine by kind: ``"sim"`` or ``"wall"``.

    The concrete engine modules are imported lazily so that importing
    the seam never drags in the event heap or asyncio.
    """
    if kind == "sim":
        from repro.sim.kernel import Simulator

        return Simulator()
    if kind in ("wall", "wallclock"):
        from repro.engine.wallclock import WallClock

        return WallClock()
    raise ConfigError(
        f"unknown engine kind {kind!r}; expected one of {ENGINE_KINDS}")
