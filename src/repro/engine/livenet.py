"""Real loopback sockets behind the simulated transport interface.

The simulator's :class:`~repro.net.transport.Transport` models delay; in
a live deployment the network itself provides it.  This module swaps
only that one layer: :class:`LiveTransport` exposes the same
``udp_request`` / ``tcp_exchange`` generator interface, but each call
bridges into asyncio socket IO (:meth:`WallClock.from_awaitable`), so
the unchanged protocol handlers — the AP runtime, DNS services, HTTP
servers — run on real packets.

Server side, :class:`LiveUdpServer` and :class:`LiveHttpServer` feed
inbound datagrams/connections into a :class:`~repro.net.node.Node`'s
registered handlers, exactly where the simulated transport would have
dispatched.  The well-known port constants (``UDP_DNS_PORT``,
``TCP_HTTP_PORT``) remain the *handler-registry* keys; the real,
ephemeral OS ports live in the transport's endpoint map so the whole
stack can bind port 0.

All live-health instruments are pre-registered by
:func:`register_live_instruments` so the ``metric:live.socket_errors``
sentry budget resolves to an honest zero on a clean run.
"""

from __future__ import annotations

import asyncio
import typing as _t

from repro.errors import TransportError
from repro.engine.wallclock import WallClock
from repro.httplib.wire import (
    encode_request,
    encode_response,
    read_request,
    read_response,
)
from repro.net.address import IPv4Address
from repro.net.node import Node, TCP_HTTP_PORT, UDP_DNS_PORT
from repro.telemetry.registry import NULL, Telemetry

__all__ = [
    "LIVE_HOST",
    "LiveTransport",
    "LiveUdpServer",
    "LiveHttpServer",
    "register_live_instruments",
]

#: Every live endpoint binds loopback; the stack is single-host.
LIVE_HOST = "127.0.0.1"

Endpoint = tuple[str, int]


def register_live_instruments(telemetry: Telemetry) -> None:
    """Pre-register the ``live.*`` health instruments.

    Called at stack construction — before any traffic — so sentry
    budgets (``metric:live.socket_errors/value <= 0``) and the obs
    panel's live-health table resolve to honest zeros rather than
    "unresolved" on runs that never erred.
    """
    telemetry.counter("live.socket_errors",
                      help="socket-level failures in the live stack, "
                           "by role")
    telemetry.counter("live.request_timeouts",
                      help="live UDP exchanges that timed out, by role")
    telemetry.gauge("live.in_flight",
                    help="requests currently inside live servers, "
                         "by server role")
    telemetry.gauge("live.tasks_active",
                    help="bridged engine tasks currently alive in the "
                         "owned task set")
    telemetry.histogram("live.loop_lag_ms",
                        help="event-loop scheduling delay per watchdog "
                             "probe (docs/live.md)")
    telemetry.counter("live.loop_stalls",
                      help="watchdog probes delayed past the stall "
                           "threshold")


class LiveTransport:
    """The simulated transport interface over real loopback sockets.

    ``udp_request`` and ``tcp_exchange`` keep their generator form —
    protocol handlers still ``yield sim.process(transport...)`` — but
    the body is one bridged socket exchange instead of modeled delays.
    Addresses are mapped to real ``(host, port)`` endpoints via
    :meth:`register_udp` / :meth:`register_tcp` as servers come up.
    """

    #: The live transport has no simulated topology behind it; callers
    #: that reach for ``transport.network`` (the HTTPS delay model) are
    #: sim-only paths.
    network = None

    def __init__(self, engine: WallClock,
                 telemetry: Telemetry = NULL,
                 udp_timeout_s: float = 1.0,
                 udp_retries: int = 3) -> None:
        self.sim = engine
        self.engine = engine
        self.udp_timeout_s = udp_timeout_s
        self.udp_retries = udp_retries
        self._udp: dict[str, Endpoint] = {}
        self._tcp: dict[str, Endpoint] = {}
        register_live_instruments(telemetry)
        self._socket_errors = telemetry.counter("live.socket_errors")
        self._request_timeouts = telemetry.counter("live.request_timeouts")
        self.udp_exchanges = 0
        self.tcp_exchanges = 0

    # ------------------------------------------------------------------
    # Endpoint registry
    # ------------------------------------------------------------------
    def register_udp(self, address: "IPv4Address | str",
                     endpoint: Endpoint) -> None:
        """Map ``address`` (the node's identity) to a bound UDP socket."""
        self._udp[str(IPv4Address(address))] = endpoint

    def register_tcp(self, address: "IPv4Address | str",
                     endpoint: Endpoint) -> None:
        """Map ``address`` to a listening TCP socket."""
        self._tcp[str(IPv4Address(address))] = endpoint

    def _lookup(self, table: dict[str, Endpoint],
                address: object, proto: str) -> Endpoint:
        endpoint = table.get(str(IPv4Address(_t.cast(str, address))))
        if endpoint is None:
            raise TransportError(
                f"no live {proto} endpoint registered for {address}")
        return endpoint

    # ------------------------------------------------------------------
    # The Transport interface
    # ------------------------------------------------------------------
    def udp_request(self, src: str, dst_address: object, port: int,
                    payload: bytes):
        """Generator: send a datagram, return the response bytes."""
        endpoint = self._lookup(self._udp, dst_address, "udp")
        self.udp_exchanges += 1
        response = yield self.engine.from_awaitable(
            self._udp_io(endpoint, bytes(payload)))
        return _t.cast(bytes, response)

    def tcp_exchange(self, src: str, dst_address: object, port: int,
                     request: object):
        """Generator: one connection-close HTTP exchange."""
        endpoint = self._lookup(self._tcp, dst_address, "tcp")
        self.tcp_exchanges += 1
        response = yield self.engine.from_awaitable(
            self._tcp_io(endpoint, request))
        return response

    def one_way(self, src: str, dst: str, size_bytes: int = 0):
        """Unsupported live: only the simulated HTTPS path models this."""
        raise TransportError(
            "the live transport cannot model one-way TLS trips; "
            "serve plain http:// URLs on the live stack")

    # ------------------------------------------------------------------
    # Socket IO
    # ------------------------------------------------------------------
    async def _udp_io(self, endpoint: Endpoint, payload: bytes) -> bytes:
        loop = asyncio.get_running_loop()
        attempts = 1 + max(0, self.udp_retries)
        for _attempt in range(attempts):
            waiter: "asyncio.Future[bytes]" = loop.create_future()
            try:
                transport, _protocol = await loop.create_datagram_endpoint(
                    lambda: _OneShotUdpClient(waiter),
                    remote_addr=endpoint)
            except OSError as err:
                self._socket_errors.inc(role="udp-client")
                raise TransportError(
                    f"cannot open datagram socket to {endpoint}: {err}")
            try:
                transport.sendto(payload)
                return await asyncio.wait_for(waiter, self.udp_timeout_s)
            except asyncio.TimeoutError:
                self._request_timeouts.inc(role="udp-client")
                continue
            except OSError as err:
                self._socket_errors.inc(role="udp-client")
                raise TransportError(
                    f"datagram exchange with {endpoint} failed: {err}")
            finally:
                transport.close()
        raise TransportError(
            f"no reply from {endpoint} after {attempts} attempts")

    async def _tcp_io(self, endpoint: Endpoint, request: object) -> object:
        try:
            reader, writer = await asyncio.open_connection(*endpoint)
        except OSError as err:
            self._socket_errors.inc(role="tcp-client")
            raise TransportError(
                f"cannot connect to {endpoint}: {err}")
        try:
            writer.write(encode_request(_t.cast("_t.Any", request)))
            await writer.drain()
            return await read_response(reader)
        except OSError as err:
            self._socket_errors.inc(role="tcp-client")
            raise TransportError(
                f"exchange with {endpoint} failed: {err}")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass


class _OneShotUdpClient(asyncio.DatagramProtocol):
    """Resolves a future with the first datagram received."""

    def __init__(self, waiter: "asyncio.Future[bytes]") -> None:
        self._waiter = waiter

    def datagram_received(self, data: bytes, addr: Endpoint) -> None:
        if not self._waiter.done():
            self._waiter.set_result(data)

    def error_received(self, exc: OSError) -> None:
        if not self._waiter.done():
            self._waiter.set_exception(exc)


class _ServerBase:
    """In-flight bookkeeping and drain logic shared by both servers."""

    role = "server"

    def __init__(self, engine: WallClock, node: Node,
                 telemetry: Telemetry = NULL) -> None:
        self.engine = engine
        self.node = node
        register_live_instruments(telemetry)
        self._in_flight = telemetry.gauge("live.in_flight")
        self._socket_errors = telemetry.counter("live.socket_errors")
        self._pending: set[asyncio.Future[object]] = set()
        #: Serializes start/stop: both write the listening-socket slot,
        #: and interleaving them at an await point would leak it.
        self._lifecycle_lock = asyncio.Lock()
        self.requests_served = 0

    def _track(self, future: "asyncio.Future[object]") -> None:
        self._pending.add(future)
        self._in_flight.add(1, role=self.role)

        def _untrack(done: "asyncio.Future[object]") -> None:
            self._pending.discard(done)
            self._in_flight.add(-1, role=self.role)

        future.add_done_callback(_untrack)

    async def drain(self, timeout_s: float = 5.0) -> None:
        """Wait for every in-flight request to finish."""
        pending = [future for future in self._pending if not future.done()]
        if pending:
            await asyncio.wait(pending, timeout=timeout_s)


class LiveUdpServer(_ServerBase):
    """Feeds real datagrams into a node's registered UDP handler.

    The handler generator (for the AP: ``ApRuntime.respond`` via
    ``ForwardingDnsService._handle``) runs as an engine process; its
    return value, the reply payload, is sent back to the querier.
    """

    role = "udp"

    def __init__(self, engine: WallClock, node: Node,
                 port_label: int = UDP_DNS_PORT,
                 telemetry: Telemetry = NULL) -> None:
        super().__init__(engine, node, telemetry)
        self.port_label = port_label
        self._transport: asyncio.DatagramTransport | None = None

    async def start(self, host: str = LIVE_HOST,
                    port: int = 0) -> Endpoint:
        """Bind (``port`` 0 = ephemeral) and return the bound endpoint."""
        loop = asyncio.get_running_loop()
        async with self._lifecycle_lock:
            transport, _protocol = await loop.create_datagram_endpoint(
                lambda: _UdpServerProtocol(self), local_addr=(host, port))
            try:
                sockname = transport.get_extra_info("sockname")
                endpoint = (sockname[0], sockname[1])
            except Exception:
                # Startup failed after the bind: close the socket so a
                # failed bring-up leaks no fd.
                transport.close()
                raise
            self._transport = transport
        return endpoint

    def _dispatch(self, data: bytes, addr: Endpoint) -> None:
        source = IPv4Address(addr[0])
        handler = self.node.handle_udp(self.port_label, data, source)
        process = self.engine.process(self._respond(handler, addr))
        future = asyncio.ensure_future(self.engine.wait(process))
        self._track(future)
        future.add_done_callback(self._log_failure)

    def _respond(self, handler: _t.Generator[object, object, object],
                 addr: Endpoint):
        reply = yield self.engine.process(
            _t.cast("_t.Any", handler))
        if reply is not None and self._transport is not None:
            self._transport.sendto(_t.cast(bytes, reply), addr)
        self.requests_served += 1

    def _log_failure(self, done: "asyncio.Future[object]") -> None:
        if not done.cancelled() and done.exception() is not None:
            # DNS handlers answer SERVFAIL themselves; anything that
            # escapes is a transport/codec defect worth counting.
            self._socket_errors.inc(role=self.role)

    async def stop(self, drain_timeout_s: float = 5.0) -> None:
        """Stop accepting datagrams, then drain in-flight handlers."""
        async with self._lifecycle_lock:
            if self._transport is not None:
                self._transport.close()
                self._transport = None
        await self.drain(drain_timeout_s)


class _UdpServerProtocol(asyncio.DatagramProtocol):
    def __init__(self, server: LiveUdpServer) -> None:
        self._server = server

    def datagram_received(self, data: bytes, addr: Endpoint) -> None:
        self._server._dispatch(data, addr)


class LiveHttpServer(_ServerBase):
    """Feeds real HTTP/1.1 connections into a node's TCP handler.

    One request per connection (connection-close), mirroring the
    simulated ``tcp_exchange`` semantics.
    """

    role = "http"

    def __init__(self, engine: WallClock, node: Node,
                 port_label: int = TCP_HTTP_PORT,
                 telemetry: Telemetry = NULL) -> None:
        super().__init__(engine, node, telemetry)
        self.port_label = port_label
        self._server: asyncio.AbstractServer | None = None

    async def start(self, host: str = LIVE_HOST,
                    port: int = 0) -> Endpoint:
        """Listen (``port`` 0 = ephemeral) and return the endpoint."""
        async with self._lifecycle_lock:
            server = await asyncio.start_server(self._serve, host, port)
            try:
                sockname = server.sockets[0].getsockname()
                endpoint = (sockname[0], sockname[1])
            except Exception:
                # Startup failed after the listen socket came up: close
                # it so a failed bring-up leaks no fd.
                server.close()
                raise
            self._server = server
        return endpoint

    async def _serve(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._track(task)
        try:
            request = await read_request(reader)
            peer = writer.get_extra_info("peername") or (LIVE_HOST, 0)
            handler = self.node.handle_tcp(self.port_label, request,
                                           IPv4Address(peer[0]))
            response = await self.engine.wait(
                self.engine.process(_t.cast("_t.Any", handler)))
            writer.write(encode_response(_t.cast("_t.Any", response)))
            await writer.drain()
            self.requests_served += 1
        except (OSError, asyncio.IncompleteReadError):
            self._socket_errors.inc(role=self.role)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass

    async def stop(self, drain_timeout_s: float = 5.0) -> None:
        """Stop accepting connections, then drain in-flight requests."""
        async with self._lifecycle_lock:
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
                self._server = None
        await self.drain(drain_timeout_s)
