"""Point-to-point links with latency and bandwidth.

A link contributes its propagation delay to every traversal and serializes
payload bytes at its bandwidth.  Link kinds carry the defaults used by the
paper's testbed (WiFi hop, wired LAN hop, WAN hop).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import NetworkError
from repro.engine.api import MS
from repro.telemetry.registry import NULL

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry import Telemetry

__all__ = ["Link", "LinkKind", "WIFI", "ETHERNET", "WAN"]


@dataclasses.dataclass(frozen=True)
class LinkKind:
    """Template of per-kind defaults."""

    name: str
    latency_s: float
    bandwidth_bps: float


#: ~1 ms one-way over 802.11ac within a home/office WLAN.
WIFI = LinkKind("wifi", latency_s=1.0 * MS, bandwidth_bps=300e6)
#: Sub-millisecond wired LAN hop.
ETHERNET = LinkKind("ethernet", latency_s=0.2 * MS, bandwidth_bps=1e9)
#: A WAN hop: ~2 ms propagation per hop reproduces the paper's measured
#: "7 hops -> ~28-30 ms RTT" edge-server path.
WAN = LinkKind("wan", latency_s=2.0 * MS, bandwidth_bps=100e6)


class Link:
    """A bidirectional edge between two node names."""

    def __init__(self, a: str, b: str, latency_s: float,
                 bandwidth_bps: float, name: str = "",
                 kind: str = "link",
                 telemetry: "Telemetry | None" = None) -> None:
        if latency_s < 0:
            raise NetworkError(f"negative latency {latency_s!r}")
        if bandwidth_bps <= 0:
            raise NetworkError(f"non-positive bandwidth {bandwidth_bps!r}")
        self.a = a
        self.b = b
        self.latency_s = latency_s
        self.bandwidth_bps = bandwidth_bps
        self.name = name or f"{a}<->{b}"
        self.kind = kind
        self.bytes_carried = 0
        self._bytes_counter = (telemetry if telemetry is not None
                               else NULL).counter(
            "net.link_bytes", help="payload bytes carried, by link kind")

    @classmethod
    def of_kind(cls, a: str, b: str, kind: LinkKind,
                latency_s: float | None = None,
                telemetry: "Telemetry | None" = None) -> "Link":
        """Build a link from a :class:`LinkKind`, optionally overriding latency."""
        return cls(a, b,
                   kind.latency_s if latency_s is None else latency_s,
                   kind.bandwidth_bps,
                   name=f"{a}<->{b}:{kind.name}",
                   kind=kind.name, telemetry=telemetry)

    def endpoints(self) -> tuple[str, str]:
        """Both endpoint node names."""
        return (self.a, self.b)

    def other_end(self, node: str) -> str:
        """The opposite endpoint from `node`; raises if `node` is neither."""
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise NetworkError(f"{node!r} is not an endpoint of {self.name}")

    def transmission_time(self, size_bytes: int) -> float:
        """Serialization delay for ``size_bytes`` at this link's bandwidth."""
        if size_bytes < 0:
            raise NetworkError(f"negative payload size {size_bytes}")
        return (size_bytes * 8.0) / self.bandwidth_bps

    def traverse_time(self, size_bytes: int) -> float:
        """Propagation plus serialization for one traversal."""
        return self.latency_s + self.transmission_time(size_bytes)

    def account(self, size_bytes: int) -> None:
        """Record carried traffic (for utilization reporting)."""
        self.bytes_carried += size_bytes
        self._bytes_counter.inc(size_bytes, kind=self.kind)

    def __repr__(self) -> str:
        return (f"<Link {self.name} {self.latency_s * 1e3:.2f}ms "
                f"{self.bandwidth_bps / 1e6:.0f}Mbps>")
