"""IPv4 addresses for the simulated internetwork.

Real address semantics matter here because APE-CACHE's protocol returns
*dummy* IP addresses in DNS responses to short-circuit upstream resolution;
the client must be able to tell a dummy apart from a routable address.
"""

from __future__ import annotations

from repro.errors import AddressError

__all__ = ["IPv4Address", "AddressAllocator", "DUMMY_IP"]


class IPv4Address:
    """A dotted-quad IPv4 address, hashable and totally ordered."""

    __slots__ = ("_packed",)

    def __init__(self, address: "str | int | IPv4Address") -> None:
        if isinstance(address, IPv4Address):
            self._packed = address._packed
        elif isinstance(address, int):
            if not 0 <= address <= 0xFFFFFFFF:
                raise AddressError(f"address integer out of range: {address}")
            self._packed = address
        elif isinstance(address, str):
            self._packed = self._parse(address)
        else:
            raise AddressError(f"cannot build an address from {address!r}")

    @staticmethod
    def _parse(text: str) -> int:
        parts = text.split(".")
        if len(parts) != 4:
            raise AddressError(f"malformed IPv4 address: {text!r}")
        packed = 0
        for part in parts:
            if not part.isdigit():
                raise AddressError(f"malformed IPv4 address: {text!r}")
            octet = int(part)
            if octet > 255 or (part != "0" and part.startswith("0")):
                raise AddressError(f"malformed IPv4 address: {text!r}")
            packed = (packed << 8) | octet
        return packed

    @property
    def packed(self) -> int:
        """The address as a 32-bit integer."""
        return self._packed

    def to_bytes(self) -> bytes:
        """4-byte big-endian wire form (used by DNS A records)."""
        return self._packed.to_bytes(4, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "IPv4Address":
        """Parse the 4-byte big-endian wire form."""
        if len(data) != 4:
            raise AddressError(f"expected 4 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    def is_private(self) -> bool:
        """RFC1918 check; the testbed LAN lives in 192.168.0.0/16."""
        top = self._packed >> 24
        if top == 10:
            return True
        if top == 172 and 16 <= ((self._packed >> 16) & 0xFF) <= 31:
            return True
        return top == 192 and ((self._packed >> 16) & 0xFF) == 168

    def __str__(self) -> str:
        return ".".join(str((self._packed >> shift) & 0xFF)
                        for shift in (24, 16, 8, 0))

    def __repr__(self) -> str:
        return f"IPv4Address({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Address):
            return self._packed == other._packed
        if isinstance(other, str):
            try:
                return self._packed == IPv4Address(other)._packed
            except AddressError:
                return False
        return NotImplemented

    def __lt__(self, other: "IPv4Address") -> bool:
        return self._packed < other._packed

    def __hash__(self) -> int:
        return hash(self._packed)


#: The dummy address APE-CACHE APs return when upstream DNS resolution was
#: skipped because every URL under the queried domain was already cached.
#: 0.0.0.0 is never routable, so clients can detect the short circuit.
DUMMY_IP = IPv4Address("0.0.0.0")


class AddressAllocator:
    """Hands out unique addresses from a /16-style pool."""

    def __init__(self, base: str = "10.0.0.0", pool_size: int = 65536) -> None:
        self._base = IPv4Address(base).packed
        self._pool_size = pool_size
        self._next = 1  # skip the network address itself

    def allocate(self) -> IPv4Address:
        """Return the next free address; raises once the pool is exhausted."""
        if self._next >= self._pool_size:
            raise AddressError("address pool exhausted")
        address = IPv4Address(self._base + self._next)
        self._next += 1
        return address

    def allocate_many(self, count: int) -> list[IPv4Address]:
        """Allocate `count` consecutive unique addresses."""
        return [self.allocate() for _ in range(count)]
