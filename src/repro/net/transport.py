"""UDP and TCP transport over the simulated internetwork.

Both primitives are generator functions intended to be yielded from inside
simulated processes::

    response = yield sim.process(transport.udp_request(...))

*UDP* is a single request/response datagram pair: one-way delay out,
handler execution at the destination, one-way delay back.  DNS and
DNS-Cache queries ride on this.

*TCP* models what the paper measures as cache-retrieval latency: a
connect handshake (one RTT), the request's one-way trip, server-side
handling, and the response's one-way trip including serialization of the
payload.  Objects exchanged over TCP must expose a ``wire_size`` attribute
(bytes) so serialization delay can be computed.
"""

from __future__ import annotations

import random as _random
import typing as _t

from repro.errors import TransportError
from repro.net.address import IPv4Address
from repro.net.network import Network

__all__ = ["Transport", "wire_size_of"]

#: Fixed per-datagram UDP header overhead (IP + UDP headers).
UDP_OVERHEAD_BYTES = 28
#: Fixed per-segment TCP overhead (IP + TCP headers).
TCP_OVERHEAD_BYTES = 40


def wire_size_of(message: object) -> int:
    """Bytes a message occupies on the wire.

    Accepts raw ``bytes`` or any object with a ``wire_size`` attribute.
    """
    if isinstance(message, (bytes, bytearray)):
        return len(message)
    size = getattr(message, "wire_size", None)
    if size is None:
        raise TransportError(
            f"{type(message).__name__} has no wire_size attribute")
    return int(size)


class Transport:
    """Request/response messaging between nodes.

    Parameters
    ----------
    network:
        The topology to route over.
    rng:
        Optional randomness source for latency jitter.
    jitter_fraction:
        Each one-way delay is multiplied by ``1 + U(-j, +j)``.  Zero keeps
        the transport fully deterministic (the default for unit tests).
    """

    def __init__(self, network: Network,
                 rng: _random.Random | None = None,
                 jitter_fraction: float = 0.0,
                 loss_rate: float = 0.0,
                 udp_timeout_s: float = 1.0,
                 udp_retries: int = 3) -> None:
        if jitter_fraction < 0 or jitter_fraction >= 1:
            raise TransportError(
                f"jitter_fraction must be in [0, 1), got {jitter_fraction}")
        if not 0.0 <= loss_rate < 1.0:
            raise TransportError(
                f"loss_rate must be in [0, 1), got {loss_rate}")
        if udp_timeout_s <= 0 or udp_retries < 0:
            raise TransportError("bad UDP timeout/retry configuration")
        self.network = network
        self.sim = network.sim
        self._rng = rng or _random.Random(0)
        self.jitter_fraction = jitter_fraction
        self.loss_rate = loss_rate
        self.udp_timeout_s = udp_timeout_s
        self.udp_retries = udp_retries
        self.udp_exchanges = 0
        self.udp_losses = 0
        self.tcp_exchanges = 0

    # ------------------------------------------------------------------
    # Delay helpers
    # ------------------------------------------------------------------
    def _jitter(self, delay: float) -> float:
        if self.jitter_fraction == 0.0:
            return delay
        spread = self.jitter_fraction
        return delay * (1.0 + self._rng.uniform(-spread, spread))

    def one_way(self, src: str, dst: str, size_bytes: int) -> float:
        """Jittered one-way delay for ``size_bytes`` from ``src`` to ``dst``."""
        path = self.network.path(src, dst)
        path.account(size_bytes)
        return self._jitter(path.one_way_delay(size_bytes))

    # ------------------------------------------------------------------
    # UDP
    # ------------------------------------------------------------------
    def _dropped(self) -> bool:
        return self.loss_rate > 0 and self._rng.random() < self.loss_rate

    def udp_request(self, src: str, dst_address: "IPv4Address | str",
                    port: int, payload: bytes,
                    ) -> _t.Generator[object, object, bytes]:
        """Send a datagram and return the handler's response payload.

        Under a non-zero ``loss_rate`` either direction may drop the
        datagram; the caller waits out ``udp_timeout_s`` and retries up
        to ``udp_retries`` times (at-least-once semantics: a lost
        *response* still means the handler ran).
        """
        self.udp_exchanges += 1
        destination = self.network.node_by_address(dst_address)
        source = self.network.node(src)
        # Retry-loop locals: each bound once instead of per attempt.
        sim_timeout = self.sim.timeout
        sim_process = self.sim.process
        dropped = self._dropped
        one_way = self.one_way
        timeout_s = self.udp_timeout_s
        dst_name = destination.name
        for _attempt in range(self.udp_retries + 1):
            if dropped():
                self.udp_losses += 1
                yield sim_timeout(timeout_s)
                continue
            out_delay = one_way(src, dst_name,
                                len(payload) + UDP_OVERHEAD_BYTES)
            yield sim_timeout(out_delay)
            handler = destination.handle_udp(port, payload,
                                             source.address)
            response = yield sim_process(handler)
            if response is None:
                raise TransportError(
                    f"{dst_name} dropped a datagram on "
                    f"port {port}")
            if not isinstance(response, (bytes, bytearray)):
                raise TransportError(
                    f"UDP handler on {dst_name} returned "
                    f"{type(response).__name__}, expected bytes")
            if dropped():
                self.udp_losses += 1
                yield sim_timeout(timeout_s)
                continue
            back_delay = one_way(dst_name, src,
                                 len(response) + UDP_OVERHEAD_BYTES)
            yield sim_timeout(back_delay)
            return bytes(response)
        raise TransportError(
            f"datagram to {dst_name}:{port} lost after "
            f"{self.udp_retries + 1} attempts")

    # ------------------------------------------------------------------
    # TCP
    # ------------------------------------------------------------------
    def tcp_exchange(self, src: str, dst_address: "IPv4Address | str",
                     port: int, request: object,
                     ) -> _t.Generator[object, object, object]:
        """Connect, send ``request``, and return the handler's response.

        The modeled cost is: one RTT for the SYN/SYN-ACK handshake, the
        request's one-way trip, destination-side handling (whatever the
        handler's generator consumes), and the response's one-way trip.
        """
        self.tcp_exchanges += 1
        destination = self.network.node_by_address(dst_address)
        source = self.network.node(src)
        # Handshake: SYN out, SYN-ACK back (header-sized segments).
        yield self.sim.timeout(
            self.one_way(src, destination.name, TCP_OVERHEAD_BYTES))
        yield self.sim.timeout(
            self.one_way(destination.name, src, TCP_OVERHEAD_BYTES))
        # Request.
        request_bytes = wire_size_of(request) + TCP_OVERHEAD_BYTES
        yield self.sim.timeout(
            self.one_way(src, destination.name, request_bytes))
        # Server-side handling.
        handler = destination.handle_tcp(port, request, source.address)
        response = yield self.sim.process(handler)
        if response is None:
            raise TransportError(
                f"{destination.name} returned no TCP response on port {port}")
        # Response.
        response_bytes = wire_size_of(response) + TCP_OVERHEAD_BYTES
        yield self.sim.timeout(
            self.one_way(destination.name, src, response_bytes))
        return response
