"""Simulated internetwork: addresses, nodes, links, routing, transport."""

from repro.net.address import DUMMY_IP, AddressAllocator, IPv4Address
from repro.net.link import ETHERNET, WAN, WIFI, Link, LinkKind
from repro.net.network import Network, PathInfo
from repro.net.node import TCP_HTTP_PORT, UDP_DNS_PORT, Node
from repro.net.transport import Transport, wire_size_of

__all__ = [
    "AddressAllocator",
    "DUMMY_IP",
    "ETHERNET",
    "IPv4Address",
    "Link",
    "LinkKind",
    "Network",
    "Node",
    "PathInfo",
    "TCP_HTTP_PORT",
    "Transport",
    "UDP_DNS_PORT",
    "WAN",
    "WIFI",
    "wire_size_of",
]
