"""The internetwork: topology, routing, and path delay computation.

Routing uses networkx shortest paths weighted by link latency, with results
memoised (topologies are static during an experiment).  Hop counts and path
delays are what the paper's Table I measures with ``traceroute`` and
``ping``, so both are first-class here.
"""

from __future__ import annotations

import typing as _t

import networkx as nx

from repro.errors import NetworkError, NoRouteError
from repro.net.address import AddressAllocator, IPv4Address
from repro.net.link import Link, LinkKind
from repro.engine.api import Scheduler
from repro.net.node import Node
from repro.telemetry.registry import NULL

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry import Telemetry

__all__ = ["Network", "PathInfo"]


class PathInfo:
    """A resolved route: ordered links plus its precomputed delays."""

    def __init__(self, nodes: list[str], links: list[Link]) -> None:
        self.nodes = nodes
        self.links = links
        self.propagation_s = sum(link.latency_s for link in links)
        self.bottleneck_bps = min(
            (link.bandwidth_bps for link in links), default=float("inf"))

    @property
    def hops(self) -> int:
        """Number of links traversed (the paper's traceroute hop count)."""
        return len(self.links)

    def one_way_delay(self, size_bytes: int = 0) -> float:
        """End-to-end delay for a payload of ``size_bytes``.

        Uses the cut-through model real packet-switched paths approximate
        once a flow is in motion: per-hop propagation plus a single
        serialization of the payload at the bottleneck link (packets
        pipeline across hops, so charging serialization per hop would
        grossly overstate multi-hop transfer times).
        """
        if size_bytes < 0:
            raise NetworkError(f"negative payload size {size_bytes}")
        serialization = ((size_bytes * 8.0) / self.bottleneck_bps
                         if self.links else 0.0)
        return self.propagation_s + serialization

    def account(self, size_bytes: int) -> None:
        for link in self.links:
            link.account(size_bytes)

    def __repr__(self) -> str:
        return (f"<PathInfo {self.nodes[0]}->{self.nodes[-1]} "
                f"hops={self.hops} prop={self.propagation_s * 1e3:.2f}ms>")


class Network:
    """A static topology of named nodes joined by links."""

    def __init__(self, sim: Scheduler,
                 allocator: AddressAllocator | None = None,
                 telemetry: "Telemetry | None" = None) -> None:
        self.sim = sim
        self.allocator = allocator or AddressAllocator()
        self.telemetry = telemetry if telemetry is not None else NULL
        self._graph = nx.Graph()
        self._nodes: dict[str, Node] = {}
        self._by_address: dict[IPv4Address, Node] = {}
        self._path_cache: dict[tuple[str, str], PathInfo] = {}

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    def add_node(self, name: str, address: "IPv4Address | str | None" = None,
                 cpu_capacity: int = 1) -> Node:
        """Create and register a node, auto-allocating an address if needed."""
        if name in self._nodes:
            raise NetworkError(f"duplicate node name {name!r}")
        if address is None:
            resolved = self.allocator.allocate()
        else:
            resolved = IPv4Address(address)
        if resolved in self._by_address:
            raise NetworkError(f"duplicate address {resolved}")
        node = Node(self.sim, name, resolved, cpu_capacity=cpu_capacity)
        self._nodes[name] = node
        self._by_address[resolved] = node
        self._graph.add_node(name)
        return node

    def add_link(self, a: str, b: str, kind: LinkKind,
                 latency_s: float | None = None) -> Link:
        """Join two existing nodes with a link of the given kind."""
        for endpoint in (a, b):
            if endpoint not in self._nodes:
                raise NetworkError(f"unknown node {endpoint!r}")
        if self._graph.has_edge(a, b):
            raise NetworkError(f"duplicate link {a!r}<->{b!r}")
        link = Link.of_kind(a, b, kind, latency_s=latency_s,
                            telemetry=self.telemetry)
        self._graph.add_edge(a, b, link=link, weight=link.latency_s)
        self._path_cache.clear()
        return link

    def add_chain(self, a: str, b: str, kind: LinkKind, hops: int,
                  prefix: str | None = None) -> list[Link]:
        """Join ``a`` and ``b`` through ``hops`` links via synthetic routers.

        This is how the testbed expresses "the edge server is 7 hops away":
        6 intermediate router nodes and 7 links of the given kind.
        """
        if hops < 1:
            raise NetworkError(f"a chain needs at least 1 hop, got {hops}")
        prefix = prefix or f"{a}--{b}"
        previous = a
        links = []
        for index in range(hops - 1):
            router = f"{prefix}.r{index}"
            self.add_node(router, cpu_capacity=4)
            links.append(self.add_link(previous, router, kind))
            previous = router
        links.append(self.add_link(previous, b, kind))
        return links

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def node(self, name: str) -> Node:
        """The node registered under `name`; raises NetworkError if absent."""
        try:
            return self._nodes[name]
        except KeyError:
            raise NetworkError(f"unknown node {name!r}") from None

    def node_by_address(self, address: "IPv4Address | str") -> Node:
        """The node holding `address`; raises NetworkError if none does."""
        resolved = IPv4Address(address)
        try:
            return self._by_address[resolved]
        except KeyError:
            raise NetworkError(f"no node holds address {resolved}") from None

    def has_address(self, address: "IPv4Address | str") -> bool:
        """Whether any node holds `address` (malformed input -> False)."""
        try:
            return IPv4Address(address) in self._by_address
        except Exception:
            return False

    def nodes(self) -> list[Node]:
        return list(self._nodes.values())

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def path(self, a: str, b: str) -> PathInfo:
        """Latency-shortest path between two nodes, memoised."""
        key = (a, b)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        for endpoint in (a, b):
            if endpoint not in self._nodes:
                raise NetworkError(f"unknown node {endpoint!r}")
        try:
            node_names = nx.shortest_path(self._graph, a, b, weight="weight")
        except nx.NetworkXNoPath:
            raise NoRouteError(f"no route from {a!r} to {b!r}") from None
        links = [self._graph.edges[u, v]["link"]
                 for u, v in zip(node_names, node_names[1:])]
        info = PathInfo(node_names, links)
        self._path_cache[key] = info
        self._path_cache[(b, a)] = PathInfo(
            list(reversed(node_names)), list(reversed(links)))
        return info

    def hops(self, a: str, b: str) -> int:
        """Link count on the routed path between two nodes."""
        return self.path(a, b).hops

    def rtt(self, a: str, b: str, size_bytes: int = 0) -> float:
        """Round-trip propagation (+ serialization) between two nodes."""
        forward = self.path(a, b)
        return forward.one_way_delay(size_bytes) + forward.one_way_delay(0)

    def __repr__(self) -> str:
        return (f"<Network nodes={self._graph.number_of_nodes()} "
                f"links={self._graph.number_of_edges()}>")
