"""Network nodes: addressable endpoints that can host protocol handlers.

A node binds handlers to (protocol, port) pairs.  Handlers are *generator
functions* so they can consume simulated time (CPU service, upstream
requests) before producing their response — exactly how the AP runtime
models dnsmasq handling a DNS-Cache query.
"""

from __future__ import annotations

import typing as _t

from repro.errors import NetworkError, TransportError
from repro.engine.api import Scheduler
from repro.engine.resources import ServiceQueue
from repro.net.address import IPv4Address

__all__ = ["Node", "UDP_DNS_PORT", "TCP_HTTP_PORT"]

UDP_DNS_PORT = 53
TCP_HTTP_PORT = 80

#: A UDP handler receives (payload, source address) and is a generator that
#: returns the response payload (bytes) or None for "no reply".
UdpHandler = _t.Callable[[bytes, IPv4Address],
                         _t.Generator[object, object, bytes | None]]
#: A TCP handler receives an application-level request object and returns
#: an application-level response object.
TcpHandler = _t.Callable[[object, IPv4Address],
                         _t.Generator[object, object, object]]


class Node:
    """An endpoint in the simulated internetwork.

    Parameters
    ----------
    sim:
        The owning engine (virtual-time simulator or wall clock).
    name:
        Unique topology name (also the routing key).
    address:
        The node's IPv4 address.
    cpu_capacity:
        Number of requests the node can service concurrently; models the
        difference between an 880 MHz router (1) and a desktop (several).
    """

    def __init__(self, sim: Scheduler, name: str, address: IPv4Address,
                 cpu_capacity: int = 1) -> None:
        self.sim = sim
        self.name = name
        self.address = address
        self.cpu = ServiceQueue(sim, capacity=cpu_capacity)
        self._udp_handlers: dict[int, UdpHandler] = {}
        self._tcp_handlers: dict[int, TcpHandler] = {}
        self.udp_datagrams_handled = 0
        self.tcp_requests_handled = 0

    # ------------------------------------------------------------------
    # Handler registration
    # ------------------------------------------------------------------
    def bind_udp(self, port: int, handler: UdpHandler) -> None:
        """Install ``handler`` for UDP datagrams arriving on ``port``."""
        if port in self._udp_handlers:
            raise NetworkError(f"{self.name}: UDP port {port} already bound")
        self._udp_handlers[port] = handler

    def bind_tcp(self, port: int, handler: TcpHandler) -> None:
        """Install ``handler`` for TCP requests arriving on ``port``."""
        if port in self._tcp_handlers:
            raise NetworkError(f"{self.name}: TCP port {port} already bound")
        self._tcp_handlers[port] = handler

    def unbind_udp(self, port: int) -> None:
        """Remove the UDP handler on `port`, if any."""
        self._udp_handlers.pop(port, None)

    def unbind_tcp(self, port: int) -> None:
        """Remove the TCP handler on `port`, if any."""
        self._tcp_handlers.pop(port, None)

    # ------------------------------------------------------------------
    # Dispatch (called by the transport layer)
    # ------------------------------------------------------------------
    def handle_udp(self, port: int, payload: bytes, source: IPv4Address):
        """Dispatch an inbound datagram; generator returning the reply."""
        handler = self._udp_handlers.get(port)
        if handler is None:
            raise TransportError(
                f"{self.name}: nothing listening on UDP port {port}")
        self.udp_datagrams_handled += 1
        return handler(payload, source)

    def handle_tcp(self, port: int, request: object, source: IPv4Address):
        """Dispatch an inbound TCP request; generator returning the reply."""
        handler = self._tcp_handlers.get(port)
        if handler is None:
            raise TransportError(
                f"{self.name}: nothing listening on TCP port {port}")
        self.tcp_requests_handled += 1
        return handler(request, source)

    def occupy_cpu(self, duration: float):
        """Consume ``duration`` seconds of this node's CPU (a process)."""
        return self.cpu.use(duration)

    def __repr__(self) -> str:
        return f"<Node {self.name} {self.address}>"
