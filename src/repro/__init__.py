"""APE-CACHE: millisecond-level edge caching on WiFi access points.

A complete, simulation-based reproduction of "Edge Cache on WiFi Access
Points: Millisecond-Level App Latency Almost for Free" (ICDCS 2024).

Subpackages
-----------
``repro.sim``
    Discrete-event kernel: clock, processes, resources, randomness.
``repro.net``
    Simulated internetwork: addresses, links, routing, UDP/TCP.
``repro.dnslib``
    DNS wire codec (incl. the custom DNS-Cache RR), zones, servers.
``repro.httplib``
    URLs, HTTP messages, origin/edge servers, interceptor client.
``repro.cache``
    Cache store, eviction policies, fairness, knapsack, **PACM**.
``repro.core``
    The paper's contribution: programming model, AP + client runtimes.
``repro.baselines``
    Edge Cache, Wi-Cache, APE-CACHE-LRU behind one interface.
``repro.apps``
    App DAG model, MovieTrailer, VirtualHome, generator, workload.
``repro.measurement``
    Akamai study (Table I), traffic replay (Fig. 2), overhead (Fig. 14).
``repro.experiments``
    One runnable module per paper table/figure, plus ablations.

Quickstart
----------
>>> from repro.core import ApRuntime, ClientRuntime, CacheableSpec
>>> from repro.testbed import Testbed
>>> bed = Testbed()
>>> ApRuntime(bed.ap, bed.transport, bed.ldns.address).install()
>>> phone = bed.add_client()
>>> client = ClientRuntime(phone, bed.transport, bed.ap.address)
>>> client.register_spec(CacheableSpec("http://a.example/obj", 2, 600.0))
>>> _ = bed.host_object("http://a.example/obj", 4096)
>>> result = bed.sim.run(
...     until=bed.sim.process(client.fetch("http://a.example/obj")))
>>> result.source
'ap-delegated'
"""

from repro._version import __version__
from repro.core import (
    HIGH_PRIORITY,
    LOW_PRIORITY,
    ApeCacheConfig,
    ApRuntime,
    CacheableSpec,
    CacheFlag,
    ClientRuntime,
    FetchResult,
    cacheable,
    scan_cacheables,
)
from repro.testbed import Testbed, TestbedConfig

__all__ = [
    "ApRuntime",
    "ApeCacheConfig",
    "CacheFlag",
    "CacheableSpec",
    "ClientRuntime",
    "FetchResult",
    "HIGH_PRIORITY",
    "LOW_PRIORITY",
    "Testbed",
    "TestbedConfig",
    "__version__",
    "cacheable",
    "scan_cacheables",
]
