"""Back-compat shim: the event primitives live in :mod:`repro.engine.events`.

They moved when the engine seam was extracted (docs/architecture.md):
the same :class:`Event`/:class:`Process` machinery now drives both the
virtual-time :class:`~repro.sim.kernel.Simulator` and the real-time
:class:`~repro.engine.wallclock.WallClock`.  This module re-exports the
very same class objects, so ``isinstance`` checks and the engines'
``event.sim is self`` identity tests keep working regardless of which
import path a caller used.
"""

from repro.engine.events import (
    AllOf,
    AnyOf,
    Condition,
    Event,
    Process,
    Timeout,
)

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
]
