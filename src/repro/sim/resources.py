"""Back-compat shim: resources live in :mod:`repro.engine.resources`.

:class:`Resource`, :class:`ServiceQueue`, and :class:`Store` are
engine-agnostic and moved behind the engine seam (docs/architecture.md)
so the live stack can reuse them on the wall-clock engine.  The class
objects re-exported here are identical to the originals.
"""

from repro.engine.resources import Resource, ServiceQueue, Store

__all__ = ["Resource", "ServiceQueue", "Store"]
