"""Discrete-event simulation kernel.

The kernel is deliberately small and dependency-free: a clock, an event
heap, generator-based processes, counted resources, seeded randomness, and
metric collection.  Every other subsystem in the reproduction (network,
DNS, HTTP, the APE-CACHE runtimes) is built on these primitives.
"""

from repro.sim.events import AllOf, AnyOf, Condition, Event, Process, Timeout
from repro.sim.kernel import HOUR, MINUTE, MS, SECOND, Simulator
from repro.sim.monitor import MetricSet, Series, percentile
from repro.sim.randomness import (
    ExponentialSampler,
    RandomStreams,
    ZipfSampler,
)
from repro.sim.resources import Resource, ServiceQueue, Store
from repro.sim.tracing import EventTrace, TraceEvent

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Event",
    "EventTrace",
    "ExponentialSampler",
    "HOUR",
    "MINUTE",
    "MS",
    "MetricSet",
    "Process",
    "RandomStreams",
    "Resource",
    "SECOND",
    "Series",
    "ServiceQueue",
    "Simulator",
    "Store",
    "Timeout",
    "TraceEvent",
    "ZipfSampler",
    "percentile",
]
