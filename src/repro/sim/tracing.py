"""Structured event tracing for simulated components.

A lightweight, bounded, in-memory event log: components call
``trace.log("delegation", "fetched from edge", url=..., ms=...)`` and
tests/operators inspect or render the sequence.  Tracing is opt-in —
components accept an optional tracer and emit nothing when it is absent,
so hot paths stay allocation-free by default.

An :class:`EventTrace` can additionally mirror per-category counts into a
:class:`~repro.telemetry.registry.Telemetry` registry (see
:meth:`EventTrace.bind_telemetry`), so legacy tracer call sites show up
in the unified metric exports without being rewritten.
"""

from __future__ import annotations

import collections
import dataclasses
import typing as _t

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.telemetry.registry import NULL

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry import Telemetry

__all__ = ["TraceEvent", "EventTrace"]


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One logged happening."""

    time_s: float
    category: str
    message: str
    fields: tuple[tuple[str, object], ...] = ()

    def field(self, name: str, default: object = None) -> object:
        for key, value in self.fields:
            if key == name:
                return value
        return default

    def render(self) -> str:
        extras = " ".join(f"{key}={value}" for key, value in self.fields)
        body = f"{self.message} {extras}".rstrip()
        return f"[{self.time_s * 1e3:10.3f}ms] {self.category}: {body}"


class EventTrace:
    """A bounded ring of :class:`TraceEvent` records."""

    def __init__(self, sim: Simulator, capacity: int = 10_000,
                 telemetry: "Telemetry | None" = None) -> None:
        if capacity < 1:
            raise SimulationError(
                f"trace capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        # A deque ring: evicting the oldest event is O(1), where a list's
        # pop(0) made every overflowing log() O(capacity).
        self._events: collections.deque[TraceEvent] = collections.deque(
            maxlen=capacity)
        self.dropped = 0
        self._t_events = NULL.counter("trace.events")
        if telemetry is not None:
            self.bind_telemetry(telemetry)

    def bind_telemetry(self, telemetry: "Telemetry") -> "EventTrace":
        """Mirror per-category event counts into ``telemetry``."""
        self._t_events = telemetry.counter(
            "trace.events", help="EventTrace records, by category")
        return self

    def log(self, category: str, message: str, **fields: object) -> None:
        """Record an event at the current simulated time."""
        if len(self._events) == self.capacity:
            # Ring behaviour: the deque drops the oldest on append.
            self.dropped += 1
        self._events.append(TraceEvent(
            self.sim.now, category, message,
            tuple(sorted(fields.items()))))
        self._t_events.inc(category=category)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> _t.Iterator[TraceEvent]:
        return iter(self._events)

    def events(self, category: str | None = None) -> list[TraceEvent]:
        """All events, optionally filtered by category."""
        if category is None:
            return list(self._events)
        return [event for event in self._events
                if event.category == category]

    def tail(self, count: int = 20) -> list[TraceEvent]:
        if count <= 0:
            return []
        return list(self._events)[-count:]

    def categories(self) -> dict[str, int]:
        """Event counts per category."""
        counts: dict[str, int] = {}
        for event in self._events:
            counts[event.category] = counts.get(event.category, 0) + 1
        return counts

    def render(self, category: str | None = None) -> str:
        return "\n".join(event.render()
                         for event in self.events(category))

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0
