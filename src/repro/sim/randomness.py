"""Reproducible randomness for experiments.

Every experiment draws from named substreams of a single master seed so
that (a) runs are exactly reproducible and (b) changing how one component
consumes randomness does not perturb another component's draws.

The Zipf sampler implements the bounded (finite-support) Zipf distribution
used by the paper's workload model ("We adopted the Zipf distribution to
calculate the time interval between executing an app").
"""

from __future__ import annotations

import hashlib
import math
import random as _random
import typing as _t

__all__ = ["RandomStreams", "ZipfSampler", "ExponentialSampler"]


class RandomStreams:
    """A factory of independent, named ``random.Random`` substreams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: dict[str, _random.Random] = {}

    def stream(self, name: str) -> _random.Random:
        """Return (creating on first use) the substream called ``name``."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode()).digest()
            self._streams[name] = _random.Random(
                int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child factory whose streams are independent of ours."""
        digest = hashlib.sha256(
            f"{self.master_seed}/spawn:{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))


class ZipfSampler:
    """Samples ranks 1..n with probability proportional to ``1 / rank**s``.

    Uses inverse-CDF sampling over the precomputed (finite) distribution,
    which is exact and O(log n) per draw.
    """

    def __init__(self, n: int, exponent: float = 1.0,
                 rng: _random.Random | None = None) -> None:
        if n < 1:
            raise ValueError(f"support size must be >= 1, got {n}")
        if exponent < 0:
            raise ValueError(f"exponent must be >= 0, got {exponent}")
        self.n = n
        self.exponent = exponent
        # Default to a *fixed* seed, never the OS: an implicit
        # ``Random()`` here would make every default-constructed
        # workload unreproducible (see DET001 in docs/linting.md).
        self._rng = rng if rng is not None else _random.Random(0)
        weights = [1.0 / (rank ** exponent) for rank in range(1, n + 1)]
        total = math.fsum(weights)
        self._cdf: list[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # defend against float round-off

    def probability(self, rank: int) -> float:
        """Exact probability mass of ``rank`` (1-based)."""
        if not 1 <= rank <= self.n:
            raise ValueError(f"rank {rank} outside 1..{self.n}")
        low = self._cdf[rank - 2] if rank >= 2 else 0.0
        return self._cdf[rank - 1] - low

    def sample(self) -> int:
        """Draw one rank in ``1..n``."""
        u = self._rng.random()
        lo, hi = 0, self.n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo + 1

    def sample_many(self, count: int) -> list[int]:
        """Draw ``count`` independent ranks."""
        return [self.sample() for _ in range(count)]


class ExponentialSampler:
    """Exponential inter-arrival times with a given mean (Poisson process)."""

    def __init__(self, mean: float, rng: _random.Random | None = None) -> None:
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        self.mean = mean
        # Fixed-seed default for reproducibility, as in ZipfSampler.
        self._rng = rng if rng is not None else _random.Random(0)

    def sample(self) -> float:
        """Draw one inter-arrival time (strictly positive)."""
        return self._rng.expovariate(1.0 / self.mean)

    def sample_many(self, count: int) -> list[float]:
        return [self.sample() for _ in range(count)]


def weighted_choice(rng: _random.Random, items: _t.Sequence[object],
                    weights: _t.Sequence[float]) -> object:
    """Pick one of ``items`` with probability proportional to ``weights``."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    total = math.fsum(weights)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    u = rng.random() * total
    acc = 0.0
    for item, weight in zip(items, weights):
        acc += weight
        if u <= acc:
            return item
    return items[-1]
