"""The discrete-event scheduler.

:class:`Simulator` owns the virtual clock and the event heap.  It is the
virtual-time implementation of the :class:`repro.engine.api.Scheduler`
protocol (the real-time one is
:class:`repro.engine.wallclock.WallClock`).  All simulated time in this
library is expressed in **seconds** as floats; helper constants
:data:`MS` and :data:`MINUTE` keep call sites readable::

    sim = Simulator()
    sim.process(my_activity(sim))
    sim.run(until=5 * MINUTE)
"""

from __future__ import annotations

import heapq
import itertools
import typing as _t

from repro.errors import SimulationError
from repro.engine.api import HOUR, MINUTE, MS, NORMAL, SECOND, URGENT
from repro.engine.events import AllOf, AnyOf, Event, Process, Timeout

__all__ = ["Simulator", "MS", "SECOND", "MINUTE", "HOUR"]

#: Scheduling priorities: urgent events (interrupts) preempt normal ones
#: that fire at the same instant.  Canonical values live on the engine
#: seam (repro.engine.api) so both engines agree.
_URGENT = URGENT
_NORMAL = NORMAL

#: Bound once at import: the scheduler touches these per event, and the
#: module-attribute lookup is measurable at BENCH_kernel scale.
_heappush = heapq.heappush
_heappop = heapq.heappop


class Simulator:
    """Drives a single simulation: clock, event heap, process bookkeeping."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()
        self._active_process: Process | None = None
        #: Events executed so far — the denominator for the telemetry
        #: layer's host-profiling hook (events/sec, wall-ms per sim-s).
        self.events_processed = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed, if any."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the heap is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a plain, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: _t.Generator[Event, object, object],
                ) -> Process:
        """Register a generator as a simulated process and start it."""
        return Process(self, generator)

    def all_of(self, events: _t.Sequence[Event]) -> AllOf:
        """An event triggering once all ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: _t.Sequence[Event]) -> AnyOf:
        """An event triggering once any one of ``events`` has succeeded."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = _NORMAL) -> None:
        _heappush(
            self._heap,
            (self._now + delay, priority, next(self._counter), event))

    def step(self) -> None:
        """Process the single next event; raises if the heap is empty."""
        if not self._heap:
            raise SimulationError("nothing scheduled; simulation has ended")
        when, _priority, _tie, event = _heappop(self._heap)
        if when < self._now:  # pragma: no cover - guarded by heap ordering
            raise SimulationError("event heap produced a time in the past")
        self._now = when
        self.events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for callback in callbacks:
                callback(event)
        elif not event._ok:
            # A failed event nobody waited for must not pass silently.
            raise _t.cast(BaseException, event._value)

    def run(self, until: float | Event | None = None) -> object:
        """Run the simulation.

        ``until`` may be ``None`` (run until the heap drains), a time in
        seconds, or an :class:`Event` (run until it triggers, returning its
        value).
        """
        stop_event: Event | None = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(
                    f"until={horizon!r} lies in the past (now={self._now!r})")
            stop_event = Event(self)
            self._schedule(stop_event, delay=horizon - self._now,
                           priority=_URGENT)
            stop_event._value = None

        # Drain-loop locals: ``_heap`` is created once in __init__ and
        # never rebound, so the list object can be captured here; the
        # bound ``step`` saves an attribute lookup per event.
        heap = self._heap
        step = self.step

        if stop_event is None:
            while heap:
                step()
            return None

        stop_event.callbacks.append(lambda _ev: None)
        while not stop_event.processed:
            if not heap:
                raise SimulationError(
                    "simulation ran out of events before `until` triggered")
            step()
        if not stop_event._ok:
            raise _t.cast(BaseException, stop_event._value)
        return stop_event._value

    def run_process(self, generator: _t.Generator[Event, object, object],
                    ) -> object:
        """Convenience: start ``generator`` and run until it finishes."""
        return self.run(until=self.process(generator))

    def __repr__(self) -> str:
        return f"<Simulator t={self._now:.6f}s pending={len(self._heap)}>"
