"""Measurement collection for experiments.

:class:`Series` is a list of (time, value) samples with the summary
statistics the paper reports (mean, percentiles, tail latency), and
:class:`MetricSet` is a named bag of series so experiment code can write
``metrics.record("lookup_ms", latency)`` without threading lists around.
"""

from __future__ import annotations

import math
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover
    # Imported lazily: repro.telemetry reuses percentile() from this
    # module, so a runtime import here would be circular.
    from repro.telemetry import Telemetry

__all__ = ["Series", "MetricSet", "percentile"]


def percentile(values: _t.Sequence[float], q: float,
               weights: _t.Sequence[float] | None = None) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100].

    Matches ``numpy.percentile``'s default behaviour but avoids pulling
    numpy into hot simulation paths.

    With ``weights`` (positive, one per value — how many requests each
    sample stands in for under tail-based trace sampling), samples are
    placed at positions ``t_i = (c_i - w_i) / (W - w_n)`` over their
    sorted order (``c_i`` = cumulative weight through sample i, ``W``
    total weight, ``w_n`` the last sorted sample's weight) and linearly
    interpolated between.  Unit weights reduce to exactly
    ``t_i = (i-1)/(n-1)`` — the unweighted formula — and that case is
    dispatched to the unweighted code path so results are
    bit-identical.
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be within [0, 100], got {q}")
    if weights is not None:
        if len(weights) != len(values):
            raise ValueError(
                f"got {len(weights)} weights for {len(values)} values")
        if any(weight <= 0 for weight in weights):
            raise ValueError("weights must be positive")
        if all(weight == 1.0 for weight in weights):
            weights = None  # bit-identical to the unweighted path
    if weights is not None:
        return _weighted_percentile(values, q, weights)
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def _weighted_percentile(values: _t.Sequence[float], q: float,
                         weights: _t.Sequence[float]) -> float:
    pairs = sorted(zip(values, weights))
    if len(pairs) == 1:
        return pairs[0][0]
    total = math.fsum(weight for _value, weight in pairs)
    span = total - pairs[-1][1]
    if span <= 0.0:  # pragma: no cover - positive weights, n >= 2
        return pairs[-1][0]
    target = q / 100.0
    cumulative = 0.0
    previous_value, previous_t = pairs[0][0], 0.0
    for value, weight in pairs:
        cumulative += weight
        t = min((cumulative - weight) / span, 1.0)
        if t >= target:
            if t <= previous_t:
                return value
            fraction = (target - previous_t) / (t - previous_t)
            return previous_value * (1.0 - fraction) + value * fraction
        previous_value, previous_t = value, t
    return pairs[-1][0]


class Series:
    """An append-only time series of float samples."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> _t.Iterator[tuple[float, float]]:
        return iter(zip(self.times, self.values))

    @property
    def count(self) -> int:
        return len(self.values)

    def mean(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return math.fsum(self.values) / len(self.values)

    def total(self) -> float:
        return math.fsum(self.values)

    def minimum(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return min(self.values)

    def maximum(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return max(self.values)

    def percentile(self, q: float) -> float:
        return percentile(self.values, q)

    def p95(self) -> float:
        """The paper's tail-latency metric (95th percentile)."""
        return self.percentile(95.0)

    def stddev(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mu = self.mean()
        variance = math.fsum((v - mu) ** 2 for v in self.values)
        return math.sqrt(variance / (len(self.values) - 1))

    def summary(self) -> dict[str, float]:
        """Mean/min/max/p50/p95 in one dict, for table rendering."""
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "min": self.minimum(),
            "max": self.maximum(),
            "p50": self.percentile(50.0),
            "p95": self.p95(),
        }

    def merge(self, other: "Series") -> "Series":
        """Fold another series' samples into this one; returns self.

        The combined samples are re-sorted by (time, value) — a
        canonical multiset order — so merged summaries are identical
        regardless of the order shards are folded in.
        """
        combined = sorted(zip(self.times + other.times,
                              self.values + other.values))
        self.times = [time for time, _value in combined]
        self.values = [value for _time, value in combined]
        return self


class MetricSet:
    """A named collection of :class:`Series`, created lazily on record.

    Optionally mirrors every recorded sample into a
    :class:`~repro.telemetry.Telemetry` registry (:meth:`mirror_to`), so
    legacy MetricSet call sites surface in the unified exports without a
    rewrite.
    """

    def __init__(self) -> None:
        self._series: dict[str, Series] = {}
        self._mirror: "tuple[Telemetry, str] | None" = None

    def mirror_to(self, telemetry: "Telemetry",
                  prefix: str = "metricset") -> "MetricSet":
        """Also observe future samples into ``telemetry`` histograms
        named ``{prefix}.{series}``; returns self for chaining."""
        self._mirror = (telemetry, prefix)
        return self

    def record(self, name: str, time: float, value: float) -> None:
        self.series(name).record(time, value)
        if self._mirror is not None:
            telemetry, prefix = self._mirror
            telemetry.histogram(f"{prefix}.{name}").observe(value)

    def series(self, name: str) -> Series:
        if name not in self._series:
            self._series[name] = Series(name)
        return self._series[name]

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def names(self) -> list[str]:
        return sorted(self._series)

    def mean(self, name: str) -> float:
        return self.series(name).mean()

    def summary(self) -> dict[str, dict[str, float]]:
        return {name: series.summary()
                for name, series in sorted(self._series.items())
                if series.count}

    def merge(self, other: "MetricSet") -> "MetricSet":
        """Fold another metric set into this one, series by series.

        Associative and commutative (delegates to :meth:`Series.merge`,
        which canonicalizes sample order), so per-shard metric sets
        roll up into one fleet view in any order.  Mirroring targets
        are not merged — only the samples travel.
        """
        for name in sorted(other._series):
            incoming = other._series[name]
            if incoming.count:
                self.series(name).merge(incoming)
        return self
