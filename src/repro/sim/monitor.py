"""Measurement collection for experiments.

:class:`Series` is a list of (time, value) samples with the summary
statistics the paper reports (mean, percentiles, tail latency), and
:class:`MetricSet` is a named bag of series so experiment code can write
``metrics.record("lookup_ms", latency)`` without threading lists around.
"""

from __future__ import annotations

import math
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover
    # Imported lazily: repro.telemetry reuses percentile() from this
    # module, so a runtime import here would be circular.
    from repro.telemetry import Telemetry

__all__ = ["Series", "MetricSet", "percentile"]


def percentile(values: _t.Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100].

    Matches ``numpy.percentile``'s default behaviour but avoids pulling
    numpy into hot simulation paths.
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be within [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


class Series:
    """An append-only time series of float samples."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> _t.Iterator[tuple[float, float]]:
        return iter(zip(self.times, self.values))

    @property
    def count(self) -> int:
        return len(self.values)

    def mean(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return math.fsum(self.values) / len(self.values)

    def total(self) -> float:
        return math.fsum(self.values)

    def minimum(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return min(self.values)

    def maximum(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return max(self.values)

    def percentile(self, q: float) -> float:
        return percentile(self.values, q)

    def p95(self) -> float:
        """The paper's tail-latency metric (95th percentile)."""
        return self.percentile(95.0)

    def stddev(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mu = self.mean()
        variance = math.fsum((v - mu) ** 2 for v in self.values)
        return math.sqrt(variance / (len(self.values) - 1))

    def summary(self) -> dict[str, float]:
        """Mean/min/max/p50/p95 in one dict, for table rendering."""
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "min": self.minimum(),
            "max": self.maximum(),
            "p50": self.percentile(50.0),
            "p95": self.p95(),
        }


class MetricSet:
    """A named collection of :class:`Series`, created lazily on record.

    Optionally mirrors every recorded sample into a
    :class:`~repro.telemetry.Telemetry` registry (:meth:`mirror_to`), so
    legacy MetricSet call sites surface in the unified exports without a
    rewrite.
    """

    def __init__(self) -> None:
        self._series: dict[str, Series] = {}
        self._mirror: "tuple[Telemetry, str] | None" = None

    def mirror_to(self, telemetry: "Telemetry",
                  prefix: str = "metricset") -> "MetricSet":
        """Also observe future samples into ``telemetry`` histograms
        named ``{prefix}.{series}``; returns self for chaining."""
        self._mirror = (telemetry, prefix)
        return self

    def record(self, name: str, time: float, value: float) -> None:
        self.series(name).record(time, value)
        if self._mirror is not None:
            telemetry, prefix = self._mirror
            telemetry.histogram(f"{prefix}.{name}").observe(value)

    def series(self, name: str) -> Series:
        if name not in self._series:
            self._series[name] = Series(name)
        return self._series[name]

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def names(self) -> list[str]:
        return sorted(self._series)

    def mean(self, name: str) -> float:
        return self.series(name).mean()

    def summary(self) -> dict[str, dict[str, float]]:
        return {name: series.summary()
                for name, series in sorted(self._series.items())
                if series.count}
