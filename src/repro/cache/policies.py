"""Eviction policies: the pluggable victim-selection strategies.

LRU is the baseline used by Wi-Cache and APE-CACHE-LRU in the paper's
evaluation; LFU and FIFO are included for ablations.  PACM lives in its
own module (:mod:`repro.cache.pacm`) because it carries more machinery.
"""

from __future__ import annotations

from repro.cache.entry import CacheEntry
from repro.cache.store import CacheStore

__all__ = ["EvictionPolicy", "LruPolicy", "LfuPolicy", "FifoPolicy"]


class EvictionPolicy:
    """Strategy interface for making room in a full cache."""

    def select_victims(self, store: CacheStore, incoming: CacheEntry,
                       now: float) -> list[CacheEntry] | None:
        """Entries to evict so ``incoming`` fits, or None to refuse it.

        Implementations must free at least ``incoming.size_bytes -
        store.free_bytes`` bytes when they return a list.
        """
        raise NotImplementedError


class _RankedPolicy(EvictionPolicy):
    """Evicts in ascending order of a subclass-defined retention score."""

    def score(self, entry: CacheEntry, now: float) -> float:
        """Higher scores are retained longer."""
        raise NotImplementedError

    def select_victims(self, store: CacheStore, incoming: CacheEntry,
                       now: float) -> list[CacheEntry] | None:
        needed = incoming.size_bytes - store.free_bytes
        if needed <= 0:
            return []
        ranked = sorted(store.entries(),
                        key=lambda entry: self.score(entry, now))
        victims: list[CacheEntry] = []
        freed = 0
        for entry in ranked:
            victims.append(entry)
            freed += entry.size_bytes
            if freed >= needed:
                return victims
        return None  # cannot free enough even by emptying the cache


class LruPolicy(_RankedPolicy):
    """Least-recently-used (the paper's baseline cache management)."""

    def score(self, entry: CacheEntry, now: float) -> float:
        return entry.last_access


class LfuPolicy(_RankedPolicy):
    """Least-frequently-used, tie-broken by recency."""

    def score(self, entry: CacheEntry, now: float) -> float:
        # Scale counts so recency only breaks ties between equal counts.
        return entry.access_count + min(0.5, 1e-9 * entry.last_access)


class FifoPolicy(_RankedPolicy):
    """First-in-first-out by storage time."""

    def score(self, entry: CacheEntry, now: float) -> float:
        return entry.stored_at
