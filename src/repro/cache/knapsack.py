"""0/1 knapsack solvers used by PACM's object-selection step.

The production solver quantizes sizes and runs a vectorized DP (numpy),
which keeps per-admission cost low enough to run on every cache-full
insertion during hour-long workloads.  An exact exponential solver is
provided for cross-validation in tests.

Quantization rounds item sizes *up* to the granularity, so any DP-feasible
selection is also feasible in real bytes.
"""

from __future__ import annotations

import itertools
import math
import typing as _t

import numpy as np

from repro.errors import CacheError

__all__ = ["solve_knapsack", "solve_knapsack_exact", "DEFAULT_GRANULARITY"]

#: Default quantization of object sizes (bytes per DP unit).
DEFAULT_GRANULARITY = 4096


def solve_knapsack(utilities: _t.Sequence[float],
                   sizes: _t.Sequence[int],
                   capacity: int,
                   granularity: int = DEFAULT_GRANULARITY) -> list[int]:
    """Indices of the max-utility subset with total size <= capacity.

    Zero-sized items are always kept.  Items with non-positive utility
    are still eligible (keeping them never hurts if space permits is NOT
    assumed — the DP simply never selects utility < 0 unless forced,
    which it never is in 0/1 knapsack).
    """
    if len(utilities) != len(sizes):
        raise CacheError("utilities and sizes must have equal length")
    if capacity < 0:
        raise CacheError(f"negative capacity {capacity}")
    if granularity <= 0:
        raise CacheError(f"granularity must be positive, got {granularity}")
    if any(size < 0 for size in sizes):
        raise CacheError("negative item size")

    free_items = [index for index, size in enumerate(sizes) if size == 0]
    candidates = [(index, utilities[index],
                   math.ceil(sizes[index] / granularity))
                  for index, size in enumerate(sizes) if size > 0]
    units = capacity // granularity
    if units == 0 or not candidates:
        return sorted(free_items)

    feasible = [(index, value, weight) for index, value, weight in candidates
                if weight <= units and value > 0]
    if not feasible:
        return sorted(free_items)

    # dp[c] = best utility achievable with exactly <= c units.
    dp = np.zeros(units + 1, dtype=np.float64)
    keep = np.zeros((len(feasible), units + 1), dtype=np.bool_)
    for row, (_index, value, weight) in enumerate(feasible):
        shifted = np.empty_like(dp)
        shifted[:weight] = -np.inf
        shifted[weight:] = dp[:units + 1 - weight] + value
        take = shifted > dp
        keep[row] = take
        dp = np.where(take, shifted, dp)

    chosen: list[int] = []
    remaining = units
    for row in range(len(feasible) - 1, -1, -1):
        if keep[row, remaining]:
            index, _value, weight = feasible[row]
            chosen.append(index)
            remaining -= weight
    return sorted(free_items + chosen)


def solve_knapsack_exact(utilities: _t.Sequence[float],
                         sizes: _t.Sequence[int],
                         capacity: int) -> list[int]:
    """Brute-force exact solution (for tests; O(2^n), n <= 20)."""
    if len(utilities) != len(sizes):
        raise CacheError("utilities and sizes must have equal length")
    if len(utilities) > 20:
        raise CacheError("exact solver limited to 20 items")
    best_value = -1.0
    best_subset: tuple[int, ...] = ()
    indices = range(len(utilities))
    for r in range(len(utilities) + 1):
        for subset in itertools.combinations(indices, r):
            size = sum(sizes[i] for i in subset)
            if size > capacity:
                continue
            value = sum(utilities[i] for i in subset)
            if value > best_value:
                best_value = value
                best_subset = subset
    return sorted(best_subset)


def total_value(utilities: _t.Sequence[float],
                selection: _t.Iterable[int]) -> float:
    """Sum of utilities over ``selection`` (test helper)."""
    return math.fsum(utilities[index] for index in selection)


def total_size(sizes: _t.Sequence[int],
               selection: _t.Iterable[int]) -> int:
    """Sum of sizes over ``selection`` (test helper)."""
    return sum(sizes[index] for index in selection)
