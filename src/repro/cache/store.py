"""The bounded cache store running on the AP.

The store tracks byte occupancy and delegates victim selection to a
pluggable :class:`~repro.cache.policies.EvictionPolicy` (LRU for the
baselines, PACM for APE-CACHE).  TTL expiry is enforced lazily on access
and eagerly before every admission decision, mirroring how dnsmasq-style
daemons sweep their tables.
"""

from __future__ import annotations

import typing as _t

from repro.errors import CacheError, CapacityError
from repro.cache.entry import CacheEntry
from repro.httplib.url import Url
from repro.telemetry.registry import NULL

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.cache.policies import EvictionPolicy
    from repro.telemetry import Telemetry

__all__ = ["CacheStore", "AdmissionResult"]


class AdmissionResult:
    """Outcome of one admission: whether stored, and who was evicted."""

    def __init__(self, admitted: bool,
                 evicted: list[CacheEntry] | None = None) -> None:
        self.admitted = admitted
        self.evicted = evicted or []

    def __repr__(self) -> str:
        return (f"<AdmissionResult admitted={self.admitted} "
                f"evicted={len(self.evicted)}>")


class CacheStore:
    """A capacity-bounded map from base URL to :class:`CacheEntry`."""

    def __init__(self, capacity_bytes: int,
                 telemetry: "Telemetry | None" = None,
                 tier: str = "ap") -> None:
        if capacity_bytes <= 0:
            raise CacheError(
                f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.tier = tier
        self._entries: dict[str, CacheEntry] = {}
        self.used_bytes = 0
        self.insertions = 0
        self.evictions = 0
        self.expirations = 0
        telemetry = telemetry if telemetry is not None else NULL
        self._t_lookups = telemetry.counter(
            "cache.lookups", help="store lookups by tier and outcome")
        self._t_events = telemetry.counter(
            "cache.events",
            help="insertions/evictions/expirations by tier (and app)")
        self._t_used = telemetry.gauge(
            "cache.used_bytes", help="occupied bytes by tier")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, url: str) -> bool:
        return self._key(url) in self._entries

    @staticmethod
    def _key(url: str) -> str:
        return Url.parse(url).base

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def entries(self) -> list[CacheEntry]:
        # Insertion order of ``_entries`` is deterministic in-process
        # and PACM's min/max tie-breaks rely on it intentionally;
        # sorting here would reorder re-stored entries and change
        # eviction behaviour.
        return list(self._entries.values())  # lint: disable=DET102

    def apps(self) -> set[str]:
        return {entry.app_id for entry in self._entries.values()}

    def utilization(self) -> float:
        return self.used_bytes / self.capacity_bytes

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, url: str, now: float) -> CacheEntry | None:
        """A fresh entry for ``url`` (touching it), or None."""
        entry = self._entries.get(self._key(url))
        if entry is None:
            self._t_lookups.inc(tier=self.tier, outcome="miss")
            return None
        if entry.is_expired(now):
            self._drop(entry, expired=True)
            self._t_lookups.inc(tier=self.tier, outcome="expired")
            return None
        entry.touch(now)
        self._t_lookups.inc(tier=self.tier, outcome="hit")
        return entry

    def peek(self, url: str) -> CacheEntry | None:
        """The entry regardless of freshness, without touching it."""
        return self._entries.get(self._key(url))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def sweep_expired(self, now: float) -> list[CacheEntry]:
        """Remove every expired entry, returning them."""
        expired = [entry for entry in self._entries.values()
                   if entry.is_expired(now)]
        for entry in expired:
            self._drop(entry, expired=True)
        return expired

    def admit(self, entry: CacheEntry, policy: "EvictionPolicy",
              now: float) -> AdmissionResult:
        """Insert ``entry``, evicting per ``policy`` if space is needed.

        A same-URL entry is replaced in place first.  Raises
        :class:`CapacityError` if the object alone exceeds capacity.
        """
        if entry.size_bytes > self.capacity_bytes:
            raise CapacityError(
                f"{entry.url} ({entry.size_bytes}B) exceeds cache capacity "
                f"({self.capacity_bytes}B)")
        existing = self._entries.get(self._key(entry.url))
        if existing is not None:
            self._drop(existing, expired=False, count_eviction=False)
        self.sweep_expired(now)
        evicted: list[CacheEntry] = []
        if entry.size_bytes > self.free_bytes:
            victims = policy.select_victims(self, entry, now)
            if victims is None:
                return AdmissionResult(admitted=False)
            for victim in victims:
                self._drop(victim, expired=False)
                evicted.append(victim)
            if entry.size_bytes > self.free_bytes:
                raise CacheError(
                    f"policy {type(policy).__name__} freed too little room "
                    f"for {entry.url}")
        self._entries[self._key(entry.url)] = entry
        self.used_bytes += entry.size_bytes
        self.insertions += 1
        self._t_events.inc(tier=self.tier, event="insertion",
                           app=entry.app_id)
        self._t_used.set(self.used_bytes, tier=self.tier)
        return AdmissionResult(admitted=True, evicted=evicted)

    def remove(self, url: str) -> CacheEntry | None:
        entry = self._entries.get(self._key(url))
        if entry is not None:
            self._drop(entry, expired=False)
        return entry

    def clear(self) -> None:
        self._entries.clear()
        self.used_bytes = 0

    def _drop(self, entry: CacheEntry, expired: bool,
              count_eviction: bool = True) -> None:
        removed = self._entries.pop(self._key(entry.url), None)
        if removed is None:  # pragma: no cover - internal invariant
            raise CacheError(f"{entry.url} vanished from the store")
        self.used_bytes -= removed.size_bytes
        self._t_used.set(self.used_bytes, tier=self.tier)
        if expired:
            self.expirations += 1
            self._t_events.inc(tier=self.tier, event="expiration",
                               app=removed.app_id)
        elif count_eviction:
            self.evictions += 1
            self._t_events.inc(tier=self.tier, event="eviction",
                               app=removed.app_id)

    def __repr__(self) -> str:
        return (f"<CacheStore {self.used_bytes}/{self.capacity_bytes}B "
                f"entries={len(self._entries)}>")
