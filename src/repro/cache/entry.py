"""Cache entries: a stored object plus the metadata PACM needs.

Every attribute in the paper's system model (Section IV-C) lives here:
``priority`` (p_d), remaining valid time (e_d, derived from
``expires_at``), ``fetch_latency_s`` (l_d, "approximated by the latency
of retrieving the object from the edge or cloud server"), and ``app_id``
(A_d).
"""

from __future__ import annotations

import dataclasses

from repro.errors import CacheError
from repro.httplib.content import DataObject

__all__ = ["CacheEntry"]


@dataclasses.dataclass
class CacheEntry:
    """One cached object and its bookkeeping."""

    data_object: DataObject
    app_id: str
    priority: int
    stored_at: float
    expires_at: float
    fetch_latency_s: float
    last_access: float = 0.0
    access_count: int = 0

    def __post_init__(self) -> None:
        if self.priority < 1:
            raise CacheError(
                f"priority must be a positive integer, got {self.priority}")
        if self.expires_at < self.stored_at:
            raise CacheError("entry expires before it is stored")
        if self.fetch_latency_s < 0:
            raise CacheError(
                f"negative fetch latency {self.fetch_latency_s}")
        if not self.last_access:
            self.last_access = self.stored_at

    @property
    def url(self) -> str:
        return self.data_object.url

    @property
    def size_bytes(self) -> int:
        return self.data_object.size_bytes

    def remaining_ttl(self, now: float) -> float:
        """The paper's e_d: seconds of validity left (>= 0)."""
        return max(0.0, self.expires_at - now)

    def is_expired(self, now: float) -> bool:
        return now >= self.expires_at

    def touch(self, now: float) -> None:
        """Record an access (drives LRU/LFU baselines)."""
        self.last_access = now
        self.access_count += 1

    def __repr__(self) -> str:
        return (f"<CacheEntry {self.url} app={self.app_id} "
                f"p={self.priority} {self.size_bytes}B>")
