"""Offline (trace-driven) cache simulation with a clairvoyant bound.

Replaying a request trace through eviction policies without the network
simulator answers "how good could cache management possibly be?" in
milliseconds instead of minutes.  :class:`BeladyPolicy` is the
clairvoyant reference: it evicts the object whose next use lies farthest
in the future (never-used-again first), the classic upper-bound
heuristic (exact optimality does not carry over to variable object
sizes and TTLs, but it remains the standard yardstick).

Traces come from :func:`repro.apps.trace.generate_request_trace`, which
reproduces the evaluation workload's request stream — same apps, Zipf
rates, and seeds — without simulating the network underneath.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cache.entry import CacheEntry
from repro.cache.policies import EvictionPolicy
from repro.cache.store import CacheStore
from repro.httplib.content import DataObject

__all__ = ["TraceRequest", "BeladyPolicy", "OfflineCacheSimulator",
           "OfflineResult"]


@dataclasses.dataclass(frozen=True)
class TraceRequest:
    """One object request in an offline trace."""

    time_s: float
    url: str
    app_id: str
    size_bytes: int
    priority: int
    ttl_s: float
    fetch_latency_s: float


class BeladyPolicy(EvictionPolicy):
    """Clairvoyant eviction: farthest-next-use goes first.

    Construct with the full trace; :class:`OfflineCacheSimulator` keeps
    :attr:`cursor` pointing at the current request index so next-use
    distances are computed relative to "now".
    """

    def __init__(self, trace: _t.Sequence[TraceRequest]) -> None:
        self._occurrences: dict[str, list[int]] = {}
        for index, request in enumerate(trace):
            self._occurrences.setdefault(request.url, []).append(index)
        self.cursor = 0

    def next_use(self, url: str) -> float:
        """Index of the next request for ``url`` after the cursor."""
        occurrences = self._occurrences.get(url, [])
        # Binary search for the first occurrence beyond the cursor.
        lo, hi = 0, len(occurrences)
        while lo < hi:
            mid = (lo + hi) // 2
            if occurrences[mid] <= self.cursor:
                lo = mid + 1
            else:
                hi = mid
        if lo == len(occurrences):
            return float("inf")
        return float(occurrences[lo])

    def select_victims(self, store: CacheStore, incoming: CacheEntry,
                       now: float) -> list[CacheEntry] | None:
        needed = incoming.size_bytes - store.free_bytes
        if needed <= 0:
            return []
        ranked = sorted(store.entries(),
                        key=lambda entry: self.next_use(entry.url),
                        reverse=True)
        victims: list[CacheEntry] = []
        freed = 0
        for entry in ranked:
            victims.append(entry)
            freed += entry.size_bytes
            if freed >= needed:
                return victims
        return None


@dataclasses.dataclass
class OfflineResult:
    """Hit statistics from one offline replay."""

    policy_name: str
    requests: int = 0
    hits: int = 0
    high_priority_requests: int = 0
    high_priority_hits: int = 0
    bytes_fetched: int = 0
    evictions: int = 0

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def high_priority_hit_ratio(self) -> float:
        if not self.high_priority_requests:
            return 0.0
        return self.high_priority_hits / self.high_priority_requests

    def summary(self) -> dict[str, float]:
        return {
            "requests": float(self.requests),
            "hit_ratio": self.hit_ratio,
            "high_priority_hit_ratio": self.high_priority_hit_ratio,
            "bytes_fetched_mb": self.bytes_fetched / (1024 * 1024),
            "evictions": float(self.evictions),
        }


class OfflineCacheSimulator:
    """Replays a trace through one eviction policy."""

    def __init__(self, capacity_bytes: int) -> None:
        self.capacity_bytes = capacity_bytes

    def replay(self, trace: _t.Sequence[TraceRequest],
               policy: EvictionPolicy,
               policy_name: str | None = None,
               observe: _t.Callable[[TraceRequest], None] | None = None,
               ) -> OfflineResult:
        """Run ``trace`` through ``policy`` and tally hits.

        ``observe`` (if given) is called per request before the cache
        decision — how PACM's frequency tracker stays current.
        """
        store = CacheStore(self.capacity_bytes)
        result = OfflineResult(policy_name or type(policy).__name__)
        for index, request in enumerate(trace):
            if isinstance(policy, BeladyPolicy):
                policy.cursor = index
            if observe is not None:
                observe(request)
            result.requests += 1
            high = request.priority >= 2
            if high:
                result.high_priority_requests += 1
            entry = store.get(request.url, request.time_s)
            if entry is not None:
                result.hits += 1
                if high:
                    result.high_priority_hits += 1
                continue
            result.bytes_fetched += request.size_bytes
            if request.size_bytes > self.capacity_bytes:
                continue
            candidate = CacheEntry(
                DataObject(request.url, request.size_bytes),
                app_id=request.app_id, priority=request.priority,
                stored_at=request.time_s,
                expires_at=request.time_s + request.ttl_s,
                fetch_latency_s=request.fetch_latency_s)
            store.admit(candidate, policy, request.time_s)
        result.evictions = store.evictions
        return result
