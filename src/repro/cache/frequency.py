"""Per-app request-frequency estimation (paper Section IV-C).

The AP computes, for each app *a*::

    R(a) = (1 - alpha) * R'(a) + alpha * r_a(dt)

where ``R'(a)`` is the previous estimate, ``r_a(dt)`` is the number of
requests observed since the last recalculation, and ``alpha`` (0.7 in the
reference implementation) weights recent measurements.  Estimates are
recalculated on a fixed period; :meth:`frequency` normalizes to
requests-per-minute so utilities are comparable across window lengths.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.engine.api import MINUTE

__all__ = ["RequestFrequencyTracker", "DEFAULT_ALPHA"]

DEFAULT_ALPHA = 0.7


class RequestFrequencyTracker:
    """EWMA request counter per app."""

    def __init__(self, alpha: float = DEFAULT_ALPHA,
                 window_s: float = MINUTE) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigError(f"alpha must be in (0, 1], got {alpha}")
        if window_s <= 0:
            raise ConfigError(f"window must be positive, got {window_s}")
        self.alpha = alpha
        self.window_s = window_s
        self._estimates: dict[str, float] = {}
        self._pending: dict[str, int] = {}
        self._last_recalc = 0.0

    def observe(self, app_id: str, now: float, count: int = 1) -> None:
        """Record ``count`` requests for ``app_id``; may roll the window."""
        self._maybe_recalculate(now)
        self._pending[app_id] = self._pending.get(app_id, 0) + count

    def _maybe_recalculate(self, now: float) -> None:
        while now - self._last_recalc >= self.window_s:
            self._recalculate()
            self._last_recalc += self.window_s

    def _recalculate(self) -> None:
        apps = set(self._estimates) | set(self._pending)
        for app_id in apps:
            previous = self._estimates.get(app_id, 0.0)
            recent = float(self._pending.get(app_id, 0))
            self._estimates[app_id] = (
                (1.0 - self.alpha) * previous + self.alpha * recent)
        self._pending.clear()

    def frequency(self, app_id: str, now: float | None = None) -> float:
        """Estimated requests per minute for ``app_id``.

        Blends the last recalculated estimate with the still-accumulating
        window so a cold tracker (first window not yet closed) is not
        blind to brand-new apps.
        """
        if now is not None:
            self._maybe_recalculate(now)
        base = self._estimates.get(app_id, 0.0)
        pending = self._pending.get(app_id, 0)
        blended = base if pending == 0 else (
            (1.0 - self.alpha) * base + self.alpha * pending)
        per_window = max(blended, 0.0)
        return per_window * (MINUTE / self.window_s)

    def apps(self) -> set[str]:
        return set(self._estimates) | set(self._pending)

    def reset(self) -> None:
        self._estimates.clear()
        self._pending.clear()
        self._last_recalc = 0.0
