"""Fairness of cache-space distribution across apps (paper Eq. 1).

The paper measures fairness with the Gini coefficient over per-app
*storage efficiency* ``C_a = (sum of sizes of app a's cached objects) /
R(a)``: an app that occupies much space relative to how often it is
requested is over-served.  ``F(A) <= theta`` constrains PACM's knapsack.
"""

from __future__ import annotations

import math
import typing as _t

from repro.cache.entry import CacheEntry

__all__ = ["gini", "storage_efficiencies", "fairness_index"]

#: Frequency floor to keep C_a finite for apps the tracker has barely seen.
MIN_FREQUENCY = 1e-6


def gini(values: _t.Sequence[float]) -> float:
    """Gini coefficient of non-negative ``values``.

    Computed exactly as the paper's Eq. 1::

        F = sum_x sum_y |C_x - C_y| / (2 * A * sum_x C_x)

    Returns 0.0 for empty input, a single value, or an all-zero vector
    (perfect equality by convention).
    """
    n = len(values)
    if n <= 1:
        return 0.0
    if any(value < 0 for value in values):
        raise ValueError("gini is defined for non-negative values")
    total = math.fsum(values)
    if total == 0.0:
        return 0.0
    # O(n log n) equivalent of the double sum: sort and use rank weights.
    ordered = sorted(values)
    weighted = math.fsum((2 * (index + 1) - n - 1) * value
                         for index, value in enumerate(ordered))
    return weighted / (n * total)


def storage_efficiencies(entries: _t.Iterable[CacheEntry],
                         frequency_of: _t.Callable[[str], float],
                         ) -> dict[str, float]:
    """Per-app C_a = (bytes cached for app) / R(app)."""
    usage: dict[str, int] = {}
    for entry in entries:
        usage[entry.app_id] = usage.get(entry.app_id, 0) + entry.size_bytes
    return {
        app_id: size / max(frequency_of(app_id), MIN_FREQUENCY)
        for app_id, size in usage.items()
    }


def fairness_index(entries: _t.Iterable[CacheEntry],
                   frequency_of: _t.Callable[[str], float]) -> float:
    """The paper's F(A): Gini over per-app storage efficiencies."""
    efficiencies = storage_efficiencies(entries, frequency_of)
    return gini(list(efficiencies.values()))
