"""PACM: the paper's Priority-Aware Cache Management algorithm.

Section IV-C models eviction as a two-dimensional knapsack: keep the
subset O of cached objects maximizing total utility

    U_d = R(A_d) * e_d * l_d * p_d

subject to (1) the kept bytes fitting beside the incoming object and
(2) the Gini fairness of per-app storage efficiency staying below a
threshold theta (0.4 in the reference implementation).

The implementation solves the capacity dimension with a DP knapsack and
enforces the fairness dimension with a bounded repair loop: while the
kept set is unfair, shed the lowest-utility-density object of the most
over-served app and try to back-fill spare bytes with the highest-utility
rejected objects of under-served apps.
"""

from __future__ import annotations

import typing as _t

from repro.errors import ConfigError
from repro.cache.entry import CacheEntry
from repro.cache.fairness import MIN_FREQUENCY, fairness_index, gini
from repro.cache.frequency import RequestFrequencyTracker
from repro.cache.knapsack import DEFAULT_GRANULARITY, solve_knapsack
from repro.cache.policies import EvictionPolicy
from repro.cache.store import CacheStore
from repro.telemetry.registry import NULL

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry import Telemetry

__all__ = ["PacmPolicy", "utility_of", "select_keep_set",
           "DEFAULT_FAIRNESS_THRESHOLD"]

DEFAULT_FAIRNESS_THRESHOLD = 0.4


def utility_of(entry: CacheEntry, frequency: float, now: float) -> float:
    """The paper's U_d = R(A_d) * e_d * l_d * p_d."""
    return (max(frequency, 0.0) * entry.remaining_ttl(now) *
            entry.fetch_latency_s * entry.priority)


def _efficiencies(entries: _t.Sequence[CacheEntry],
                  frequency_of: _t.Callable[[str], float],
                  ) -> dict[str, float]:
    usage: dict[str, int] = {}
    for entry in entries:
        usage[entry.app_id] = usage.get(entry.app_id, 0) + entry.size_bytes
    return {app: size / max(frequency_of(app), MIN_FREQUENCY)
            for app, size in usage.items()}


def select_keep_set(entries: _t.Sequence[CacheEntry],
                    capacity_bytes: int,
                    frequency_of: _t.Callable[[str], float],
                    now: float,
                    fairness_threshold: float = DEFAULT_FAIRNESS_THRESHOLD,
                    granularity: int = DEFAULT_GRANULARITY,
                    max_repair_rounds: int | None = None,
                    ) -> list[CacheEntry]:
    """The subset of ``entries`` PACM retains within ``capacity_bytes``."""
    if capacity_bytes < 0:
        return []
    live = [entry for entry in entries if not entry.is_expired(now)]
    if not live:
        return []
    utilities = [utility_of(entry, frequency_of(entry.app_id), now)
                 for entry in live]
    sizes = [entry.size_bytes for entry in live]
    # Never quantize coarser than ~1/512 of the capacity, so small caches
    # (and unit tests) keep a meaningful DP resolution.
    effective_granularity = max(1, min(granularity, capacity_bytes // 512))
    kept_indices = solve_knapsack(utilities, sizes, capacity_bytes,
                                  effective_granularity)
    kept = [live[index] for index in kept_indices]
    rejected = [live[index] for index in range(len(live))
                if index not in set(kept_indices)]
    utility_by_id = {id(entry): utility
                     for entry, utility in zip(live, utilities)}

    rounds = max_repair_rounds if max_repair_rounds is not None else len(live)
    for _ in range(rounds):
        efficiencies = _efficiencies(kept, frequency_of)
        if len(efficiencies) <= 1 or \
                gini(list(efficiencies.values())) <= fairness_threshold:
            break
        # sorted() pins the tie-break to app_id order; without it, equal
        # efficiencies would shed whichever app the dict iterates first.
        over_served = max(sorted(efficiencies), key=efficiencies.get)
        over_entries = [entry for entry in kept
                        if entry.app_id == over_served]
        if not over_entries:  # pragma: no cover - app key implies entries
            break
        # Shed the over-served app's worst value-per-byte object.
        victim = min(
            over_entries,
            key=lambda entry:
                utility_by_id[id(entry)] / max(entry.size_bytes, 1))
        kept.remove(victim)
        rejected.append(victim)
        # Back-fill with rejected objects of under-served apps.
        used = sum(entry.size_bytes for entry in kept)
        spare = capacity_bytes - used
        backfill = sorted(
            (entry for entry in rejected
             if entry.app_id != over_served and
             entry.size_bytes <= spare),
            key=lambda entry: utility_by_id[id(entry)], reverse=True)
        for entry in backfill:
            if entry.size_bytes <= spare:
                kept.append(entry)
                rejected.remove(entry)
                spare -= entry.size_bytes
    return kept


class PacmPolicy(EvictionPolicy):
    """PACM as a drop-in :class:`EvictionPolicy`.

    Shares the AP runtime's :class:`RequestFrequencyTracker`, so utilities
    reflect live per-app request rates.
    """

    def __init__(self, tracker: RequestFrequencyTracker,
                 fairness_threshold: float = DEFAULT_FAIRNESS_THRESHOLD,
                 granularity: int = DEFAULT_GRANULARITY,
                 telemetry: "Telemetry | None" = None) -> None:
        if not 0.0 <= fairness_threshold <= 1.0:
            raise ConfigError(
                f"fairness threshold must be in [0, 1], "
                f"got {fairness_threshold}")
        self.tracker = tracker
        self.fairness_threshold = fairness_threshold
        self.granularity = granularity
        self.selections = 0
        telemetry = telemetry if telemetry is not None else NULL
        self._t_selections = telemetry.counter(
            "pacm.selections", help="PACM victim-selection invocations")
        self._t_victims = telemetry.histogram(
            "pacm.victims", help="victims evicted per PACM selection",
            buckets=(0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0))

    def select_victims(self, store: CacheStore, incoming: CacheEntry,
                       now: float) -> list[CacheEntry] | None:
        """Evict everything PACM's keep-set excludes (see select_keep_set)."""
        self.selections += 1
        self._t_selections.inc()
        capacity = store.capacity_bytes - incoming.size_bytes
        if capacity < 0:
            return None
        frequency_of = lambda app_id: self.tracker.frequency(app_id)  # noqa: E731
        kept = select_keep_set(
            store.entries(), capacity, frequency_of, now,
            fairness_threshold=self.fairness_threshold,
            granularity=self.granularity)
        kept_ids = {id(entry) for entry in kept}
        victims = [entry for entry in store.entries()
                   if id(entry) not in kept_ids]
        self._t_victims.observe(float(len(victims)))
        return victims

    def fairness(self, store: CacheStore) -> float:
        """Current F(A) of the store under this policy's tracker."""
        return fairness_index(
            store.entries(), lambda app_id: self.tracker.frequency(app_id))
