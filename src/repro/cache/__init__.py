"""Cache machinery: store, entries, policies, PACM, fairness, frequency."""

from repro.cache.entry import CacheEntry
from repro.cache.fairness import fairness_index, gini, storage_efficiencies
from repro.cache.frequency import DEFAULT_ALPHA, RequestFrequencyTracker
from repro.cache.knapsack import (
    DEFAULT_GRANULARITY,
    solve_knapsack,
    solve_knapsack_exact,
)
from repro.cache.offline import (
    BeladyPolicy,
    OfflineCacheSimulator,
    OfflineResult,
    TraceRequest,
)
from repro.cache.pacm import (
    DEFAULT_FAIRNESS_THRESHOLD,
    PacmPolicy,
    select_keep_set,
    utility_of,
)
from repro.cache.policies import (
    EvictionPolicy,
    FifoPolicy,
    LfuPolicy,
    LruPolicy,
)
from repro.cache.store import AdmissionResult, CacheStore

__all__ = [
    "AdmissionResult",
    "BeladyPolicy",
    "CacheEntry",
    "CacheStore",
    "OfflineCacheSimulator",
    "OfflineResult",
    "TraceRequest",
    "DEFAULT_ALPHA",
    "DEFAULT_FAIRNESS_THRESHOLD",
    "DEFAULT_GRANULARITY",
    "EvictionPolicy",
    "FifoPolicy",
    "LfuPolicy",
    "LruPolicy",
    "PacmPolicy",
    "RequestFrequencyTracker",
    "fairness_index",
    "gini",
    "select_keep_set",
    "solve_knapsack",
    "solve_knapsack_exact",
    "storage_efficiencies",
    "utility_of",
]
