"""APE-CACHE core: programming model, AP runtime, client runtime.

This package is the paper's primary contribution; everything else in
:mod:`repro` is substrate (simulation kernel, network, DNS, HTTP) or
evaluation scaffolding (baselines, workloads, experiments).
"""

from repro.core.annotations import (
    HIGH_PRIORITY,
    LOW_PRIORITY,
    CacheableSpec,
    cacheable,
    group_by_domain,
    scan_cacheables,
)
from repro.core.api_model import invoke_http_request_async
from repro.core.ap_runtime import (
    APE_APP_HEADER,
    APE_MODE_HEADER,
    APE_PRIORITY_HEADER,
    APE_TTL_HEADER,
    ApRuntime,
)
from repro.core.blocklist import BlockList
from repro.core.client_runtime import (
    ApeCacheInterceptor,
    ClientRuntime,
    FetchResult,
)
from repro.core.config import ApeCacheConfig
from repro.core.prefetch import (
    PREFETCH_HEADER,
    PrefetchHint,
    decode_hints,
    encode_hints,
)
from repro.dnslib.cache_rr import CacheFlag

__all__ = [
    "APE_APP_HEADER",
    "APE_MODE_HEADER",
    "APE_PRIORITY_HEADER",
    "APE_TTL_HEADER",
    "ApRuntime",
    "ApeCacheConfig",
    "ApeCacheInterceptor",
    "BlockList",
    "CacheFlag",
    "CacheableSpec",
    "ClientRuntime",
    "FetchResult",
    "HIGH_PRIORITY",
    "LOW_PRIORITY",
    "PREFETCH_HEADER",
    "PrefetchHint",
    "cacheable",
    "decode_hints",
    "encode_hints",
    "group_by_domain",
    "invoke_http_request_async",
    "scan_cacheables",
]
