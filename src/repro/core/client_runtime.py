"""The client-side APE-CACHE runtime (the paper's modified OkHttp/c-ares).

Responsibilities:

* keep the registry of cacheable objects declared via annotations;
* perform **DNS-Cache lookups**: one modified DNS query per domain
  carrying the hashes of every cacheable URL under that domain (per-domain
  batching), caching the returned flags for the answer's TTL;
* dispatch each fetch on the returned flag — AP hit, edge fetch, or
  delegation — exactly as Fig. 7 describes;
* expose an :class:`~repro.httplib.client.Interceptor` so unmodified app
  code using the HTTP client transparently gains AP caching.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import ConfigError, TransportError
from repro.cache.entry import CacheEntry
from repro.cache.policies import LruPolicy
from repro.cache.store import CacheStore
from repro.core.annotations import CacheableSpec, scan_cacheables
from repro.core.ap_runtime import (
    APE_APP_HEADER,
    APE_MODE_HEADER,
    APE_PRIORITY_HEADER,
    APE_TRACE_HEADER,
    APE_TTL_HEADER,
    SERVED_FROM_HEADER,
)
from repro.core.prefetch import PREFETCH_HEADER, PrefetchHint, encode_hints
from repro.dnslib.cache_rr import CacheFlag, CacheLookupRdata, hash_url
from repro.dnslib.message import Message, Rcode
from repro.dnslib.resolver import StubResolver
from repro.dnslib.rr import RRClass, RRType
from repro.httplib.client import HttpClient, Interceptor, TARGET_IP_HEADER
from repro.httplib.content import DataObject
from repro.httplib.messages import HttpRequest, HttpResponse
from repro.httplib.url import Url
from repro.net.address import DUMMY_IP, IPv4Address
from repro.net.node import Node
from repro.net.transport import Transport
from repro.sim.monitor import MetricSet
from repro.telemetry.registry import NULL
from repro.telemetry.spans import Span, format_trace_parent

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry import Telemetry

__all__ = ["ClientRuntime", "FetchResult", "ApeCacheInterceptor"]


@dataclasses.dataclass
class FetchResult:
    """Outcome of fetching one cacheable object through APE-CACHE."""

    data_object: DataObject | None
    source: str                   # "ap-hit" | "ap-delegated" | "edge"
    flag: CacheFlag
    lookup_latency_s: float
    retrieval_latency_s: float
    used_cached_flags: bool
    #: Whether the object was served out of the AP's cache memory (the
    #: paper's cache-hit definition for the hit-ratio experiments).
    cache_hit: bool = False

    @property
    def total_latency_s(self) -> float:
        return self.lookup_latency_s + self.retrieval_latency_s


class _DomainFlags:
    """Cached DNS-Cache state for one domain."""

    def __init__(self, flags: dict[bytes, CacheFlag],
                 address: IPv4Address, expires_at: float) -> None:
        self.flags = flags
        self.address = address
        self.expires_at = expires_at

    def fresh(self, now: float) -> bool:
        return now < self.expires_at


class ClientRuntime:
    """Per-device APE-CACHE client library."""

    def __init__(self, node: Node, transport: Transport,
                 ap_address: "IPv4Address | str",
                 app_id: str = "app",
                 device_cache_bytes: int = 0,
                 telemetry: "Telemetry | None" = None) -> None:
        """``device_cache_bytes`` > 0 adds an on-device L1 cache in
        front of the AP (the PALOMA/Marauder-style client-side layer
        the paper's related work discusses); 0 — the paper's default —
        disables it."""
        self.node = node
        self.sim = node.sim
        self.transport = transport
        self.ap_address = IPv4Address(ap_address)
        self.app_id = app_id
        self.telemetry: "Telemetry" = (telemetry if telemetry is not None
                                       else NULL)
        self.resolver = StubResolver(node, transport, self.ap_address,
                                     telemetry=telemetry)
        self.http = HttpClient(node, transport, self.resolver,
                               telemetry=telemetry)
        self._specs: dict[str, CacheableSpec] = {}
        self._domain_flags: dict[str, _DomainFlags] = {}
        self._dependents: dict[str, list[PrefetchHint]] = {}
        self.device_cache: CacheStore | None = (
            CacheStore(device_cache_bytes, telemetry=telemetry,
                       tier="device") if device_cache_bytes > 0
            else None)
        self._device_policy = LruPolicy()
        self.device_hits = 0
        self.metrics = MetricSet()
        self.dns_cache_queries = 0
        self.flag_table_hits = 0
        self._h_lookup = self.telemetry.histogram(
            "client.lookup_ms", help="cache-lookup stage latency (ms)")
        self._h_retrieval = self.telemetry.histogram(
            "client.retrieval_ms",
            help="cache-retrieval stage latency (ms), by source")
        self._h_total = self.telemetry.histogram(
            "client.total_ms", help="end-to-end fetch latency (ms)")
        self._t_fetches = self.telemetry.counter(
            "client.fetches", help="fetches by app, source, and hit")

    # ------------------------------------------------------------------
    # Programming-model integration
    # ------------------------------------------------------------------
    def register(self, target: "object | type") -> list[CacheableSpec]:
        """Scan ``target`` for :func:`cacheable` fields and register them."""
        specs = scan_cacheables(target)
        for spec in specs:
            self.register_spec(spec)
        return specs

    def register_spec(self, spec: CacheableSpec) -> None:
        existing = self._specs.get(spec.base_url)
        if existing is not None and existing != spec:
            raise ConfigError(
                f"conflicting cacheable declarations for {spec.base_url}")
        self._specs[spec.base_url] = spec

    def spec_for(self, url: "Url | str") -> CacheableSpec | None:
        base = Url.parse(url).base if isinstance(url, str) else url.base
        return self._specs.get(base)

    def specs_for_domain(self, domain: str) -> list[CacheableSpec]:
        return [spec for spec in self._specs.values()
                if spec.domain == domain.lower()]

    def register_dependencies(
            self, dependents_of: dict[str, list[CacheableSpec]]) -> None:
        """Declare which objects typically follow which (prefetching).

        ``dependents_of`` maps a parent's base URL to the specs fetched
        right after it in the app's DAG.  When the AP's prefetching
        extension is enabled, delegations for the parent carry these as
        hints so the AP can warm the dependents off the critical path.
        """
        for parent_url, specs in dependents_of.items():
            base = Url.parse(parent_url).base
            self._dependents[base] = [PrefetchHint.from_spec(spec)
                                      for spec in specs]

    def install_interceptor(self) -> None:
        """Make the plain HTTP client APE-aware (zero app-logic change)."""
        self.http.add_interceptor(ApeCacheInterceptor(self))

    # ------------------------------------------------------------------
    # Cache lookup (DNS-Cache piggybacking)
    # ------------------------------------------------------------------
    def lookup(self, domain: str,
               ) -> _t.Generator[object, object, _DomainFlags]:
        """Current flags for ``domain``, via cached state or a DNS-Cache
        query batching every registered URL under the domain."""
        state = self._domain_flags.get(domain)
        if state is not None and state.fresh(self.sim.now):
            self.flag_table_hits += 1
            return state
        self._domain_flags.pop(domain, None)

        query = Message.query(domain, RRType.A,
                              message_id=self.resolver.next_message_id())
        rdata = CacheLookupRdata()
        for spec in self.specs_for_domain(domain):
            rdata.add_url(spec.base_url, CacheFlag.REQUEST)
        query.attach_cache_lookup(rdata, RRClass.REQUEST)
        self.dns_cache_queries += 1
        response = yield from self.resolver.exchange(query)

        flags: dict[bytes, CacheFlag] = {}
        lookup = response.cache_lookup(RRClass.RESPONSE)
        if lookup is not None:
            flags = {entry.url_hash: entry.flag for entry in lookup}
        a_record = response.first_answer(RRType.A)
        if a_record is None or response.header.rcode != Rcode.NOERROR:
            raise TransportError(
                f"DNS-Cache lookup for {domain} failed "
                f"(rcode={response.header.rcode.name})")
        address = _t.cast(IPv4Address, a_record.rdata)
        ttl = min(record.ttl for record in response.answers)
        state = _DomainFlags(flags, address, self.sim.now + ttl)
        if ttl > 0:
            self._domain_flags[domain] = state
            self.resolver.cache_response(domain, response)
        return state

    # ------------------------------------------------------------------
    # Fetching (Fig. 7's cache retrieval stage)
    # ------------------------------------------------------------------
    def fetch(self, url: "Url | str",
              ) -> _t.Generator[object, object, FetchResult]:
        """Fetch one cacheable object through the APE-CACHE workflow."""
        parsed = Url.parse(url) if isinstance(url, str) else url
        spec = self.spec_for(parsed)
        if spec is None:
            raise ConfigError(
                f"{parsed.base} is not a registered cacheable object")

        with self.telemetry.span("request", app=self.app_id,
                                 url=parsed.base) as req:
            if self.device_cache is not None:
                local = self.device_cache.get(parsed.base, self.sim.now)
                if local is not None:
                    self.device_hits += 1
                    req.set_attr("source", "device-hit")
                    result = FetchResult(
                        data_object=local.data_object, source="device-hit",
                        flag=CacheFlag.CACHE_HIT, lookup_latency_s=0.0,
                        retrieval_latency_s=0.0, used_cached_flags=True,
                        cache_hit=True)
                    self._record(result)
                    return result

            lookup_started = self.sim.now
            had_fresh_flags = (domain_state := self._domain_flags.get(
                parsed.host)) is not None and \
                domain_state.fresh(self.sim.now)
            with self.telemetry.span("dns_piggyback", parent=req,
                                     domain=parsed.host) as dns_span:
                state = yield from self.lookup(parsed.host)
                dns_span.set_attr("cached_flags", had_fresh_flags)
            lookup_latency = self.sim.now - lookup_started

            flag = state.flags.get(hash_url(parsed.base),
                                   CacheFlag.DELEGATION)
            retrieval_started = self.sim.now
            if flag == CacheFlag.CACHE_HIT:
                with self.telemetry.span("ap_hit", parent=req) as stage:
                    response = yield from self._fetch_from_ap(
                        parsed, mode="fetch", spec=spec, parent=stage)
                source = "ap-hit"
            elif flag == CacheFlag.CACHE_MISS:
                with self.telemetry.span("edge_fetch", parent=req):
                    response = yield from self._fetch_from_edge(parsed,
                                                                state)
                source = "edge"
            else:
                with self.telemetry.span("ap_delegated",
                                         parent=req) as stage:
                    response = yield from self._fetch_from_ap(
                        parsed, mode="delegate", spec=spec, parent=stage)
                source = "ap-delegated"
                # The AP now holds the object; upgrade the local flag so
                # later requests inside the flag TTL go down the hit path.
                if response.ok and response.body is not None:
                    state.flags[hash_url(parsed.base)] = CacheFlag.CACHE_HIT
            retrieval_latency = self.sim.now - retrieval_started
            req.set_attr("source", source)

            result = FetchResult(
                data_object=response.body if response.ok else None,
                source=source, flag=flag,
                lookup_latency_s=lookup_latency,
                retrieval_latency_s=retrieval_latency,
                used_cached_flags=had_fresh_flags,
                cache_hit=response.header(SERVED_FROM_HEADER) == "cache")
        if self.device_cache is not None and result.data_object is not \
                None and result.data_object.size_bytes <= \
                self.device_cache.capacity_bytes:
            self.device_cache.admit(
                CacheEntry(result.data_object, app_id=self.app_id,
                           priority=spec.priority, stored_at=self.sim.now,
                           expires_at=self.sim.now + spec.ttl_s,
                           fetch_latency_s=result.total_latency_s),
                self._device_policy, self.sim.now)
        self._record(result)
        return result

    def _fetch_from_ap(self, url: Url, mode: str, spec: CacheableSpec,
                       parent: "Span | None" = None,
                       ) -> _t.Generator[object, object, HttpResponse]:
        headers = {
            APE_MODE_HEADER: mode,
            APE_APP_HEADER: self.app_id,
            APE_TTL_HEADER: str(spec.ttl_s),
            APE_PRIORITY_HEADER: str(spec.priority),
            TARGET_IP_HEADER: str(self.ap_address),
        }
        if parent is not None and self.telemetry.enabled:
            # Links the AP's spans under this stage (zero wire cost; see
            # ZERO_COST_HEADERS in httplib.messages).
            headers[APE_TRACE_HEADER] = format_trace_parent(parent)
        request = HttpRequest(url, headers=headers)
        if mode == "delegate":
            hints = self._dependents.get(url.base)
            if hints:
                request = request.with_header(PREFETCH_HEADER,
                                              encode_hints(hints))
        response = yield from self.http.transport_call(request)
        return response

    def _fetch_from_edge(self, url: Url, state: _DomainFlags,
                         ) -> _t.Generator[object, object, HttpResponse]:
        if state.address == DUMMY_IP:
            raise TransportError(
                f"protocol violation: Cache-Miss for {url.base} alongside "
                "a dummy IP (the AP only short-circuits when all URLs hit)")
        request = HttpRequest(url, headers={
            TARGET_IP_HEADER: str(state.address)})
        response = yield from self.http.transport_call(request)
        return response

    def _record(self, result: FetchResult) -> None:
        now = self.sim.now
        self.metrics.record("lookup_s", now, result.lookup_latency_s)
        self.metrics.record("retrieval_s", now, result.retrieval_latency_s)
        self.metrics.record("total_s", now, result.total_latency_s)
        self.metrics.record(f"source:{result.source}", now, 1.0)
        self._h_lookup.observe(result.lookup_latency_s * 1e3,
                               app=self.app_id)
        self._h_retrieval.observe(result.retrieval_latency_s * 1e3,
                                  app=self.app_id, source=result.source)
        self._h_total.observe(result.total_latency_s * 1e3,
                              app=self.app_id, source=result.source)
        self._t_fetches.inc(app=self.app_id, source=result.source,
                            hit="yes" if result.cache_hit else "no")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def hit_ratio(self) -> float:
        """Fraction of fetches served from the AP's cache."""
        hits = self.metrics.series("source:ap-hit").count
        total = self.metrics.series("total_s").count
        return hits / total if total else 0.0

    def flush(self) -> None:
        self._domain_flags.clear()
        self.resolver.flush_cache()


class ApeCacheInterceptor(Interceptor):
    """Routes matching requests through the APE-CACHE fetch workflow.

    Installed on the plain HTTP client, it makes the paper's "no changes
    to the application logic" claim literal: app code keeps calling
    ``client.get(url)``.
    """

    def __init__(self, runtime: ClientRuntime) -> None:
        self.runtime = runtime

    def intercept(self, chain, request: HttpRequest,
                  ) -> _t.Generator[object, object, HttpResponse]:
        if request.header(APE_MODE_HEADER) is not None or \
                request.header(TARGET_IP_HEADER) is not None:
            # Internal traffic of the runtime itself: pass through.
            response = yield from chain.proceed(request)
            return response
        if self.runtime.spec_for(request.url) is None:
            response = yield from chain.proceed(request)
            return response
        result = yield from self.runtime.fetch(request.url)
        if result.data_object is None:
            return HttpResponse.not_found(request.url)
        return HttpResponse(status=200, body=result.data_object)
