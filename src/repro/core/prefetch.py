"""Dependency-aware prefetching on the AP (paper Section VI extension).

The paper notes APE-CACHE is orthogonal to app-acceleration systems like
APPx/PALOMA and can be combined with them "by sending the request
dependency information to the APE-CACHE-enabled AP to prefetch data,
thereby reducing cache misses".  This module implements that extension:

* the client derives each object's *dependents* from the app's fetch DAG
  and attaches them (URL, TTL, priority) to delegation requests;
* after serving a delegation, the AP prefetches the hinted dependents it
  does not hold — off the client's critical path — so the app's very
  next fetches hit the AP cache even on a cold start.

The feature is off by default (``ApeCacheConfig.enable_prefetch``), so
the unmodified paper behaviour stays the baseline; the ablation bench
quantifies the gain.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigError
from repro.core.annotations import CacheableSpec

__all__ = ["PrefetchHint", "encode_hints", "decode_hints",
           "PREFETCH_HEADER"]

#: Delegation-request header carrying encoded dependent-object hints.
PREFETCH_HEADER = "x-ape-prefetch"

_FIELD_SEP = "|"
_HINT_SEP = ";"


@dataclasses.dataclass(frozen=True)
class PrefetchHint:
    """One dependent object worth prefetching after a delegation."""

    url: str
    ttl_s: float
    priority: int

    def __post_init__(self) -> None:
        if _FIELD_SEP in self.url or _HINT_SEP in self.url:
            raise ConfigError(
                f"URL contains a reserved separator: {self.url!r}")
        if self.ttl_s <= 0:
            raise ConfigError(f"TTL must be positive, got {self.ttl_s}")
        if self.priority < 1:
            raise ConfigError(
                f"priority must be >= 1, got {self.priority}")

    @classmethod
    def from_spec(cls, spec: CacheableSpec) -> "PrefetchHint":
        return cls(url=spec.base_url, ttl_s=spec.ttl_s,
                   priority=spec.priority)


def encode_hints(hints: list[PrefetchHint]) -> str:
    """Serialize hints for the delegation-request header."""
    return _HINT_SEP.join(
        _FIELD_SEP.join((hint.url, f"{hint.ttl_s:.3f}",
                         str(hint.priority)))
        for hint in hints)


def decode_hints(encoded: str) -> list[PrefetchHint]:
    """Parse the header back into hints; raises on malformed input."""
    if not encoded:
        return []
    hints = []
    for chunk in encoded.split(_HINT_SEP):
        parts = chunk.split(_FIELD_SEP)
        if len(parts) != 3:
            raise ConfigError(f"malformed prefetch hint: {chunk!r}")
        url, raw_ttl, raw_priority = parts
        try:
            hints.append(PrefetchHint(url, float(raw_ttl),
                                      int(raw_priority)))
        except ValueError as exc:
            raise ConfigError(
                f"malformed prefetch hint {chunk!r}: {exc}") from None
    return hints
