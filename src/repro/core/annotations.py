"""APE-CACHE's declarative programming model.

The paper marks cacheable Java fields with ``@Cacheable(id, Priority,
TTL)`` and discovers them via reflection.  The Python equivalent marks
class attributes with :func:`cacheable` and discovers them with
:func:`scan_cacheables` — app logic never changes; the runtime learns
what to cache purely from declarations::

    class MovieTrailerApi:
        movie_id = cacheable("http://api.movies.example/id",
                             priority=HIGH_PRIORITY, ttl_minutes=30)
        rating = cacheable("http://api.movies.example/rating",
                           priority=LOW_PRIORITY, ttl_minutes=30)

    specs = scan_cacheables(MovieTrailerApi)
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import ConfigError
from repro.httplib.url import Url
from repro.engine.api import MINUTE

__all__ = ["CacheableSpec", "cacheable", "scan_cacheables",
           "LOW_PRIORITY", "HIGH_PRIORITY"]

#: The paper's priority scale: "values of 1 or 2, which stand for low and
#: high priority".  PACM accepts any positive integer.
LOW_PRIORITY = 1
HIGH_PRIORITY = 2


@dataclasses.dataclass(frozen=True)
class CacheableSpec:
    """One cacheable object declaration.

    ``url`` is the object's *basic* URL (no query parameters) — the
    paper's ``id`` attribute.  ``ttl_s`` is stored in seconds; the
    annotation takes minutes to match the paper's TTL field.
    """

    url: str
    priority: int
    ttl_s: float
    field_name: str = ""

    def __post_init__(self) -> None:
        parsed = Url.parse(self.url)
        if parsed.query:
            raise ConfigError(
                f"cacheable id must be a basic URL without parameters: "
                f"{self.url!r}")
        if self.priority < 1:
            raise ConfigError(
                f"priority must be a positive integer, got {self.priority}")
        if self.ttl_s <= 0:
            raise ConfigError(f"TTL must be positive, got {self.ttl_s}")

    @property
    def domain(self) -> str:
        return Url.parse(self.url).host

    @property
    def base_url(self) -> str:
        return Url.parse(self.url).base


class cacheable:  # noqa: N801 - annotation-like lowercase by design
    """Field marker carrying (id, priority, TTL), like ``@Cacheable``."""

    def __init__(self, id: str, priority: int = LOW_PRIORITY,  # noqa: A002
                 ttl_minutes: float = 10.0) -> None:
        self.spec = CacheableSpec(url=id, priority=priority,
                                  ttl_s=ttl_minutes * MINUTE)

    def __set_name__(self, owner: type, name: str) -> None:
        self.spec = dataclasses.replace(self.spec, field_name=name)

    def __get__(self, instance: object, owner: type | None = None,
                ) -> "cacheable | str":
        # Reading the field in app code yields the URL, so application
        # logic that builds requests keeps working unmodified.
        if instance is None:
            return self
        return self.spec.url

    def __repr__(self) -> str:
        return (f"cacheable(id={self.spec.url!r}, "
                f"priority={self.spec.priority}, "
                f"ttl_s={self.spec.ttl_s})")


def scan_cacheables(target: "object | type") -> list[CacheableSpec]:
    """Reflect over ``target`` collecting every :func:`cacheable` field.

    Accepts a class or an instance; walks the MRO so inherited
    declarations are found, subclass overrides winning.
    """
    klass = target if isinstance(target, type) else type(target)
    found: dict[str, CacheableSpec] = {}
    for base in reversed(klass.__mro__):
        for name, value in vars(base).items():
            if isinstance(value, cacheable):
                found[name] = value.spec
    specs = list(found.values())
    urls = [spec.base_url for spec in specs]
    duplicates = {url for url in urls if urls.count(url) > 1}
    if duplicates:
        raise ConfigError(
            f"duplicate cacheable ids in {klass.__name__}: "
            f"{sorted(duplicates)}")
    return specs


def group_by_domain(specs: _t.Iterable[CacheableSpec],
                    ) -> dict[str, list[CacheableSpec]]:
    """Bucket specs by hostname (the unit of DNS-Cache batching)."""
    grouped: dict[str, list[CacheableSpec]] = {}
    for spec in specs:
        grouped.setdefault(spec.domain, []).append(spec)
    return grouped
