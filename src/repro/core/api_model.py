"""The alternative, API-based programming model (paper Section V-F).

To quantify the usability of the declarative annotations, the paper
builds a second model in which developers *rewrite* each HTTP call as::

    String invokeHttpRequestAsync(String url, int priority, int TTL)

This module is that alternative: :func:`invoke_http_request_async`
registers the object on the fly and fetches it.  Using it requires
touching every call site (what Table VII counts as "Impacted LoCs" and
"Re-write Logic"), whereas the annotation model only adds declarations.
"""

from __future__ import annotations

import typing as _t

from repro.core.annotations import CacheableSpec
from repro.core.client_runtime import ClientRuntime, FetchResult
from repro.engine.api import MINUTE

__all__ = ["invoke_http_request_async"]


def invoke_http_request_async(runtime: ClientRuntime, url: str,
                              priority: int, ttl_minutes: float,
                              ) -> _t.Generator[object, object, FetchResult]:
    """Fetch ``url`` through APE-CACHE, declaring it inline.

    The annotation model declares (url, priority, TTL) once per object;
    here the triple rides on every call — the call-site rewriting burden
    Table VII measures.
    """
    spec = CacheableSpec(url=url, priority=priority,
                         ttl_s=ttl_minutes * MINUTE)
    runtime.register_spec(spec)
    result = yield from runtime.fetch(url)
    return result
