"""The AP's block list (paper Section IV-B).

After delegating a request, the AP may decide never to cache that object
("the AP has delegated the request before but decided not to cache it
anymore by adding it to a block list.  If the data size exceeds a
threshold — set at 500 KB in our implementation — it will be added").
Blocked URLs answer ``Cache-Miss`` so clients go straight to the edge.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.dnslib.cache_rr import hash_url

__all__ = ["BlockList"]


class BlockList:
    """A set of blocked URL hashes with a size-threshold admission rule."""

    def __init__(self, threshold_bytes: int) -> None:
        if threshold_bytes <= 0:
            raise ConfigError(
                f"threshold must be positive, got {threshold_bytes}")
        self.threshold_bytes = threshold_bytes
        self._blocked_hashes: set[bytes] = set()

    def should_block(self, size_bytes: int) -> bool:
        """Whether an object of this size must never be cached."""
        return size_bytes > self.threshold_bytes

    def block(self, url: str) -> None:
        self._blocked_hashes.add(hash_url(url))

    def block_hash(self, url_hash: bytes) -> None:
        self._blocked_hashes.add(url_hash)

    def unblock(self, url: str) -> None:
        self._blocked_hashes.discard(hash_url(url))

    def is_blocked(self, url: str) -> bool:
        return hash_url(url) in self._blocked_hashes

    def is_blocked_hash(self, url_hash: bytes) -> bool:
        return url_hash in self._blocked_hashes

    def __len__(self) -> int:
        return len(self._blocked_hashes)

    def clear(self) -> None:
        self._blocked_hashes.clear()
