"""The AP-side APE-CACHE runtime (the paper's modified dnsmasq).

Extends the stock caching DNS forwarder with:

* **DNS-Cache responses** — queries carrying a DNSCACHE/REQUEST record in
  the Additional section are answered with per-URL flags for every URL the
  AP knows under the queried domain (per-domain batching);
* **dummy-IP short circuit** — when every requested URL is cached, the AP
  skips upstream resolution and answers a dummy IP with TTL 0;
* **an HTTP endpoint** serving cache hits and handling delegations: the
  AP fetches from the edge on the client's behalf, caches the object
  under PACM (or any injected policy), and returns it;
* **block-list** management for objects above the size threshold.
"""

from __future__ import annotations

import typing as _t

from repro.errors import DnsError, HttpError
from repro.cache.entry import CacheEntry
from repro.cache.frequency import RequestFrequencyTracker
from repro.cache.pacm import PacmPolicy
from repro.cache.policies import EvictionPolicy
from repro.cache.store import CacheStore
from repro.core.blocklist import BlockList
from repro.core.config import ApeCacheConfig
from repro.core.prefetch import PREFETCH_HEADER, PrefetchHint, decode_hints
from repro.dnslib.cache_rr import CacheFlag, CacheLookupRdata, hash_url
from repro.dnslib.message import Message, Rcode
from repro.dnslib.name import DomainName
from repro.dnslib.rr import ResourceRecord, RRClass, RRType
from repro.dnslib.server import ForwardingDnsService
from repro.httplib.content import DataObject
from repro.httplib.messages import HttpRequest, HttpResponse
from repro.httplib.url import Url
from repro.net.address import DUMMY_IP, IPv4Address
from repro.net.node import Node, TCP_HTTP_PORT, UDP_DNS_PORT
from repro.net.transport import Transport
from repro.sim.tracing import EventTrace
from repro.telemetry.spans import ParentLike, parse_trace_parent

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry import Telemetry

__all__ = ["ApRuntime", "APE_MODE_HEADER", "APE_APP_HEADER",
           "APE_TTL_HEADER", "APE_PRIORITY_HEADER", "SERVED_FROM_HEADER",
           "APE_TRACE_HEADER"]

#: Pseudo-headers of the client<->AP cache protocol.
APE_MODE_HEADER = "x-ape-cache"          # "fetch" | "delegate"
APE_APP_HEADER = "x-ape-app"             # requesting app id
APE_TTL_HEADER = "x-ape-ttl"             # object TTL in seconds
APE_PRIORITY_HEADER = "x-ape-priority"   # developer-assigned priority
#: Trace context ("trace.span") linking the AP's spans under the
#: client's request span.  Shares the x-ape- prefix, so — like the rest
#: of the cache protocol — it is stripped from edge-bound requests.
APE_TRACE_HEADER = "x-ape-trace"
#: Response header telling the client whether the AP answered from its
#: cache ("cache") or had to reach the edge ("edge").
SERVED_FROM_HEADER = "x-ape-served-from"


class ApRuntime(ForwardingDnsService):
    """APE-CACHE's cache management + modified DNS on the access point."""

    def __init__(self, node: Node, transport: Transport,
                 upstream: "IPv4Address | str",
                 config: ApeCacheConfig | None = None,
                 policy: EvictionPolicy | None = None,
                 tracer: "EventTrace | None" = None,
                 telemetry: "Telemetry | None" = None) -> None:
        self.config = config or ApeCacheConfig()
        super().__init__(node, transport, upstream,
                         service_time_s=self.config.dns_service_time_s)
        if telemetry is not None:
            self.bind_telemetry(telemetry)
        self.tracker = RequestFrequencyTracker(
            alpha=self.config.frequency_alpha,
            window_s=self.config.frequency_window_s)
        self.policy = policy if policy is not None else PacmPolicy(
            self.tracker,
            fairness_threshold=self.config.fairness_threshold,
            granularity=self.config.knapsack_granularity,
            telemetry=telemetry)
        self.store = CacheStore(self.config.cache_capacity_bytes,
                                telemetry=telemetry, tier="ap")
        self.blocklist = BlockList(self.config.blocklist_threshold_bytes)
        self._h_edge_fetch = self.telemetry.histogram(
            "ap.edge_fetch_ms", help="AP-to-edge retrieval latency (ms)")
        self._t_http = self.telemetry.counter(
            "ap.http_requests", help="cache-endpoint requests, by mode")
        self.tracer = tracer
        self._url_by_hash: dict[bytes, str] = {}
        # Statistics surfaced by the overhead experiments (Fig. 14).
        self.dns_cache_queries = 0
        self.plain_dns_queries = 0
        self.hits_served = 0
        self.stale_fetches = 0
        self.delegations = 0
        self.edge_fetches = 0
        self.pacm_runs = 0
        self.blocked_objects = 0
        self.prefetches = 0
        self.coalesced_fetches = 0
        #: In-flight edge fetches by base URL, so concurrent delegations
        #: and prefetches for the same object coalesce onto one fetch.
        self._inflight: dict[str, object] = {}

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self, dns_port: int = UDP_DNS_PORT,
                http_port: int = TCP_HTTP_PORT) -> None:
        """Bind the modified DNS and the cache HTTP endpoint."""
        super().install(port=dns_port)
        self.node.bind_tcp(http_port, self._handle_http)

    # ------------------------------------------------------------------
    # Modified DNS (cache lookup piggybacking)
    # ------------------------------------------------------------------
    def respond(self, query: Message, source: IPv4Address,
                ) -> _t.Generator[object, object, Message]:
        lookup = query.cache_lookup(RRClass.REQUEST)
        if lookup is None:
            self.plain_dns_queries += 1
            response = yield from super().respond(query, source)
            return response

        self.dns_cache_queries += 1
        # The DNS-Cache search costs a little extra CPU beyond a plain
        # DNS lookup (this is what Fig. 11b quantifies as +0.02 ms).
        yield self.node.occupy_cpu(self.config.dns_cache_extra_cpu_s)
        domain = query.question_name()
        result = self._build_flags(lookup, domain)
        if self.tracer is not None:
            self.tracer.log("dns-cache", "lookup answered",
                            domain=str(domain), entries=len(result.rdata),
                            all_hit=result.all_hit)

        if result.all_hit and self.config.enable_dummy_ip_short_circuit:
            # Short circuit: no upstream resolution; dummy IP, TTL 0.
            response = query.make_response()
            response.answers.append(ResourceRecord(
                domain, RRType.A, RRClass.IN,
                self.config.dummy_answer_ttl_s, DUMMY_IP))
        else:
            try:
                response = yield from super().respond(query, source)
            except DnsError:
                response = query.make_response(Rcode.SERVFAIL)
        response.attach_cache_lookup(result.rdata, RRClass.RESPONSE)
        return response

    class _FlagResult:
        def __init__(self, rdata: CacheLookupRdata, all_hit: bool) -> None:
            self.rdata = rdata
            self.all_hit = all_hit

    def _build_flags(self, lookup: CacheLookupRdata,
                     domain: DomainName) -> "_FlagResult":
        """Flags for every requested hash, plus every cached same-domain
        URL the client did not ask about (per-domain batching)."""
        now = self.sim.now
        rdata = CacheLookupRdata()
        requested = set()
        all_hit = len(lookup) > 0
        for entry in lookup:
            requested.add(entry.url_hash)
            flag = self._flag_for_hash(entry.url_hash, now)
            if flag != CacheFlag.CACHE_HIT:
                all_hit = False
            rdata.add(entry.url_hash, flag)
        for cached in self.store.entries():
            if cached.is_expired(now):
                continue
            url = Url.parse(cached.url)
            if url.domain != domain:
                continue
            cached_hash = hash_url(url.base)
            if cached_hash not in requested:
                rdata.add(cached_hash, CacheFlag.CACHE_HIT)
        return self._FlagResult(rdata, all_hit)

    def _flag_for_hash(self, url_hash: bytes, now: float) -> CacheFlag:
        if self.blocklist.is_blocked_hash(url_hash):
            return CacheFlag.CACHE_MISS
        url = self._url_by_hash.get(url_hash)
        if url is not None:
            entry = self.store.peek(url)
            if entry is not None and not entry.is_expired(now):
                return CacheFlag.CACHE_HIT
        # Unknown hash, or known-but-expired: the AP offers to delegate.
        return CacheFlag.DELEGATION

    # ------------------------------------------------------------------
    # HTTP endpoint: cache fetch + delegation
    # ------------------------------------------------------------------
    def _handle_http(self, request: object, source: IPv4Address,
                     ) -> _t.Generator[object, object, HttpResponse]:
        if not isinstance(request, HttpRequest):
            raise HttpError(f"AP got a {type(request).__name__}")
        yield self.node.occupy_cpu(self.config.http_service_time_s)
        mode = request.header(APE_MODE_HEADER)
        app_id = request.header(APE_APP_HEADER, "unknown-app")
        self.tracker.observe(app_id, self.sim.now)
        self._t_http.inc(mode=mode or "unknown", app=app_id)
        link = parse_trace_parent(request.header(APE_TRACE_HEADER))
        with self.telemetry.span("ap.request", parent=link,
                                 mode=mode or "unknown",
                                 app=app_id) as span:
            if mode == "fetch":
                response = yield from self._serve_fetch(
                    request, app_id, parent=span)
            elif mode == "delegate":
                response = yield from self._serve_delegation(
                    request, app_id, parent=span)
            else:
                raise HttpError(f"unknown APE mode {mode!r}")
            span.set_attr("served_from",
                          response.header(SERVED_FROM_HEADER, "none"))
        return response

    def _count_cache_hit(self) -> None:
        """Single owner of the hit counter.

        Both serving paths (fetch and delegation) count hits through
        this synchronous helper; keeping the write out of the process
        generators themselves means no scheduler interleaving can sit
        between the read and the increment (SIM101).
        """
        self.hits_served += 1

    def _serve_fetch(self, request: HttpRequest, app_id: str,
                     parent: ParentLike = None,
                     ) -> _t.Generator[object, object, HttpResponse]:
        entry = self.store.get(request.url.base, self.sim.now)
        if entry is not None:
            self._count_cache_hit()
            return HttpResponse(status=200, body=entry.data_object,
                                headers={SERVED_FROM_HEADER: "cache"})
        # The client's flag table was stale; behave like a delegation so
        # the request still succeeds in one round trip.
        self.stale_fetches += 1
        response = yield from self._serve_delegation(request, app_id,
                                                     parent=parent)
        return response

    def _serve_delegation(self, request: HttpRequest, app_id: str,
                          parent: ParentLike = None,
                          ) -> _t.Generator[object, object, HttpResponse]:
        self.delegations += 1
        base = request.url.base
        entry = self.store.get(base, self.sim.now)
        if entry is not None:
            # Someone else delegated this URL first; serve the copy.
            self._count_cache_hit()
            return HttpResponse(status=200, body=entry.data_object,
                                headers={SERVED_FROM_HEADER: "cache"})

        encoded_hints = request.header(PREFETCH_HEADER)
        if encoded_hints and self.config.enable_prefetch:
            self.sim.process(self._prefetch(decode_hints(encoded_hints),
                                            app_id))

        # Coalesce onto an in-flight fetch (another client's delegation
        # or a prefetch) instead of hitting the edge twice.
        pending = self._inflight.get(base)
        if pending is not None:
            self.coalesced_fetches += 1
            yield pending
            entry = self.store.get(base, self.sim.now)
            if entry is not None:
                return HttpResponse(status=200, body=entry.data_object,
                                    headers={SERVED_FROM_HEADER: "edge"})

        ttl_s = float(request.header(APE_TTL_HEADER, "600"))
        priority = int(request.header(APE_PRIORITY_HEADER, "1"))
        response = yield from self._fetch_admit_coalesced(
            request, app_id, priority, ttl_s, parent=parent)
        return response

    def _fetch_admit_coalesced(self, request: HttpRequest, app_id: str,
                               priority: int, ttl_s: float,
                               parent: ParentLike = None,
                               ) -> _t.Generator[object, object,
                                                 HttpResponse]:
        """Fetch from the edge, cache the result, publish completion."""
        base = request.url.base
        gate = self.sim.event()
        self._inflight[base] = gate
        try:
            response = yield from self._fetch_from_edge(request,
                                                        parent=parent)
            if not response.ok or response.body is None:
                return response
            data_object = response.body
            if self.blocklist.should_block(data_object.size_bytes):
                self.blocklist.block(base)
                self.blocked_objects += 1
                return response
            yield from self._admit(data_object, app_id, priority, ttl_s,
                                   fetch_latency_s=self._last_edge_latency,
                                   parent=parent)
            return response
        finally:
            if self._inflight.get(base) is gate:
                del self._inflight[base]
            gate.succeed()

    def _prefetch(self, hints: list[PrefetchHint], app_id: str,
                  ) -> _t.Generator[object, object, None]:
        """Fetch-and-cache hinted dependents off the critical path.

        Hinted objects fetch concurrently (one process each), skipping
        anything cached, blocked, or already in flight.
        """
        processes = []
        for hint in hints:
            if self.store.get(hint.url, self.sim.now) is not None:
                continue
            if self.blocklist.is_blocked(hint.url):
                continue
            if hint.url in self._inflight:
                continue
            self.prefetches += 1
            processes.append(self.sim.process(
                self._prefetch_one(hint, app_id)))
        if processes:
            yield self.sim.all_of(processes)

    def _prefetch_one(self, hint: PrefetchHint, app_id: str,
                      ) -> _t.Generator[object, object, None]:
        yield self.node.occupy_cpu(self.config.http_service_time_s)
        try:
            yield from self._fetch_admit_coalesced(
                HttpRequest(Url.parse(hint.url)), app_id,
                hint.priority, hint.ttl_s)
        except (DnsError, HttpError):
            # Prefetching is best-effort: upstream failures are not
            # allowed to take the AP daemon down.
            pass

    def _fetch_from_edge(self, request: HttpRequest,
                         parent: ParentLike = None,
                         ) -> _t.Generator[object, object, HttpResponse]:
        """Resolve the object's domain and fetch it from the edge tier."""
        self.edge_fetches += 1
        domain = request.url.domain
        with self.telemetry.span("ap.edge_fetch", parent=parent,
                                 url=request.url.base):
            address = yield from self._resolve_for_delegation(domain)
            started = self.sim.now
            outbound = HttpRequest(request.url, headers={
                key: value for key, value in request.headers.items()
                if not key.startswith("x-ape-")})
            response = yield self.sim.process(self.transport.tcp_exchange(
                self.node.name, address, TCP_HTTP_PORT, outbound))
            self._last_edge_latency = self.sim.now - started
        self._h_edge_fetch.observe(self._last_edge_latency * 1e3)
        return _t.cast(HttpResponse, response)

    _last_edge_latency: float = 0.0

    def _resolve_for_delegation(self, domain: DomainName,
                                ) -> _t.Generator[object, object,
                                                  IPv4Address]:
        cached = self.cached_answers(domain, RRType.A)
        records = cached
        if records is None:
            upstream_response = yield from self.forward(
                Message.query(domain, RRType.A))
            if upstream_response.header.rcode != Rcode.NOERROR:
                raise DnsError(
                    f"cannot resolve {domain} for delegation "
                    f"({upstream_response.header.rcode.name})")
            records = upstream_response.answers
        for record in records:
            if record.rtype == RRType.A:
                return _t.cast(IPv4Address, record.rdata)
        raise DnsError(f"no A record for {domain}")

    def _admit(self, data_object: DataObject, app_id: str, priority: int,
               ttl_s: float, fetch_latency_s: float,
               parent: ParentLike = None,
               ) -> _t.Generator[object, object, None]:
        now = self.sim.now
        entry = CacheEntry(
            data_object=data_object,
            app_id=app_id, priority=priority, stored_at=now,
            expires_at=now + ttl_s,
            fetch_latency_s=max(fetch_latency_s, 0.0))
        with self.telemetry.span("ap.pacm_admit", parent=parent,
                                 app=app_id) as span:
            if entry.size_bytes > self.store.free_bytes:
                # Victim selection is the expensive PACM step.
                self.pacm_runs += 1
                yield self.node.occupy_cpu(self.config.pacm_cpu_s)
            admission = self.store.admit(entry, self.policy, now)
            span.set_attr("admitted", admission.admitted)
            span.set_attr("evicted", len(admission.evicted))
        self._url_by_hash[hash_url(entry.url)] = entry.url
        if self.tracer is not None:
            self.tracer.log("admission", "object cached",
                            url=entry.url, bytes=entry.size_bytes,
                            evicted=len(admission.evicted),
                            used=self.store.used_bytes)
            for victim in admission.evicted:
                self.tracer.log("eviction", "object evicted",
                                url=victim.url, app=victim.app_id,
                                priority=victim.priority)

    # ------------------------------------------------------------------
    # Introspection used by experiments
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Extra AP memory attributable to APE-CACHE right now.

        Cached payload bytes plus per-entry/table overheads; used by the
        Fig. 14 resource model.
        """
        per_entry_overhead = 96
        per_hash_overhead = 56
        return (self.store.used_bytes +
                len(self.store) * per_entry_overhead +
                len(self._url_by_hash) * per_hash_overhead +
                len(self.blocklist) * per_hash_overhead)
