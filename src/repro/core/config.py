"""Configuration shared by the APE-CACHE runtimes.

Defaults mirror the paper's reference implementation: 5 MB of AP cache
memory, a 500 KB block-list threshold, EWMA alpha 0.7, and fairness
threshold theta 0.4.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigError
from repro.engine.api import MINUTE, MS

__all__ = ["ApeCacheConfig"]

KB = 1024
MB = 1024 * 1024


@dataclasses.dataclass
class ApeCacheConfig:
    """Tunables of the AP and client runtimes."""

    #: AP cache memory budget (paper evaluation: 5 MB).
    cache_capacity_bytes: int = 5 * MB
    #: Objects above this size are never cached (paper: 500 KB).
    blocklist_threshold_bytes: int = 500 * KB
    #: PACM fairness threshold theta (paper: 0.4).
    fairness_threshold: float = 0.4
    #: EWMA weight alpha for request frequencies (paper: 0.7).
    frequency_alpha: float = 0.7
    #: Recalculation window for request frequencies.
    frequency_window_s: float = MINUTE
    #: CPU cost on the AP per DNS-Cache query beyond a plain DNS query.
    dns_cache_extra_cpu_s: float = 0.02 * MS
    #: CPU cost on the AP per plain DNS query.
    dns_service_time_s: float = 0.2 * MS
    #: CPU cost on the AP per HTTP request it serves or delegates.
    http_service_time_s: float = 0.5 * MS
    #: CPU cost of one PACM run.
    pacm_cpu_s: float = 0.8 * MS
    #: TTL attached to DNS answers the AP fabricates for dummy replies.
    dummy_answer_ttl_s: int = 0
    #: Knapsack size quantization.
    knapsack_granularity: int = 4096
    #: Whether the AP skips upstream DNS resolution (returning a dummy
    #: IP, TTL 0) when every looked-up URL is cached.  On in the paper;
    #: exposed for the ablation benchmarks.
    enable_dummy_ip_short_circuit: bool = True
    #: Dependency-aware prefetching after delegations (the APPx-synergy
    #: extension from the paper's related-work discussion).  Off by
    #: default: the paper's AP "only sends a request to the remote
    #: server when triggered by the client".
    enable_prefetch: bool = False

    def __post_init__(self) -> None:
        if self.cache_capacity_bytes <= 0:
            raise ConfigError("cache capacity must be positive")
        if self.blocklist_threshold_bytes <= 0:
            raise ConfigError("block-list threshold must be positive")
        if not 0.0 <= self.fairness_threshold <= 1.0:
            raise ConfigError("fairness threshold must be in [0, 1]")
        if not 0.0 < self.frequency_alpha <= 1.0:
            raise ConfigError("frequency alpha must be in (0, 1]")
        for field_name in ("dns_cache_extra_cpu_s", "dns_service_time_s",
                           "http_service_time_s", "pacm_cpu_s"):
            if getattr(self, field_name) < 0:
                raise ConfigError(f"{field_name} must be non-negative")
