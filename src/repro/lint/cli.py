"""Command-line entry point: ``python -m repro.lint [paths]``.

Exit codes: 0 — clean (baselined findings allowed); 1 — fresh findings;
2 — usage or configuration error.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import typing as _t

from repro.errors import ConfigError
from repro.lint.baseline import (load_baseline, split_by_baseline,
                                 write_baseline)
from repro.lint.config import load_config
from repro.lint.engine import lint_paths
from repro.lint.findings import Finding
from repro.lint.registry import all_checkers

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=("AST-based determinism & simulation-safety linter "
                     "for the APE-CACHE reproduction."))
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (default: the "
                             "[tool.repro-lint] paths, i.e. src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")
    parser.add_argument("--baseline", default=None,
                        help="baseline file (default: from pyproject)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline; report everything")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings as the new baseline "
                             "and exit 0")
    parser.add_argument("--list-checkers", action="store_true",
                        help="list registered checkers and exit")
    return parser


def _print_text(fresh: _t.Sequence[Finding],
                baselined: _t.Sequence[Finding],
                stream: _t.TextIO) -> None:
    for finding in fresh:
        print(finding.render(), file=stream)
    if fresh:
        counts: dict[str, int] = {}
        for finding in fresh:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        summary = ", ".join(f"{code}: {count}"
                            for code, count in sorted(counts.items()))
        print(f"\n{len(fresh)} finding(s) ({summary})", file=stream)
    else:
        print("clean", file=stream)
    if baselined:
        print(f"({len(baselined)} baselined finding(s) not shown; "
              f"see the baseline file)", file=stream)


def _print_json(fresh: _t.Sequence[Finding],
                baselined: _t.Sequence[Finding],
                stream: _t.TextIO) -> None:
    document = {
        "findings": [finding.to_dict() for finding in fresh],
        "baselined": [finding.to_dict() for finding in baselined],
    }
    json.dump(document, stream, indent=2)
    stream.write("\n")


def main(argv: _t.Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_checkers:
        for checker_class in all_checkers():
            print(f"{checker_class.code}  {checker_class.description}")
        return 0

    try:
        config = load_config(pathlib.Path.cwd())
        paths = [pathlib.Path(p) for p in args.paths] \
            or [config.root / p for p in config.paths]
        findings = lint_paths(paths, config)
    except (ConfigError, FileNotFoundError) as exc:
        print(f"repro.lint: error: {exc}", file=sys.stderr)
        return 2

    baseline_path = pathlib.Path(args.baseline) if args.baseline \
        else config.baseline_path()

    if args.write_baseline:
        write_baseline(baseline_path, findings)
        print(f"wrote {len(findings)} finding(s) to {baseline_path}",
              file=sys.stderr)
        return 0

    try:
        baseline = set() if args.no_baseline \
            else load_baseline(baseline_path)
    except ConfigError as exc:
        print(f"repro.lint: error: {exc}", file=sys.stderr)
        return 2
    fresh, baselined = split_by_baseline(findings, baseline)

    if args.format == "json":
        _print_json(fresh, baselined, sys.stdout)
    else:
        _print_text(fresh, baselined, sys.stdout)
    return 1 if fresh else 0
