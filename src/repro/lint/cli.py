"""Command-line entry point: ``python -m repro.lint [paths]``.

Exit codes: 0 — clean (baselined findings allowed); 1 — fresh findings;
2 — usage or configuration error.

Beyond plain linting the CLI exposes the whole-program layer:

* ``--fix`` applies every machine-applicable repair carried by the
  findings (seed injection, ``list.pop(0)`` → ``deque``, ``sorted()``
  wrappers), then re-lints so the report reflects the repaired tree —
  fixes are idempotent, so a second ``--fix`` run is a no-op;
* ``--stats`` prints deterministic JSON describing the run: per-checker
  finding counts, call-graph size, taint-fixpoint rounds, cache
  hits/misses (add ``--timings`` for wall-clock seconds, which are by
  nature not deterministic);
* the incremental summary cache (``[tool.repro-lint] program-cache``)
  is read and written by default; ``--no-cache`` forces a cold build.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import typing as _t

from repro.errors import ConfigError
from repro.lint.baseline import (load_baseline, split_by_baseline,
                                 write_baseline)
from repro.lint.config import LintConfig, load_config
from repro.lint.engine import (iter_python_files, lint_file,
                               program_findings)
from repro.lint.findings import Finding
from repro.lint.fixes import fix_source
from repro.lint.registry import all_checkers, all_program_checkers
from repro.perf import perf_timer

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=("AST-based determinism & simulation-safety linter "
                     "for the APE-CACHE reproduction."))
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (default: the "
                             "[tool.repro-lint] paths, i.e. src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")
    parser.add_argument("--baseline", default=None,
                        help="baseline file (default: from pyproject)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline; report everything")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings as the new baseline "
                             "and exit 0")
    parser.add_argument("--fix", action="store_true",
                        help="apply machine-applicable fixes, then "
                             "re-lint and report what remains")
    parser.add_argument("--stats", action="store_true",
                        help="print run statistics as JSON and exit 0")
    parser.add_argument("--timings", action="store_true",
                        help="include wall-clock timings in --stats "
                             "output (not deterministic)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore the incremental program-summary "
                             "cache; build cold and do not write it")
    parser.add_argument("--list-checkers", action="store_true",
                        help="list registered checkers and exit")
    return parser


def _print_text(fresh: _t.Sequence[Finding],
                baselined: _t.Sequence[Finding],
                stream: _t.TextIO) -> None:
    for finding in fresh:
        print(finding.render(), file=stream)
    if fresh:
        counts: dict[str, int] = {}
        for finding in fresh:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        summary = ", ".join(f"{code}: {count}"
                            for code, count in sorted(counts.items()))
        print(f"\n{len(fresh)} finding(s) ({summary})", file=stream)
    else:
        print("clean", file=stream)
    if baselined:
        print(f"({len(baselined)} baselined finding(s) not shown; "
              f"see the baseline file)", file=stream)


def _print_json(fresh: _t.Sequence[Finding],
                baselined: _t.Sequence[Finding],
                stream: _t.TextIO) -> None:
    document = {
        "findings": [finding.to_dict() for finding in fresh],
        "baselined": [finding.to_dict() for finding in baselined],
    }
    json.dump(document, stream, indent=2)
    stream.write("\n")


def _collect(paths: _t.Sequence[pathlib.Path], config: LintConfig,
             cache: "_t.Any") -> tuple[list[Finding], _t.Any, _t.Any]:
    """One full run: per-file + program findings over ``paths``."""
    files = list(iter_python_files(paths, config))
    findings: list[Finding] = []
    for file_path in files:
        findings.extend(lint_file(file_path, config))
    extra, program, stats = program_findings(files, config, cache)
    findings.extend(extra)
    return sorted(set(findings)), program, stats


def _apply_fixes(findings: _t.Sequence[Finding],
                 config: LintConfig) -> tuple[int, int]:
    """Rewrite files in place; returns (fixes applied, files touched)."""
    by_path: dict[str, list[Finding]] = {}
    for finding in findings:
        if finding.fix is not None:
            by_path.setdefault(finding.path, []).append(finding)
    applied = 0
    touched = 0
    for relpath in sorted(by_path):
        target = config.root / relpath
        try:
            source = target.read_text(encoding="utf-8")
        except OSError:  # pragma: no cover - race with deletion
            continue
        new_source, done = fix_source(source, by_path[relpath])
        if done and new_source != source:
            target.write_text(new_source, encoding="utf-8")
            applied += len(done)
            touched += 1
    return applied, touched


def _write_effects_manifest(program: _t.Any,
                            config: LintConfig) -> pathlib.Path:
    """Emit the deterministic effects manifest the memo cache consumes."""
    from repro.lint.program.effects import effects_manifest

    manifest_path = config.effects_manifest_path()
    manifest_path.parent.mkdir(parents=True, exist_ok=True)
    document = effects_manifest(program)
    manifest_path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    return manifest_path


def _stats_document(findings: _t.Sequence[Finding], program: _t.Any,
                    build_stats: _t.Any, cache_used: bool,
                    timings: dict[str, float] | None,
                    ) -> dict[str, _t.Any]:
    from repro.lint.program.asyncsafety import async_stats
    from repro.lint.program.effects import effects_result
    from repro.lint.program.taint import taint_result

    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    taint = taint_result(program)
    effects = effects_result(program)
    document: dict[str, _t.Any] = {
        "files": build_stats.files,
        "cache": {
            "enabled": cache_used,
            "hits": build_stats.cache_hits,
            "misses": build_stats.cache_misses,
        },
        "program": {
            "functions": program.function_count(),
            "call_edges": program.edge_count(),
            "process_generators": len(program.process_generators()),
        },
        "taint": {
            "tokens": taint.tokens,
            "sink_hits": len(taint.hits),
            "fixpoint_rounds": taint.rounds,
        },
        "async": async_stats(program),
        "effects": {
            "functions": len(effects.functions),
            "certified": effects.certified_count(),
            "fixpoint_rounds": effects.rounds,
            "levels": effects.level_counts(),
            "mutated_globals": sorted(effects.mutated_globals),
        },
        "findings": {code: counts[code] for code in sorted(counts)},
    }
    if timings is not None:
        document["timings"] = timings
    return document


def main(argv: _t.Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_checkers:
        for checker_class in all_checkers():
            print(f"{checker_class.code}  {checker_class.description}")
        for program_class in all_program_checkers():
            print(f"{program_class.code}  {program_class.description}")
        return 0

    from repro.lint.program.cache import (SummaryCache, load_cache,
                                          save_cache)

    try:
        config = load_config(pathlib.Path.cwd())
        paths = [pathlib.Path(p) for p in args.paths] \
            or [config.root / p for p in config.paths]
        cache: SummaryCache | None = None
        if not args.no_cache:
            cache = load_cache(config.program_cache_path())
        stopwatch = perf_timer()
        findings, program, build_stats = _collect(paths, config, cache)
    except (ConfigError, FileNotFoundError) as exc:
        print(f"repro.lint: error: {exc}", file=sys.stderr)
        return 2

    baseline_path = pathlib.Path(args.baseline) if args.baseline \
        else config.baseline_path()

    if args.write_baseline:
        write_baseline(baseline_path, findings)
        print(f"wrote {len(findings)} finding(s) to {baseline_path}",
              file=sys.stderr)
        return 0

    try:
        baseline = set() if args.no_baseline \
            else load_baseline(baseline_path)
    except ConfigError as exc:
        print(f"repro.lint: error: {exc}", file=sys.stderr)
        return 2
    fresh, baselined = split_by_baseline(findings, baseline)

    if args.fix:
        applied, touched = _apply_fixes(fresh, config)
        print(f"applied {applied} fix(es) in {touched} file(s)",
              file=sys.stderr)
        if touched:
            # Re-lint so the report (and exit code) reflect the
            # repaired tree; fixes are idempotent so this converges.
            findings, program, build_stats = _collect(
                paths, config, cache)
            fresh, baselined = split_by_baseline(findings, baseline)

    if cache is not None:
        save_cache(config.program_cache_path(), cache)

    # The effect manifest is a build artifact of every lint run: the
    # sweep memo layer refuses to serve cached cells without a manifest
    # that matches the sources on disk.
    _write_effects_manifest(program, config)

    if args.stats:
        timings = {"lint_s": round(stopwatch(), 3)} \
            if args.timings else None
        json.dump(_stats_document(findings, program, build_stats,
                                  cache is not None, timings),
                  sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0

    if args.format == "json":
        _print_json(fresh, baselined, sys.stdout)
    else:
        _print_text(fresh, baselined, sys.stdout)
    return 1 if fresh else 0
