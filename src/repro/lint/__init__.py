"""``repro.lint`` — an AST-based determinism & simulation-safety linter.

The APE-CACHE reproduction's headline guarantee is that every experiment
is a *deterministic* discrete-event simulation: the PACM hit-rate tables
(Tables IV-VI) and the latency CDFs (Figs. 11/13) must come out
bit-identical for a given ``--seed``.  Nothing in the Python language
enforces that, so this package does: a small, pluggable static analyzer
that walks the AST of every source file and reports repo-specific
violations — unseeded RNGs, wall-clock reads, iteration-order hazards,
blocking calls inside simulation processes, float equality against
simulated time, and out-of-range ``@cacheable`` declarations.

Run it as a module::

    python -m repro.lint src           # human output, exit 1 on findings
    python -m repro.lint --format json src
    python -m repro.lint --write-baseline src

See ``docs/linting.md`` for the checker catalogue, the suppression
syntax (``# lint: disable=CODE``), and the baseline workflow.
"""

from __future__ import annotations

from repro.lint.config import LintConfig, load_config
from repro.lint.engine import lint_file, lint_paths
from repro.lint.findings import Finding
from repro.lint.registry import Checker, all_checkers, register

__all__ = [
    "Checker",
    "Finding",
    "LintConfig",
    "all_checkers",
    "lint_file",
    "lint_paths",
    "load_config",
    "register",
]
