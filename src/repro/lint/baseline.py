"""The committed findings baseline.

A baseline is the linter's grandfather clause: findings recorded in it
are *known and accepted* (reported as "baselined", exit code stays 0);
anything not in it fails the run.  This lets a new checker land with
strict enforcement for new code while existing, intentional cases are
reviewed once and committed — the same model ruff's ``--add-noqa`` and
mypy's ``--txt-report`` baselines use.

The file is JSON (sorted, newline-terminated) so diffs are reviewable::

    {
      "version": 1,
      "findings": [
        {"path": "src/repro/x.py", "code": "DET003", "line": 42,
         "message": "..."}
      ]
    }

Matching is by ``(path, code, line)``; the message is stored only for
the human reading the diff.  After a refactor shifts lines, regenerate
with ``python -m repro.lint --write-baseline`` and review the diff.
"""

from __future__ import annotations

import json
import pathlib
import typing as _t

from repro.errors import ConfigError
from repro.lint.findings import Finding

__all__ = ["load_baseline", "write_baseline", "split_by_baseline"]

_VERSION = 1


def load_baseline(path: pathlib.Path) -> set[tuple[str, str, int]]:
    """Baseline keys from ``path``; empty set if the file doesn't exist."""
    if not path.is_file():
        return set()
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigError(f"baseline {path} is not valid JSON: {exc}") \
            from exc
    if document.get("version") != _VERSION:
        raise ConfigError(
            f"baseline {path} has version {document.get('version')!r}; "
            f"this linter understands version {_VERSION}")
    keys = set()
    for entry in document.get("findings", []):
        try:
            keys.add((str(entry["path"]), str(entry["code"]),
                      int(entry["line"])))
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(
                f"malformed baseline entry in {path}: {entry!r}") from exc
    return keys


def write_baseline(path: pathlib.Path,
                   findings: _t.Iterable[Finding]) -> None:
    """Write (sorted, deduplicated) ``findings`` as the new baseline."""
    entries = sorted(
        {finding.baseline_key(): finding for finding in findings}.values())
    document = {
        "version": _VERSION,
        "findings": [
            {"path": finding.path, "code": finding.code,
             "line": finding.line, "message": finding.message}
            for finding in entries
        ],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2) + "\n")


def split_by_baseline(findings: _t.Sequence[Finding],
                      baseline: set[tuple[str, str, int]],
                      ) -> tuple[list[Finding], list[Finding]]:
    """Partition into (fresh, baselined) preserving order."""
    fresh: list[Finding] = []
    grandfathered: list[Finding] = []
    for finding in findings:
        if finding.baseline_key() in baseline:
            grandfathered.append(finding)
        else:
            fresh.append(finding)
    return fresh, grandfathered
