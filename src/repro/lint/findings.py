"""The :class:`Finding` record every checker emits.

A finding pins a checker code to an exact source location.  Findings are
value objects: they sort by location (so reports are stable regardless
of checker execution order) and reduce to a *baseline key* — the
``(path, code, line)`` triple used to match grandfathered findings in
the committed baseline file.

Whole-program findings (DET101/DET102/SIM101) additionally carry a
``trace``: the ordered source→sink (or write→write) path the analysis
followed, each step a ``(path, line, note)`` triple.  Traces are
evidence, not identity — they are rendered and exported but excluded
from the baseline key, so a refactor that re-routes a flow without
fixing it still matches its baseline entry.

Findings may also carry a :class:`~repro.lint.fixes.Fix` — a set of
precise span rewrites ``python -m repro.lint --fix`` can apply.  The
fix is excluded from equality/ordering so two findings describing the
same defect dedupe even if their machine-applicable repairs differ.
"""

from __future__ import annotations

import dataclasses
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.fixes import Fix

__all__ = ["Finding", "TraceStep"]


@dataclasses.dataclass(frozen=True, order=True)
class TraceStep:
    """One hop of a whole-program source→sink trace."""

    path: str
    line: int
    note: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.note}"

    def to_dict(self) -> dict[str, _t.Any]:
        return {"path": self.path, "line": self.line, "note": self.note}


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is stored repo-relative with POSIX separators so reports
    and baselines are portable across checkouts and operating systems.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    #: Source→sink evidence for inter-procedural findings; empty for
    #: single-site findings.
    trace: tuple[TraceStep, ...] = ()
    #: Machine-applicable repair, if the checker can offer one.
    fix: "Fix | None" = dataclasses.field(
        default=None, compare=False, hash=False)

    def baseline_key(self) -> tuple[str, str, int]:
        """The identity used for baseline matching (column-insensitive)."""
        return (self.path, self.code, self.line)

    def render(self) -> str:
        """``path:line:col: CODE message`` — the human/grep-able form.

        Traced findings append one indented line per hop.
        """
        head = f"{self.path}:{self.line}:{self.col}: " \
               f"{self.code} {self.message}"
        if not self.trace:
            return head
        steps = "\n".join(f"    {step.render()}" for step in self.trace)
        return f"{head}\n{steps}"

    def to_dict(self) -> dict[str, _t.Any]:
        """JSON-ready representation (``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "trace": [step.to_dict() for step in self.trace],
        }
