"""The :class:`Finding` record every checker emits.

A finding pins a checker code to an exact source location.  Findings are
value objects: they sort by location (so reports are stable regardless
of checker execution order) and reduce to a *baseline key* — the
``(path, code, line)`` triple used to match grandfathered findings in
the committed baseline file.
"""

from __future__ import annotations

import dataclasses
import typing as _t

__all__ = ["Finding"]


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is stored repo-relative with POSIX separators so reports
    and baselines are portable across checkouts and operating systems.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def baseline_key(self) -> tuple[str, str, int]:
        """The identity used for baseline matching (column-insensitive)."""
        return (self.path, self.code, self.line)

    def render(self) -> str:
        """``path:line:col: CODE message`` — the human/grep-able form."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict[str, _t.Any]:
        """JSON-ready representation (``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }
