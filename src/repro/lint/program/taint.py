"""Inter-procedural determinism taint (the DET101/DET102 engine).

A *token* identifies one nondeterminism source occurrence — an unseeded
RNG construction, a wall-clock read, an OS-entropy draw, or a raw
dict/set iteration — by kind and location.  The fixpoint is
**summary-based and context-sensitive**: for every function it computes
transfer facts

* ``SR``  — tokens born inside the function (or its callees) that
  reach its return value,
* ``P2R`` — parameters whose value reaches the return value,
* ``P2S`` — parameters whose value reaches some sink (possibly in a
  transitive callee),

and applies callee summaries *at each call site*.  Taint entering a
callee from one caller can therefore never leak out into a different
caller — the classic false-positive mode of a global return-taint set.

``sorted(...)`` is modeled as a laundering pseudo-call: order tokens
stop there (sorting makes iteration order part of the data), while
randomness and clock taint pass through.  Parameter summaries crossing
a ``sorted()`` carry a ``drops_order`` flag so the laundering applies
even when the sort happens in a callee.

Traces are *first-wins*: once a token reaches a slot its trace is
frozen, which guarantees termination (every token enters every slot at
most once) and keeps the reported path minimal.  Everything iterates in
sorted order, so findings and traces are deterministic.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.lint.findings import TraceStep
from repro.lint.program.extract import SORTED_REF
from repro.lint.program.model import (Dest, FunctionSummary, Origin,
                                      Program, SinkRec)

__all__ = ["Token", "SinkHit", "TaintResult", "taint_result"]

#: ``(kind, path, line, col, detail)`` — one source occurrence.
Token = _t.Tuple[str, str, int, int, str]

Trace = _t.Tuple[TraceStep, ...]

#: A parameter transfer fact: the steps taken inside the callee plus
#: whether the path crossed a ``sorted()`` (laundering order tokens).
_ParamFact = _t.Tuple[Trace, bool]


@dataclasses.dataclass(frozen=True, order=True)
class SinkHit:
    """One token observed reaching one sink, with its witness trace."""

    token: Token
    #: Qualified name of the function containing the sink.
    function: str
    sink: SinkRec
    trace: Trace


@dataclasses.dataclass
class TaintResult:
    """Fixpoint output shared by the DET101/DET102 passes."""

    hits: list[SinkHit]
    #: Number of full passes until the fixpoint stabilized.
    rounds: int
    #: Total distinct source tokens seen.
    tokens: int


def taint_result(program: Program) -> TaintResult:
    """The (memoized) taint fixpoint for ``program``."""
    cached = program.analysis_cache.get("taint")
    if isinstance(cached, TaintResult):
        return cached
    result = _Fixpoint(program).run()
    program.analysis_cache["taint"] = result
    return result


@dataclasses.dataclass
class _Value:
    """Abstract value of one origin: concrete tokens plus parameters."""

    tokens: dict[Token, Trace] = dataclasses.field(default_factory=dict)
    params: dict[int, _ParamFact] = dataclasses.field(
        default_factory=dict)

    def add_token(self, token: Token, trace: Trace) -> None:
        self.tokens.setdefault(token, trace)

    def add_param(self, index: int, fact: _ParamFact) -> None:
        current = self.params.get(index)
        # Prefer the non-laundering fact: it lets more tokens through,
        # and the flag can only ever flip True→False, so this stays
        # monotone.
        if current is None or (current[1] and not fact[1]):
            self.params[index] = fact


class _Fixpoint:
    def __init__(self, program: Program) -> None:
        self.program = program
        #: function → token → trace reaching the return value.
        self.source_to_return: dict[str, dict[Token, Trace]] = {}
        #: function → param index → transfer fact to the return value.
        self.param_to_return: dict[str, dict[int, _ParamFact]] = {}
        #: function → param index → (sink function, sink) → fact whose
        #: trace ends at the sink step.
        self.param_to_sink: dict[
            str, dict[int, dict[tuple[str, SinkRec], _ParamFact]]] = {}
        #: (token, sink function, sink) → witness trace.
        self.hits: dict[tuple[Token, str, SinkRec], Trace] = {}
        self.tokens: set[Token] = set()
        self.changed = False

    # -- merge helpers (first trace wins; sets ``changed``) -------------
    def _merge_sr(self, function: str, token: Token,
                  trace: Trace) -> None:
        slot = self.source_to_return.setdefault(function, {})
        if token not in slot:
            slot[token] = trace
            self.changed = True

    def _merge_p2r(self, function: str, index: int,
                   fact: _ParamFact) -> None:
        slot = self.param_to_return.setdefault(function, {})
        current = slot.get(index)
        if current is None or (current[1] and not fact[1]):
            slot[index] = fact
            self.changed = True

    def _merge_p2s(self, function: str, index: int, sink_function: str,
                   sink: SinkRec, fact: _ParamFact) -> None:
        slot = self.param_to_sink.setdefault(
            function, {}).setdefault(index, {})
        current = slot.get((sink_function, sink))
        if current is None or (current[1] and not fact[1]):
            slot[(sink_function, sink)] = fact
            self.changed = True

    def _merge_hit(self, token: Token, function: str, sink: SinkRec,
                   trace: Trace) -> None:
        key = (token, function, sink)
        if key not in self.hits:
            self.hits[key] = trace
            self.changed = True

    # -- call-site helpers ----------------------------------------------
    def _callee(self, summary: FunctionSummary,
                call_index: int) -> str | None:
        for index, callee in self.program.call_edges.get(
                summary.name, ()):
            if index == call_index:
                return callee
        return None

    @staticmethod
    def _param_index(target: FunctionSummary,
                     selector: _t.Union[str, int]) -> int | None:
        """Map an argument selector onto the callee's parameter index.

        Positional selectors shift by one when the callee is a bound
        method or constructor (its summary's parameter 0 is ``self`` /
        ``cls``, which the call site never passes explicitly).
        """
        bound = bool(target.params) and target.params[0] in ("self",
                                                             "cls")
        if isinstance(selector, int):
            index = selector + (1 if bound else 0)
            return index if 0 <= index < len(target.params) else None
        try:
            return target.params.index(selector)
        except ValueError:
            return None

    def _arg_flows(self, summary: FunctionSummary, call_index: int,
                   ) -> _t.Iterator[tuple[Origin, _t.Union[str, int]]]:
        """Origins flowing into arguments of call ``call_index``."""
        for origin, dest in summary.flows:
            if len(dest) == 3 and dest[1] == call_index \
                    and dest[0] in ("arg", "kwarg"):
                yield origin, dest[2]

    # -- abstract evaluation of one origin -------------------------------
    def _value(self, summary: FunctionSummary, origin: Origin,
               seen: frozenset[Origin]) -> _Value:
        value = _Value()
        if origin in seen:  # pragma: no cover - self-referential expr
            return value
        tag, index = origin
        if tag == "source":
            if 0 <= index < len(summary.sources):
                source = summary.sources[index]
                token: Token = (source.kind, summary.path, source.line,
                                source.col, source.detail)
                self.tokens.add(token)
                value.add_token(token, (TraceStep(
                    summary.path, source.line,
                    f"source: {source.detail}"),))
        elif tag == "param":
            value.add_param(index, ((), False))
        elif tag == "call" and 0 <= index < len(summary.calls):
            self._call_value(summary, index, seen | {origin}, value)
        return value

    def _call_value(self, summary: FunctionSummary, call_index: int,
                    seen: frozenset[Origin], value: _Value) -> None:
        """Fold the result of call ``call_index`` into ``value``."""
        call = summary.calls[call_index]
        if call.ref == SORTED_REF:
            for origin, _selector in sorted(
                    self._arg_flows(summary, call_index)):
                inner = self._value(summary, origin, seen)
                for token in sorted(inner.tokens):
                    if token[0] != "order":
                        value.add_token(token, inner.tokens[token])
                for index in sorted(inner.params):
                    trace, _drops = inner.params[index]
                    value.add_param(index, (trace, True))
            return
        callee = self._callee(summary, call_index)
        if callee is None:
            return
        target = self.program.functions[callee]
        ret_step = TraceStep(summary.path, call.line,
                             f"tainted value returned by {call.name}()")
        for token, trace in sorted(self.source_to_return.get(
                callee, {}).items()):
            value.add_token(token, trace + (ret_step,))
        returning = self.param_to_return.get(callee, {})
        if not returning:
            return
        for origin, selector in sorted(self._arg_flows(summary,
                                                       call_index)):
            position = self._param_index(target, selector)
            if position is None or position not in returning:
                continue
            inner_trace, drops = returning[position]
            enter_step = TraceStep(
                summary.path, call.line,
                f"passed into {call.name}() [{target.name} parameter "
                f"{target.params[position]!r}]")
            inner = self._value(summary, origin, seen)
            for token in sorted(inner.tokens):
                if drops and token[0] == "order":
                    continue
                value.add_token(token, inner.tokens[token]
                                + (enter_step,) + inner_trace
                                + (ret_step,))
            for index in sorted(inner.params):
                trace, drops2 = inner.params[index]
                value.add_param(index, (trace + (enter_step,)
                                        + inner_trace + (ret_step,),
                                        drops or drops2))

    # -- one evaluation of one function ----------------------------------
    def _evaluate(self, summary: FunctionSummary) -> None:
        for origin, dest in summary.flows:
            kind = dest[0]
            if kind == "return":
                value = self._value(summary, origin, frozenset())
                for token in sorted(value.tokens):
                    self._merge_sr(summary.name, token,
                                   value.tokens[token])
                for index in sorted(value.params):
                    self._merge_p2r(summary.name, index,
                                    value.params[index])
            elif kind == "sink":
                self._flow_to_sink(summary, origin, dest)
            elif kind in ("arg", "kwarg"):
                self._flow_to_arg(summary, origin, dest)

    def _flow_to_sink(self, summary: FunctionSummary, origin: Origin,
                      dest: Dest) -> None:
        sink_index = _t.cast(int, dest[1])
        if not 0 <= sink_index < len(summary.sinks):
            return
        sink = summary.sinks[sink_index]
        step = TraceStep(summary.path, sink.line,
                         f"sink: {sink.detail}")
        value = self._value(summary, origin, frozenset())
        for token in sorted(value.tokens):
            self._merge_hit(token, summary.name, sink,
                            value.tokens[token] + (step,))
        for index in sorted(value.params):
            trace, drops = value.params[index]
            self._merge_p2s(summary.name, index, summary.name, sink,
                            (trace + (step,), drops))

    def _flow_to_arg(self, summary: FunctionSummary, origin: Origin,
                     dest: Dest) -> None:
        """Taint passed into a call whose parameter reaches a sink."""
        call_index = _t.cast(int, dest[1])
        callee = self._callee(summary, call_index)
        if callee is None:
            return
        target = self.program.functions[callee]
        position = self._param_index(target, dest[2])
        if position is None:
            return
        sinks = self.param_to_sink.get(callee, {}).get(position)
        if not sinks:
            return
        call = summary.calls[call_index]
        enter_step = TraceStep(
            summary.path, call.line,
            f"passed into {call.name}() [{target.name} parameter "
            f"{target.params[position]!r}]")
        value = self._value(summary, origin, frozenset())
        for (sink_function, sink) in sorted(
                sinks, key=lambda key: (key[0], key[1])):
            inner_trace, drops = sinks[(sink_function, sink)]
            for token in sorted(value.tokens):
                if drops and token[0] == "order":
                    continue
                self._merge_hit(token, sink_function, sink,
                                value.tokens[token] + (enter_step,)
                                + inner_trace)
            for index in sorted(value.params):
                trace, drops2 = value.params[index]
                self._merge_p2s(summary.name, index, sink_function,
                                sink, (trace + (enter_step,)
                                       + inner_trace,
                                       drops or drops2))

    def run(self) -> TaintResult:
        names = sorted(self.program.functions)
        rounds = 0
        while True:
            rounds += 1
            self.changed = False
            for name in names:
                self._evaluate(self.program.functions[name])
            if not self.changed:
                break
            if rounds > len(names) + 64:  # pragma: no cover - safety net
                break
        hits = [SinkHit(token=token, function=function, sink=sink,
                        trace=self.hits[(token, function, sink)])
                for token, function, sink in sorted(self.hits)]
        return TaintResult(hits=hits, rounds=rounds,
                           tokens=len(self.tokens))
