"""Incremental summary cache for the whole-program analysis.

The cache is a JSON document mapping repo-relative paths to the
:class:`~repro.lint.program.model.ModuleSummary` extracted from them,
keyed by the SHA-256 of the file contents.  Because the passes consume
*only* the summary (never the AST), a cache hit is indistinguishable
from a fresh extraction — which is what makes cached and cold runs
byte-identical, a property ``tools/check.sh`` asserts on every run.

A stale entry (digest mismatch), an unreadable file, or a version bump
simply falls back to re-extraction; the cache can be deleted at any
time with no effect beyond a slower next run.
"""

from __future__ import annotations

import json
import pathlib
import typing as _t

from repro.lint.program.model import ModuleSummary

__all__ = ["CACHE_VERSION", "SummaryCache", "load_cache", "save_cache"]

#: Bump when the summary schema or extraction semantics change; old
#: caches are then ignored wholesale.
CACHE_VERSION = 5  # v5: coroutine/await/task/lock facts (ASYNC/ENG)


class SummaryCache:
    """In-memory view of the on-disk cache, with hit/miss accounting."""

    def __init__(self, entries: dict[str, ModuleSummary] | None = None,
                 ) -> None:
        self._entries: dict[str, ModuleSummary] = dict(entries or {})
        self.hits = 0
        self.misses = 0

    def lookup(self, path: str, digest: str) -> ModuleSummary | None:
        """The cached summary for ``path`` iff its digest matches."""
        entry = self._entries.get(path)
        if entry is not None and entry.digest == digest:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def store(self, summary: ModuleSummary) -> None:
        self._entries[summary.path] = summary

    def prune(self, keep: _t.Iterable[str]) -> None:
        """Drop entries for files no longer part of the scan."""
        wanted = set(keep)
        for path in sorted(self._entries):
            if path not in wanted:
                del self._entries[path]

    def to_json(self) -> dict[str, object]:
        return {
            "version": CACHE_VERSION,
            "modules": {path: self._entries[path].to_json()
                        for path in sorted(self._entries)},
        }


def load_cache(path: pathlib.Path) -> SummaryCache:
    """Read the cache at ``path``; any defect yields an empty cache."""
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return SummaryCache()
    if not isinstance(document, dict) \
            or document.get("version") != CACHE_VERSION:
        return SummaryCache()
    modules = document.get("modules")
    if not isinstance(modules, dict):
        return SummaryCache()
    entries: dict[str, ModuleSummary] = {}
    try:
        for relpath in sorted(modules):
            entries[str(relpath)] = ModuleSummary.from_json(
                modules[relpath])
    except (KeyError, TypeError, ValueError, AttributeError):
        return SummaryCache()
    return SummaryCache(entries)


def save_cache(path: pathlib.Path, cache: SummaryCache) -> None:
    """Write ``cache`` to ``path`` (parents created as needed)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(cache.to_json(), indent=2, sort_keys=True)
    path.write_text(payload + "\n", encoding="utf-8")
