"""Per-file extraction: one parsed module → one :class:`ModuleSummary`.

This is the only stage that touches an AST; everything downstream (the
call-graph build, the taint fixpoint, the race detector) consumes the
serializable summary, which is what the incremental cache stores.

The local dataflow is a forward approximation: statements are processed
in order, loop bodies twice (so ``x = taint(); y = x`` chains inside a
loop converge), and branch effects are unioned rather than joined —
conservative in the direction that matters for a linter (taint is never
dropped on a path that might execute).  Known limitations, by design:
attribute stores do not carry taint across methods (DET001 flags
nondeterministic state at its construction site instead), and closures/
nested defs are summarized as separate functions without
captured-variable taint.
"""

from __future__ import annotations

import ast
import re
import typing as _t

from repro.lint.asthelpers import ImportMap
from repro.lint.checkers.determinism import WALLCLOCK_CALLS
from repro.lint.program.model import (MODULE_BODY, AllocRec, BlockRec,
                                      CallRec, Dest, EffectRec, Flow,
                                      FunctionSummary, GlobalRec,
                                      LoadRec, LockRec, ModuleSummary,
                                      Origin, SinkRec, SourceRec,
                                      SpanStartRec, TaskRec, WriteRec)

__all__ = ["extract_module", "module_name_for"]

#: Parameter/attribute names that indicate a simulator handle.
_SIM_NAMES = {"sim", "_sim", "env", "_env"}

#: Kernel event-factory method names (a generator yielding one of these
#: is a simulation process).
_EVENT_FACTORIES = {"timeout", "event", "process", "all_of", "any_of"}

#: Event classes yielded/instantiated directly.
_EVENT_CLASSES = {"Event", "Timeout", "Process", "AllOf", "AnyOf",
                  "Condition"}

#: Scheduling methods on a simulator handle — sim-visible sinks.
_SIM_SINK_METHODS = {"timeout", "all_of", "any_of", "succeed", "fail",
                     "schedule", "_schedule"}

#: Telemetry instrument methods, gated on a telemetry-ish receiver name.
_TELEMETRY_METHODS = {"inc", "observe", "set", "add", "record", "sample"}
_TELEMETRY_HINTS = ("counter", "gauge", "hist", "metric", "telemetr",
                    "span", "stat")

#: PACM utility entry points — the paper's cache-admission math.
_PACM_SINKS = {
    "repro.cache.pacm.utility_of",
    "repro.cache.pacm.select_keep_set",
}

#: OS-entropy sources (never reproducible).
_ENTROPY_CALLS = {
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbelow", "secrets.choice", "secrets.randbits",
}

#: Filesystem-enumeration calls whose result order is OS-dependent.
_FS_ORDER_CALLS = {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}

#: numpy Generator constructors — unseeded means OS-seeded.
_NUMPY_CONSTRUCTORS = {
    "default_rng", "RandomState", "SeedSequence", "Generator",
    "MT19937", "PCG64", "PCG64DXSM", "Philox", "SFC64",
}

#: Ordering-sensitive library sinks (DET102).
_ORDER_SINK_CALLS = {"heapq.heappush", "heapq.heappushpop",
                     "heapq.heapify", "json.dump", "json.dumps"}

#: Receiver mutators that fold an argument into the receiver.
_MUTATORS = {"append", "appendleft", "add", "extend", "insert", "put"}

#: Further method names the *effects* pass treats as mutating their
#: receiver (no taint folding — they may take no argument at all).
_EXTRA_MUTATORS = {"update", "setdefault", "pop", "popleft", "popitem",
                   "clear", "remove", "discard", "sort", "reverse",
                   "write", "writelines"}

#: ``heapq`` order sinks that additionally mutate their first argument.
_HEAP_MUTATING_SINKS = {"heapq.heappush", "heapq.heappushpop",
                        "heapq.heapify"}

#: Builtins with externally visible effects (console, filesystem, ...).
_IO_BUILTINS = {"print", "open", "input", "breakpoint", "exec",
                "eval", "compile", "__import__"}

#: Builtins whose calls are effect-free on their arguments.  Exception
#: constructors are matched by suffix instead (``...Error(...)``).
_PURE_BUILTINS = {
    "abs", "all", "any", "ascii", "bin", "bool", "bytearray", "bytes",
    "chr", "complex", "dict", "divmod", "enumerate", "filter", "float",
    "format", "getattr", "hash", "hex", "int", "iter", "list", "map",
    "memoryview", "next", "object", "oct", "ord", "pow", "range",
    "repr", "reversed", "round", "slice", "str", "sum", "super",
    "tuple", "zip",
}
_EXCEPTION_SUFFIXES = ("Error", "Exception", "Warning", "Interrupt",
                       "Exit", "Iteration")

#: Builtins whose result reflects the *structure* of the argument, not
#: its value or iteration order — taint of any kind stops here.  Note
#: value-preserving conversions (``int``, ``round``, ``float``) are
#: deliberately absent: ``round(rng.random(), 3)`` is still random.
_STRUCTURE_BUILTINS = {"len", "bool", "isinstance", "issubclass",
                       "hasattr", "id", "type", "callable"}

#: Pseudo callee ref for ``sorted(...)``: the taint pass lets every
#: token through it *except* order tokens (sorting makes iteration
#: order part of the data; randomness survives sorting just fine).
SORTED_REF = "<sorted>"

#: ``module:function`` runner strings (repro.runner.registry).
_RUNNER_STRING = re.compile(r"\A[A-Za-z_][\w.]*\.[\w.]*:[A-Za-z_]\w*\Z")

#: Exact loop-blocking calls (ASYNC101), path → blocking kind.
_BLOCKING_CALLS = {
    "time.sleep": "sleep",
    "os.system": "subprocess", "os.popen": "subprocess",
    "os.wait": "subprocess", "os.waitpid": "subprocess",
}

#: Loop-blocking call families by dotted-path prefix (ASYNC101).
_BLOCKING_PREFIXES = (
    ("socket.", "socket"),
    ("subprocess.", "subprocess"),
    ("requests.", "http"),
    ("urllib.request.", "http"),
)

#: Builtins that block on the filesystem/console (ASYNC101).
_BLOCKING_BUILTINS = {"open", "input"}

#: Task-spawn APIs whose dropped result is GC-vulnerable (ASYNC102):
#: the loop keeps only weak references to tasks.
_TASK_SPAWN_PATHS = {"asyncio.create_task", "asyncio.ensure_future"}
_TASK_SPAWN_ATTRS = {"create_task", "ensure_future"}

#: Receiver names treated as an asyncio event loop handle.
_LOOP_NAMES = {"loop", "_loop"}

#: Receiver names carrying engine-domain time (``.now`` on these is a
#: "simtime" token for the ENG101 time-domain lattice).
_ENGINE_NAMES = {"engine", "_engine"}

#: Wall-time sinks (ENG101): the value parameter is interpreted as a
#: host-loop-relative delay/deadline.
_WALL_SINK_PATHS = {"asyncio.sleep"}
_WALL_SINK_ATTRS = {"call_later", "call_at"}

#: Context-manager receivers that look like mutual-exclusion guards.
_LOCK_HINTS = ("lock", "mutex", "semaphore")


def _is_lockish(node: ast.expr) -> bool:
    """Does this ``with`` context expression look like a lock?"""
    expr = node
    if isinstance(expr, ast.Call):
        expr = expr.func
        if isinstance(expr, ast.Attribute) and expr.attr == "acquire":
            expr = expr.value
    tail = _attr_chain_tail(expr)
    if tail is None:
        return False
    lowered = tail.lower()
    return any(hint in lowered for hint in _LOCK_HINTS)


def _contains_await(body: _t.Sequence[ast.stmt]) -> bool:
    """Any ``await`` in these statements, outside nested functions?"""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, ast.Await):
            return True
        stack.extend(ast.iter_child_nodes(node))
    return False


def module_name_for(relpath: str) -> str:
    """Dotted module name for a repo-relative POSIX path.

    ``src/repro/sim/kernel.py`` → ``repro.sim.kernel``;
    ``pkg/__init__.py`` → ``pkg``.  A leading ``src`` component is
    dropped so names match import paths under the repo's layout.
    """
    parts = relpath.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part)


def _attr_chain_tail(node: ast.expr) -> str | None:
    """Last identifier of a Name/Attribute chain (``a.b.c`` → ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_sim_receiver(node: ast.expr) -> bool:
    """Does this expression look like a simulator handle?"""
    return _attr_chain_tail(node) in _SIM_NAMES


def _loop_assigned(node: ast.stmt) -> set[str]:
    """Every name bound anywhere inside a loop statement.

    Attribute chains rooted at one of these names are not
    loop-invariant, so PERF102 must not suggest hoisting them.
    Comprehension/lambda parameters are included: they shadow outer
    names inside expressions this walk cannot scope precisely.
    """
    assigned: set[str] = set()

    def add_target(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            assigned.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                add_target(element)
        elif isinstance(target, ast.Starred):
            add_target(target.value)

    for child in ast.walk(node):
        if isinstance(child, ast.Assign):
            for target in child.targets:
                add_target(target)
        elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
            add_target(child.target)
        elif isinstance(child, (ast.For, ast.AsyncFor)):
            add_target(child.target)
        elif isinstance(child, (ast.With, ast.AsyncWith)):
            for item in child.items:
                if item.optional_vars is not None:
                    add_target(item.optional_vars)
        elif isinstance(child, ast.NamedExpr):
            add_target(child.target)
        elif isinstance(child, ast.comprehension):
            add_target(child.target)
        elif isinstance(child, ast.Lambda):
            for argument in [*child.args.posonlyargs, *child.args.args,
                             *child.args.kwonlyargs]:
                assigned.add(argument.arg)
        elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            assigned.add(child.name)
        elif isinstance(child, ast.ExceptHandler) and child.name:
            assigned.add(child.name)
    return assigned


class _FunctionExtractor:
    """Runs the local dataflow over one function (or the module body)."""

    def __init__(self, owner: "_ModuleExtractor", name: str,
                 node: ast.FunctionDef | ast.AsyncFunctionDef | None,
                 class_name: str | None) -> None:
        self.owner = owner
        self.name = name
        self.class_name = class_name
        self.env: dict[str, set[Origin]] = {}
        #: Like ``env`` but tracking *aliasing* only: the origins a name
        #: may refer to directly, so that mutating the name mutates
        #: them.  Call results and literals are fresh objects here even
        #: though their data taint flows through ``env``.
        self.alias_env: dict[str, set[Origin]] = {}
        self.sources: list[SourceRec] = []
        self._source_index: dict[SourceRec, int] = {}
        self.sinks: list[SinkRec] = []
        self._sink_index: dict[SinkRec, int] = {}
        self.calls: list[CallRec] = []
        self._call_index: dict[CallRec, int] = {}
        self.flows: set[Flow] = set()
        self.writes: dict[WriteRec, None] = {}
        self.process_refs: set[tuple[str, int]] = set()
        #: ``.span(...)`` sites as (receiver, line, col); usage is
        #: tracked separately so the two-pass loop walk converges.
        self.span_sites: list[tuple[str, int, int]] = []
        self._span_index: dict[tuple[str, int, int], int] = {}
        self.span_usage: list[str] = []
        #: Innermost enclosing loop line per span site (0 = no loop).
        self.span_loops: list[int] = []
        self.entered_calls: set[int] = set()
        self.global_reads: list[GlobalRec] = []
        self._global_read_index: dict[str, int] = {}
        self.global_writes: dict[GlobalRec, None] = {}
        self.param_mutations: dict[tuple[int, int], None] = {}
        self.effects: dict[EffectRec, None] = {}
        self.loop_allocs: dict[AllocRec, None] = {}
        self.loop_loads: dict[LoadRec, None] = {}
        self.global_decls: set[str] = set()
        self.param_types: dict[str, str] = {}
        #: Innermost-last stack of (loop line, names bound in the loop).
        self._loop_stack: list[tuple[int, set[str]]] = []
        self._in_while_test = False
        self._attr_depth = 0
        self._no_load = 0
        self.is_generator = False
        self.yields_event = False
        self.has_sim_handle = False
        self.acquires = False
        self._acquired = False
        self.is_coroutine = isinstance(node, ast.AsyncFunctionDef)
        #: (line, col) of each recorded call → its index, so the Await/
        #: Expr statement walks can mark calls by position.
        self._call_pos: dict[tuple[int, int], int] = {}
        self.awaited_calls: set[int] = set()
        self.discarded_calls: set[int] = set()
        self.blocking_calls: dict[BlockRec, None] = {}
        self.task_drops: dict[TaskRec, None] = {}
        self.lock_awaits: dict[LockRec, None] = {}
        self.params: tuple[str, ...] = ()
        if node is not None:
            arguments = [*node.args.posonlyargs, *node.args.args,
                         *node.args.kwonlyargs]
            self.params = tuple(arg.arg for arg in arguments)
            for index, parameter in enumerate(self.params):
                self.env[parameter] = {("param", index)}
                self.alias_env[parameter] = {("param", index)}
            if set(self.params) & _SIM_NAMES:
                self.has_sim_handle = True
            for argument in arguments:
                if argument.annotation is None:
                    continue
                typed = owner.resolve_class_annotation(
                    argument.annotation)
                if typed is not None:
                    self.param_types[argument.arg] = typed

    # -- summary assembly ------------------------------------------------
    def summary(self, path: str, line: int) -> FunctionSummary:
        return FunctionSummary(
            name=self.name, path=path, line=line, params=self.params,
            is_generator=self.is_generator,
            yields_event=self.yields_event,
            has_sim_handle=self.has_sim_handle,
            acquires=self.acquires,
            sources=tuple(self.sources),
            sinks=tuple(self.sinks),
            calls=tuple(self.calls),
            flows=tuple(sorted(self.flows)),
            writes=tuple(self.writes),
            process_refs=tuple(sorted(self.process_refs)),
            span_starts=tuple(
                SpanStartRec(receiver=receiver, line=line, col=col,
                             usage=self.span_usage[index],
                             loop_line=self.span_loops[index])
                for index, (receiver, line, col)
                in enumerate(self.span_sites)),
            entered_calls=tuple(sorted(self.entered_calls)),
            global_reads=tuple(self.global_reads),
            global_writes=tuple(self.global_writes),
            param_mutations=tuple(sorted(self.param_mutations)),
            effects=tuple(self.effects),
            loop_allocs=tuple(self.loop_allocs),
            loop_loads=tuple(self.loop_loads),
            is_coroutine=self.is_coroutine,
            awaited_calls=tuple(sorted(self.awaited_calls)),
            discarded_calls=tuple(sorted(self.discarded_calls)),
            blocking_calls=tuple(self.blocking_calls),
            task_drops=tuple(self.task_drops),
            lock_awaits=tuple(self.lock_awaits),
        )

    # -- deduplicated record tables --------------------------------------
    def _source(self, kind: str, node: ast.expr, detail: str) -> Origin:
        record = SourceRec(kind=kind, line=node.lineno,
                           col=node.col_offset, detail=detail)
        index = self._source_index.get(record)
        if index is None:
            index = len(self.sources)
            self.sources.append(record)
            self._source_index[record] = index
        return ("source", index)

    def _sink(self, kind: str, node: ast.expr, detail: str) -> int:
        record = SinkRec(kind=kind, line=node.lineno,
                         col=node.col_offset, detail=detail)
        index = self._sink_index.get(record)
        if index is None:
            index = len(self.sinks)
            self.sinks.append(record)
            self._sink_index[record] = index
        return index

    def _callrec(self, ref: str, node: ast.expr, name: str) -> int:
        record = CallRec(ref=ref, line=node.lineno,
                         col=node.col_offset, name=name)
        index = self._call_index.get(record)
        if index is None:
            index = len(self.calls)
            self.calls.append(record)
            self._call_index[record] = index
        self._call_pos[(node.lineno, node.col_offset)] = index
        return index

    def _flow_all(self, origins: set[Origin], dest: Dest) -> None:
        for origin in sorted(origins):
            self.flows.add((origin, dest))

    def _span_start(self, receiver: str, node: ast.expr) -> Origin:
        key = (receiver, node.lineno, node.col_offset)
        index = self._span_index.get(key)
        if index is None:
            index = len(self.span_sites)
            self.span_sites.append(key)
            self.span_usage.append("leaked")
            self.span_loops.append(self._loop_stack[-1][0]
                                   if self._loop_stack else 0)
            self._span_index[key] = index
        return ("span", index)

    def _mark_entered(self, origins: set[Origin]) -> None:
        """The origins were entered as a ``with`` context manager."""
        for tag, index in origins:
            if tag == "span":
                self.span_usage[index] = "with"
            elif tag == "call":
                self.entered_calls.add(index)

    # -- effect/loop fact recording --------------------------------------
    def _global_read(self, node: ast.Name) -> Origin:
        canonical = f"{self.owner.module}.{node.id}"
        index = self._global_read_index.get(canonical)
        if index is None:
            index = len(self.global_reads)
            self.global_reads.append(GlobalRec(
                name=canonical, line=node.lineno,
                col=node.col_offset))
            self._global_read_index[canonical] = index
        return ("global", index)

    def _global_write(self, canonical: str, node: ast.AST) -> None:
        self.global_writes.setdefault(GlobalRec(
            name=canonical, line=node.lineno, col=node.col_offset))

    def _effect(self, kind: str, node: ast.AST, detail: str) -> None:
        self.effects.setdefault(EffectRec(
            kind=kind, line=node.lineno, col=node.col_offset,
            detail=detail))

    def _mutate(self, origins: set[Origin], node: ast.AST) -> None:
        """Record that ``origins`` (a receiver/target) were mutated."""
        for tag, index in sorted(origins):
            if tag == "param":
                self.param_mutations.setdefault((index, node.lineno))
            elif tag == "global":
                self._global_write(self.global_reads[index].name, node)

    def _alias_expr(self, node: ast.expr) -> set[Origin]:
        """Origins ``node`` may *alias* — mutating it mutates them.

        Unlike ``_expr`` this follows only reference-preserving paths
        (names, attribute/subscript access, conditional selection).  A
        call result or a literal is a fresh object: data that merely
        flowed into it is not mutated through it, which is what keeps
        ``dp = np.zeros(n); dp[i] = x`` from flagging the function as
        mutating whatever ``n`` was derived from.  Objects stored into
        locally built containers are not tracked (documented
        approximation — the effects pass is a certifier, not a prover).
        """
        if isinstance(node, ast.Name):
            if node.id in self.alias_env:
                return set(self.alias_env[node.id])
            if node.id in self.env:
                return set()
            if node.id in self.owner.module_globals:
                return {self._global_read(node)}
            return set()
        if isinstance(node, ast.Attribute):
            return self._alias_expr(node.value)
        if isinstance(node, ast.Subscript):
            return self._alias_expr(node.value)
        if isinstance(node, ast.IfExp):
            return (self._alias_expr(node.body)
                    | self._alias_expr(node.orelse))
        if isinstance(node, ast.NamedExpr):
            return self._alias_expr(node.value)
        if isinstance(node, ast.Starred):
            return self._alias_expr(node.value)
        if isinstance(node, ast.Await):
            return self._alias_expr(node.value)
        return set()

    def _expr_quiet(self, node: ast.expr) -> set[Origin]:
        """Evaluate without recording loop attribute-load facts."""
        self._no_load += 1
        try:
            return self._expr(node)
        finally:
            self._no_load -= 1

    def _record_chain_load(self, node: ast.Attribute) -> None:
        """Record a loop-invariant-rooted attribute chain load."""
        if self._no_load or self._attr_depth or not self._loop_stack:
            return
        parts = [node.attr]
        base = node.value
        while isinstance(base, ast.Attribute):
            parts.append(base.attr)
            base = base.value
        if not isinstance(base, ast.Name):
            return
        loop_line, assigned = self._loop_stack[-1]
        if base.id in assigned:
            return  # root rebound inside the loop; hoisting is unsafe
        parts.append(base.id)
        chain = ".".join(reversed(parts))
        self.loop_loads.setdefault(LoadRec(
            chain=chain, loop_line=loop_line, line=node.lineno,
            col=node.col_offset, in_test=self._in_while_test))

    def _push_loop(self, node: ast.stmt) -> None:
        self._loop_stack.append((node.lineno, _loop_assigned(node)))

    def _pop_loop(self) -> None:
        self._loop_stack.pop()

    # -- statement walk --------------------------------------------------
    def run(self, body: _t.Sequence[ast.stmt]) -> None:
        for statement in body:
            self._statement(statement)

    def _statement(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if self._loop_stack:
                # A fresh closure object per iteration (PERF101).
                self.loop_allocs.setdefault(AllocRec(
                    desc=f"def {node.name}", line=node.lineno,
                    col=node.col_offset))
            return  # separate summaries; no captured-taint modeling
        if isinstance(node, ast.ClassDef):
            return
        if isinstance(node, ast.Global):
            self.global_decls.update(node.names)
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    self._mutate(self._alias_expr(target.value), target)
            return
        if isinstance(node, ast.Assign):
            origins = self._expr(node.value)
            alias = self._alias_expr(node.value)
            for target in node.targets:
                self._assign(target, origins, alias)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._assign(node.target, self._expr(node.value),
                             self._alias_expr(node.value))
        elif isinstance(node, ast.AugAssign):
            origins = self._expr(node.value)
            if isinstance(node.target, ast.Name):
                origins |= self.env.get(node.target.id, set())
                # ``x += v`` mutates in place for containers; flag the
                # aliased origins (a plain local counter aliases none).
                self._mutate(self._alias_expr(node.target), node)
                self._assign(node.target, origins,
                             self._alias_expr(node.target))
            else:
                self._assign(node.target, origins)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                origins = self._expr(node.value)
                for tag, index in origins:
                    # A returned span scope is a factory: entering it
                    # becomes the caller's responsibility (TEL002).
                    if tag == "span" and self.span_usage[index] != "with":
                        self.span_usage[index] = "returned"
                self._flow_all(origins, ("return",))
        elif isinstance(node, ast.Expr):
            self._expr(node.value)
            value = node.value
            if isinstance(value, ast.Call):
                # The whole statement is a bare call: its result —
                # possibly an un-awaited coroutine or a weak task
                # handle — is discarded (ASYNC102).  An awaited bare
                # call is not a Call node here and stays unmarked.
                index = self._call_pos.get(
                    (value.lineno, value.col_offset))
                if index is not None:
                    self.discarded_calls.add(index)
                self._maybe_task_drop(node, value)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            # The loop target aliases the iterable's contents: mutating
            # an element mutates what the container reaches.
            self._assign(node.target, self._expr(node.iter),
                         self._alias_expr(node.iter))
            self._push_loop(node)
            for _ in range(2):  # two passes: chained flows converge
                for inner in node.body:
                    self._statement(inner)
            self._pop_loop()
            for inner in node.orelse:
                self._statement(inner)
        elif isinstance(node, ast.While):
            self._push_loop(node)
            self._in_while_test = True
            self._expr(node.test)
            self._in_while_test = False
            for _ in range(2):
                for inner in node.body:
                    self._statement(inner)
            self._pop_loop()
            for inner in node.orelse:
                self._statement(inner)
        elif isinstance(node, ast.If):
            self._expr(node.test)
            for inner in (*node.body, *node.orelse):
                self._statement(inner)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            lockish = [item.context_expr for item in node.items
                       if _is_lockish(item.context_expr)]
            for item in node.items:
                origins = self._expr(item.context_expr)
                self._mark_entered(origins)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, origins,
                                 self._alias_expr(item.context_expr))
            acquired_before = self._acquired
            if lockish:
                # Writes under the lock are serialized by it (the
                # with-statement twin of ``yield lock.acquire()``),
                # scoped to the guarded body.
                self._acquired = True
                if isinstance(node, ast.With) \
                        and _contains_await(node.body):
                    # A *sync* lock held across an await parks the
                    # whole event loop behind it (ASYNC103).
                    detail = (_attr_chain_tail(lockish[0]) or "lock")
                    self.lock_awaits.setdefault(LockRec(
                        line=node.lineno, col=node.col_offset,
                        detail=detail))
            for inner in node.body:
                self._statement(inner)
            if lockish:
                self._acquired = acquired_before
        elif isinstance(node, ast.Try):
            blocks = [*node.body]
            for handler in node.handlers:
                blocks.extend(handler.body)
            blocks.extend(node.orelse)
            blocks.extend(node.finalbody)
            for inner in blocks:
                self._statement(inner)
        elif isinstance(node, ast.Raise):
            if node.exc is not None:
                self._expr(node.exc)
        elif isinstance(node, ast.Assert):
            self._expr(node.test)
        elif isinstance(node, ast.Match):  # pragma: no cover - unused
            self._expr(node.subject)
            for case in node.cases:
                for inner in case.body:
                    self._statement(inner)

    def _assign(self, target: ast.expr, origins: set[Origin],
                alias: set[Origin] | None = None) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.global_decls:
                self._global_write(
                    f"{self.owner.module}.{target.id}", target)
            self.env[target.id] = set(origins)
            # Rebinding always resets the alias set — a name bound to a
            # call result or literal no longer aliases anything.
            self.alias_env[target.id] = set(alias or ())
        elif isinstance(target, ast.Attribute):
            self._record_write(target)
            self._mutate(self._alias_expr(target.value), target)
        elif isinstance(target, ast.Subscript):
            base = target.value
            self._mutate(self._alias_expr(base), target)
            if isinstance(base, ast.Name):
                self.env.setdefault(base.id, set()).update(origins)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, origins, alias)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, origins, alias)

    def _record_write(self, target: ast.Attribute) -> None:
        base = target.value
        if isinstance(base, ast.Name) and base.id == "self" \
                and self.class_name is not None:
            self.writes.setdefault(WriteRec(
                scope="self", attr=target.attr, line=target.lineno,
                col=target.col_offset, after_acquire=self._acquired))

    # -- expression evaluation -------------------------------------------
    def _expr(self, node: ast.expr) -> set[Origin]:
        if isinstance(node, ast.Name):
            if node.id in _SIM_NAMES:
                self.has_sim_handle = True
            if node.id in self.env:
                return set(self.env[node.id])
            if node.id in self.owner.module_globals:
                return {self._global_read(node)}
            return set()
        if isinstance(node, ast.Constant):
            if isinstance(node.value, str) \
                    and _RUNNER_STRING.match(node.value):
                self._record_runner_string(node)
            return set()
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Attribute):
            if node.attr in _SIM_NAMES:
                self.has_sim_handle = True
            if node.attr == "environ" \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == "os" \
                    and "os" in self.owner.imports_aliases:
                self._effect("env-read", node, "os.environ")
            self._record_chain_load(node)
            receiver_tail = _attr_chain_tail(node.value)
            if node.attr == "now" \
                    and receiver_tail in (_SIM_NAMES | _ENGINE_NAMES):
                # Engine-domain timestamp (the ENG101 time lattice):
                # the receiver taint still propagates underneath.
                self._attr_depth += 1
                try:
                    origins = self._expr(node.value)
                finally:
                    self._attr_depth -= 1
                return origins | {self._source(
                    "simtime", node,
                    f"engine-domain time {receiver_tail}.now")}
            self._attr_depth += 1
            try:
                return self._expr(node.value)
            finally:
                self._attr_depth -= 1
        if isinstance(node, ast.Lambda):
            if self._loop_stack:
                # A fresh closure object per iteration (PERF101).
                self.loop_allocs.setdefault(AllocRec(
                    desc="lambda", line=node.lineno,
                    col=node.col_offset))
            return set()
        if isinstance(node, ast.Subscript):
            return self._expr(node.value) | self._expr(node.slice)
        if isinstance(node, ast.Set):
            origins = self._union(node.elts)
            origins.add(self._source("order", node, "set literal"))
            return origins
        if isinstance(node, ast.SetComp):
            origins = self._comprehension(node.generators, [node.elt])
            origins.add(self._source("order", node, "set comprehension"))
            return origins
        if isinstance(node, (ast.List, ast.Tuple)):
            return self._union(node.elts)
        if isinstance(node, ast.Dict):
            return self._union([
                *(key for key in node.keys if key is not None),
                *node.values])
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return self._comprehension(node.generators, [node.elt])
        if isinstance(node, ast.DictComp):
            return self._comprehension(node.generators,
                                       [node.key, node.value])
        if isinstance(node, ast.BinOp):
            return self._expr(node.left) | self._expr(node.right)
        if isinstance(node, ast.BoolOp):
            return self._union(node.values)
        if isinstance(node, ast.UnaryOp):
            return self._expr(node.operand)
        if isinstance(node, ast.Compare):
            return self._expr(node.left) | self._union(node.comparators)
        if isinstance(node, ast.IfExp):
            return (self._expr(node.test) | self._expr(node.body)
                    | self._expr(node.orelse))
        if isinstance(node, ast.JoinedStr):
            return self._union(node.values)
        if isinstance(node, ast.FormattedValue):
            return self._expr(node.value)
        if isinstance(node, ast.Starred):
            return self._expr(node.value)
        if isinstance(node, ast.Await):
            origins = self._expr(node.value)
            if isinstance(node.value, ast.Call):
                index = self._call_pos.get(
                    (node.value.lineno, node.value.col_offset))
                if index is not None:
                    self.awaited_calls.add(index)
            return origins
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            self._yield(node)
            return set()
        if isinstance(node, ast.NamedExpr):
            origins = self._expr(node.value)
            self._assign(node.target, origins,
                         self._alias_expr(node.value))
            return origins
        if isinstance(node, ast.Slice):
            return self._union([part for part in
                                (node.lower, node.upper, node.step)
                                if part is not None])
        return set()

    def _union(self, nodes: _t.Sequence[ast.expr]) -> set[Origin]:
        origins: set[Origin] = set()
        for node in nodes:
            origins |= self._expr(node)
        return origins

    def _comprehension(self, generators: _t.Sequence[ast.comprehension],
                       results: _t.Sequence[ast.expr]) -> set[Origin]:
        for generator in generators:
            self._assign(generator.target, self._expr(generator.iter),
                         self._alias_expr(generator.iter))
            for condition in generator.ifs:
                self._expr(condition)
        return self._union(list(results))

    # -- yields ----------------------------------------------------------
    def _yield(self, node: ast.Yield | ast.YieldFrom) -> None:
        self.is_generator = True
        value = node.value
        if value is None:
            return
        self._expr(value)
        if isinstance(value, ast.Call):
            target = value.func
            if isinstance(target, ast.Attribute) \
                    and target.attr in _EVENT_FACTORIES:
                self.yields_event = True
            elif isinstance(target, ast.Name) \
                    and target.id in _EVENT_CLASSES:
                self.yields_event = True

    # -- calls: sources, sinks, edges ------------------------------------
    def _record_runner_string(self, node: ast.Constant) -> None:
        module, _, attr = str(node.value).partition(":")
        ref = f"{module}.{attr}"
        self._callrec(ref, node, f"runner string {node.value!r}")
        self.process_refs.add((ref, node.lineno))

    def _call(self, node: ast.Call) -> set[Origin]:
        func = node.func
        if isinstance(func, (ast.Attribute, ast.Name)) \
                and _attr_chain_tail(func) in _SIM_NAMES:
            self.has_sim_handle = True
        if isinstance(func, ast.Attribute):
            # The bound-method lookup itself is a per-iteration
            # attribute load (PERF102 input).
            self._record_chain_load(func)
        if isinstance(func, ast.Attribute) \
                and func.attr in ("request", "acquire"):
            # Resource-protocol acquisition: writes after this point are
            # serialized by the resource (SIM101).
            self.acquires = True
            self._acquired = True
        positional = [self._expr(argument) for argument in node.args]
        keywords = [(keyword.arg, self._expr(keyword.value))
                    for keyword in node.keywords]
        merged: set[Origin] = set()
        for origins in positional:
            merged |= origins
        for _name, origins in keywords:
            merged |= origins
        path = self.owner.imports.resolve(func)
        display = path or _attr_chain_tail(func) or "<call>"

        self._maybe_register_process(node, func)
        self._maybe_blocking(node, func, path)

        source = self._classify_source(node, func, path)
        if source is not None:
            kind, detail = source
            return {self._source(kind, node, detail)}

        if isinstance(func, ast.Attribute) and func.attr == "span":
            receiver = _attr_chain_tail(func.value)
            if receiver is not None:
                # A span-scope start (TEL002): the result carries a
                # ("span", i) token that With/Return consume; receiver
                # taint still propagates like any method call.
                merged |= self._expr(func.value)
                return merged | {self._span_start(receiver, node)}

        sink = self._classify_sink(func, path)
        if sink is not None:
            kind, detail = sink
            index = self._sink(kind, node, detail)
            if kind == "wall":
                # Only the delay/deadline argument is time-interpreted;
                # a callback (and its payload args) is not a wall-time
                # value, so flowing it would manufacture ENG101 noise.
                for origins in positional[:1]:
                    self._flow_all(origins, ("sink", index))
                for name, origins in keywords:
                    if name in ("delay", "when", "timeout"):
                        self._flow_all(origins, ("sink", index))
                return set(merged)
            for origins in positional:
                self._flow_all(origins, ("sink", index))
            if kind != "order":
                # Keyword args of ordering sinks (min/max ``key=``,
                # json.dumps ``sort_keys=``) control the comparison but
                # do not feed data whose order the sink can expose.
                for _name, origins in keywords:
                    self._flow_all(origins, ("sink", index))
            if kind in ("sim", "telemetry") \
                    and isinstance(func, ast.Attribute):
                # Scheduling an event / recording a sample mutates the
                # receiver (simulator, instrument) — an effect fact.
                self._mutate(self._alias_expr(func.value), node)
            if path in _HEAP_MUTATING_SINKS and node.args:
                self._mutate(self._alias_expr(node.args[0]), node)
            if path == "json.dump":
                self._effect("io", node, "json.dump()")
            return set(merged)

        if isinstance(func, ast.Name) and func.id == "sorted" \
                and func.id not in self.owner.imports_aliases:
            index = self._callrec(SORTED_REF, node, "sorted")
            for position, origins in enumerate(positional):
                self._flow_all(origins, ("arg", index, position))
            return {("call", index)}

        if isinstance(func, ast.Name) \
                and func.id in _STRUCTURE_BUILTINS \
                and func.id not in self.owner.imports_aliases:
            return set()

        self._maybe_mutate_receiver(func, merged)

        ref = self.owner.resolve(func, self.class_name)
        if ref is None and isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name):
            # Parameter-annotation typing: ``entry: CacheEntry`` makes
            # ``entry.touch()`` resolve to ``CacheEntry.touch`` as long
            # as the name still holds the original parameter value.
            typed = self.param_types.get(func.value.id)
            if typed is not None and func.value.id in self.params \
                    and self.env.get(func.value.id) == \
                    {("param", self.params.index(func.value.id))}:
                ref = f"{typed}.{func.attr}"
        if ref is not None:
            index = self._callrec(ref, node, display)
            for position, origins in enumerate(positional):
                self._flow_all(origins, ("arg", index, position))
            for name, origins in keywords:
                if name is not None:
                    self._flow_all(origins, ("kwarg", index, name))
            if isinstance(func, ast.Attribute):
                # Receiver flow: lets the effects pass map a callee's
                # self-mutation back onto the caller's objects (alias
                # origins only — mutating a locally constructed object
                # is invisible outside).
                self._flow_all(self._alias_expr(func.value),
                               ("recv", index))
            return {("call", index)}
        # Unresolved callee: assume the result derives from the inputs —
        # including the receiver of a method call (``rng.random()``
        # returns something as tainted as ``rng`` itself).
        if isinstance(func, ast.Attribute):
            merged |= self._expr_quiet(func.value)
            if func.attr in _MUTATORS or func.attr in _EXTRA_MUTATORS:
                self._mutate(self._alias_expr(func.value), node)
            return set(merged)
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.env or name in self.owner.module_globals:
                # Call through a local value / parameter / rebindable
                # module global: statically unknowable target.
                self._effect("unknown-call", node,
                             f"call through {name!r}")
            elif name in ("setattr", "delattr"):
                if node.args:
                    self._mutate(self._alias_expr(node.args[0]), node)
            elif name in _IO_BUILTINS:
                self._effect("io", node, f"{name}()")
            elif name in _PURE_BUILTINS \
                    or name.endswith(_EXCEPTION_SUFFIXES):
                pass
            else:
                self._effect("unknown-call", node, f"{name}()")
            return set(merged)
        # Calls on arbitrary expressions (``handlers[key]()``, ...).
        merged |= self._expr(func)
        self._effect("unknown-call", node, "dynamic call target")
        return set(merged)

    def _classify_source(self, node: ast.Call, func: ast.expr,
                         path: str | None) -> tuple[str, str] | None:
        seeded = bool(node.args or node.keywords)
        if path is not None:
            if path == "random.Random":
                if not seeded:
                    return ("rng", "random.Random() without a seed")
                return None
            if path.startswith("random.SystemRandom"):
                return ("entropy", "random.SystemRandom (OS entropy)")
            if path.startswith("random."):
                return ("rng",
                        f"module-level {path}() (implicit global RNG)")
            if path.startswith("numpy.random."):
                attribute = path.split(".")[2]
                if attribute in _NUMPY_CONSTRUCTORS:
                    if not seeded:
                        return ("rng", f"numpy.random.{attribute}() "
                                       f"without a seed")
                    return None
                return ("rng", f"legacy numpy.random.{attribute}() "
                               f"(global state)")
            if path in WALLCLOCK_CALLS:
                return ("clock", f"wall clock {path}()")
            if path in _ENTROPY_CALLS:
                return ("entropy", f"{path}() (OS entropy)")
            if path in _FS_ORDER_CALLS:
                return ("order", f"{path}() (filesystem order)")
        if isinstance(func, ast.Attribute) and not node.args \
                and not node.keywords \
                and func.attr in ("keys", "values", "items"):
            return ("order", f".{func.attr}() view")
        if isinstance(func, ast.Name) \
                and func.id in ("set", "frozenset") \
                and func.id not in self.owner.imports_aliases:
            return ("order", f"{func.id}() call")
        return None

    def _classify_sink(self, func: ast.expr, path: str | None,
                       ) -> tuple[str, str] | None:
        if path is not None:
            if path in _PACM_SINKS:
                return ("pacm", f"PACM utility {path}()")
            if path in _ORDER_SINK_CALLS:
                return ("order", f"{path}()")
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if func.attr in _SIM_SINK_METHODS \
                    and _is_sim_receiver(receiver):
                tail = _attr_chain_tail(receiver) or "sim"
                return ("sim",
                        f"event scheduling {tail}.{func.attr}(...)")
            if func.attr in ("timeout", "process", "run_process") \
                    and _is_sim_receiver(receiver):
                tail = _attr_chain_tail(receiver) or "sim"
                return ("sim",
                        f"event scheduling {tail}.{func.attr}(...)")
            if func.attr in _TELEMETRY_METHODS:
                hint = (_attr_chain_tail(receiver) or "").lower()
                if any(token in hint for token in _TELEMETRY_HINTS):
                    return ("telemetry",
                            f"telemetry sample "
                            f"{_attr_chain_tail(receiver)}"
                            f".{func.attr}(...)")
            if func.attr == "join" and not isinstance(receiver, ast.Call):
                return ("order", "str.join(...)")
        if isinstance(func, ast.Name) and func.id in ("min", "max") \
                and func.id not in self.owner.imports_aliases:
            return ("order", f"{func.id}(...)")
        if path in _WALL_SINK_PATHS:
            return ("wall", f"wall-time sink {path}(...)")
        if isinstance(func, ast.Attribute) \
                and func.attr in _WALL_SINK_ATTRS \
                and _attr_chain_tail(func.value) in _LOOP_NAMES:
            tail = _attr_chain_tail(func.value)
            return ("wall",
                    f"wall-time sink {tail}.{func.attr}(...)")
        return None

    def _maybe_register_process(self, node: ast.Call,
                                func: ast.expr) -> None:
        """Record ``sim.process(fn(...))``-style registrations."""
        is_registration = False
        if isinstance(func, ast.Attribute) \
                and func.attr in ("process", "run_process") \
                and _is_sim_receiver(func.value):
            is_registration = True
        elif isinstance(func, ast.Name) and func.id == "Process":
            is_registration = True
        if not is_registration:
            return
        for argument in node.args:
            candidate: ast.expr = argument
            if isinstance(candidate, ast.Call):
                candidate = candidate.func
            ref = self.owner.resolve(candidate, self.class_name)
            if ref is not None:
                self.process_refs.add((ref, node.lineno))

    def _maybe_blocking(self, node: ast.Call, func: ast.expr,
                        path: str | None) -> None:
        """Record a loop-blocking call site (ASYNC101 input)."""
        kind: str | None = None
        detail = ""
        if path is not None:
            kind = _BLOCKING_CALLS.get(path)
            if kind is None:
                for prefix, family in _BLOCKING_PREFIXES:
                    if path.startswith(prefix):
                        kind = family
                        break
            if kind is not None:
                detail = f"{path}(...)"
        if kind is None and isinstance(func, ast.Name) \
                and func.id in _BLOCKING_BUILTINS \
                and func.id not in self.env \
                and func.id not in self.owner.module_globals \
                and func.id not in self.owner.imports_aliases:
            kind = "file-io"
            detail = f"builtin {func.id}(...)"
        if kind is not None:
            self.blocking_calls.setdefault(BlockRec(
                kind=kind, line=node.lineno, col=node.col_offset,
                detail=detail))

    def _maybe_task_drop(self, stmt: ast.stmt, call: ast.Call) -> None:
        """Record a dropped task-spawn handle (ASYNC102 input)."""
        func = call.func
        api: str | None = None
        path = self.owner.imports.resolve(func)
        if path in _TASK_SPAWN_PATHS:
            api = path
        elif isinstance(func, ast.Attribute) \
                and func.attr in _TASK_SPAWN_ATTRS \
                and _attr_chain_tail(func.value) in _LOOP_NAMES:
            api = f"{_attr_chain_tail(func.value)}.{func.attr}"
        if api is None:
            return
        self.task_drops.setdefault(TaskRec(
            api=api, line=call.lineno, col=call.col_offset,
            end_line=stmt.end_lineno or stmt.lineno,
            end_col=stmt.end_col_offset or 0,
            indent=stmt.col_offset))

    def _maybe_mutate_receiver(self, func: ast.expr,
                               origins: set[Origin]) -> None:
        if not origins or not isinstance(func, ast.Attribute):
            return
        if func.attr in _MUTATORS and isinstance(func.value, ast.Name):
            self.env.setdefault(func.value.id, set()).update(origins)


class _ModuleExtractor:
    """Extraction driver for one file."""

    def __init__(self, relpath: str, tree: ast.Module) -> None:
        self.relpath = relpath
        self.module = module_name_for(relpath)
        self.tree = tree
        self.imports = ImportMap(tree)
        self.imports_aliases = self._alias_names(tree)
        self.local_functions: set[str] = set()
        self.local_classes: dict[str, set[str]] = {}
        #: Top-level data bindings (module state the effects pass
        #: tracks); imports/defs/classes are code refs, not state.
        self.module_globals: set[str] = set()
        self._index_toplevel()
        self.module_globals -= (self.local_functions
                                | set(self.local_classes)
                                | self.imports_aliases)

    @staticmethod
    def _alias_names(tree: ast.Module) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    names.add(alias.asname
                              or alias.name.split(".", 1)[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    names.add(alias.asname or alias.name)
        return names

    def _index_toplevel(self) -> None:
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.local_functions.add(node.name)
            elif isinstance(node, ast.ClassDef):
                self.local_classes[node.name] = {
                    item.name for item in node.body
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef))}
            elif isinstance(node, (ast.Assign, ast.AnnAssign,
                                   ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if isinstance(target, ast.Name):
                        self.module_globals.add(target.id)

    def resolve_class_annotation(self, node: ast.expr) -> str | None:
        """Canonical class ref for a plain-Name parameter annotation."""
        if not isinstance(node, ast.Name):
            return None
        if node.id in self.local_classes:
            return f"{self.module}.{node.id}"
        if node.id in self.imports_aliases:
            return self.imports.resolve(node)
        return None

    def resolve(self, func: ast.expr,
                class_name: str | None) -> str | None:
        """Canonical dotted ref for a callee expression, else ``None``."""
        if isinstance(func, ast.Name):
            if func.id in self.local_functions:
                return f"{self.module}.{func.id}"
            if func.id in self.local_classes:
                return f"{self.module}.{func.id}"
            if func.id in self.imports_aliases:
                return self.imports.resolve(func)
            return None
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) and base.id == "self" \
                    and class_name is not None:
                if func.attr in self.local_classes.get(class_name, ()):
                    return f"{self.module}.{class_name}.{func.attr}"
                return None
            root: ast.expr = func
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name) \
                    and root.id in self.imports_aliases:
                return self.imports.resolve(func)
        return None

    def exports(self) -> dict[str, str]:
        """Module-level name → canonical dotted target."""
        table: dict[str, str] = {}
        for node in self.tree.body:
            if isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    table[local] = f"{node.module}.{alias.name}"
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        table[alias.asname] = alias.name
            elif isinstance(node, ast.Assign) \
                    and isinstance(node.value, ast.Name):
                value = node.value.id
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if value in self.local_functions \
                            or value in self.local_classes:
                        table[target.id] = f"{self.module}.{value}"
                    elif value in table:
                        table[target.id] = table[value]
        return table

    def extract(self, digest: str) -> ModuleSummary:
        functions: list[FunctionSummary] = []
        # Module body as a pseudo-function (runner strings, module-level
        # process registrations).
        body = _FunctionExtractor(
            self, f"{self.module}.{MODULE_BODY}", None, None)
        body.run([statement for statement in self.tree.body
                  if not isinstance(statement,
                                    (ast.FunctionDef,
                                     ast.AsyncFunctionDef,
                                     ast.ClassDef))])
        functions.append(body.summary(self.relpath, 1))
        for name, node, class_name in self._iter_functions():
            extractor = _FunctionExtractor(self, name, node, class_name)
            extractor.run(node.body)
            functions.append(
                extractor.summary(self.relpath, node.lineno))
        return ModuleSummary(
            path=self.relpath, module=self.module, digest=digest,
            exports=self.exports(), functions=functions,
            classes=tuple(sorted(f"{self.module}.{name}"
                                 for name in self.local_classes)),
            head_line=self._head_line())

    def _head_line(self) -> int:
        """First line where a module-level statement may be inserted.

        Skips the docstring and any ``from __future__`` imports, which
        must stay first; everything else (including plain imports) may
        legally follow an inserted assignment.
        """
        line = 1
        for index, node in enumerate(self.tree.body):
            is_docstring = (index == 0 and isinstance(node, ast.Expr)
                            and isinstance(node.value, ast.Constant)
                            and isinstance(node.value.value, str))
            is_future = (isinstance(node, ast.ImportFrom)
                         and node.module == "__future__")
            if is_docstring or is_future:
                line = (node.end_lineno or node.lineno) + 1
                continue
            return node.lineno
        return line

    def _iter_functions(self) -> _t.Iterator[
            tuple[str, ast.FunctionDef | ast.AsyncFunctionDef,
                  str | None]]:
        def walk(body: _t.Sequence[ast.stmt], prefix: str,
                 class_name: str | None) -> _t.Iterator[
                tuple[str, ast.FunctionDef | ast.AsyncFunctionDef,
                      str | None]]:
            for node in body:
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    qualname = f"{prefix}.{node.name}"
                    yield (qualname, node, class_name)
                    yield from walk(node.body, qualname, class_name)
                elif isinstance(node, ast.ClassDef):
                    yield from walk(node.body,
                                    f"{prefix}.{node.name}", node.name)

        yield from walk(self.tree.body, self.module, None)


def extract_module(relpath: str, tree: ast.Module,
                   digest: str) -> ModuleSummary:
    """Extract the whole-program summary for one parsed module."""
    return _ModuleExtractor(relpath, tree).extract(digest)
