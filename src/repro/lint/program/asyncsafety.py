"""Async & engine-seam safety passes (ASYNC101-103, ENG101).

The live stack (:mod:`repro.engine.wallclock` / ``livenet``) introduced
the one hazard class the determinism passes cannot see: real
concurrency.  These passes consume the coroutine facts the extractor
records (``is_coroutine``, awaited/discarded call indices, blocking
sites, dropped task handles, sync-lock-across-await scopes) plus the
existing call graph and taint fixpoint:

* **ASYNC101** — a blocking call (``time.sleep``, socket, file IO,
  subprocess, sync HTTP) whose enclosing function is a coroutine or is
  reachable from one through sync helpers.  The event loop stalls for
  the call's full duration.  ``[tool.repro-lint] async-blocking-allow``
  blesses sanctioned shutdown flushes and ``run_in_executor`` shims —
  a blessed function neither reports its own sites nor forwards its
  callees' upward.
* **ASYNC102** — a coroutine invoked as a bare statement without
  ``await`` (the body never runs), or a ``create_task``/
  ``ensure_future`` handle dropped on the floor (the loop holds only a
  weak reference, so the task is eligible for GC mid-flight — the
  exact bug the live DNS bridge shipped with).  Both carry autofixes:
  ``await`` insertion, and strong-reference anchoring in a
  module-owned task set with a done-callback discard.
* **ASYNC103** — one attribute written by two or more coroutines with
  no lock serializing the writes (SIM101's twin for the live engine),
  plus a *synchronous* lock held across an ``await`` (every other task
  parks behind the lock while the holder is suspended).
* **ENG101** — engine-seam mixing over a two-point time-domain
  lattice ``{sim, wall}``: a sim-domain time value (``sim.now`` /
  ``engine.now``) flowing into a wall-time sink (``asyncio.sleep``,
  ``loop.call_later``/``call_at``).  The wall→sim direction is already
  DET101's clock branch; both directions are legal only inside the
  blessed wall-clock engine (``engine-wallclock-allow``), whose whole
  job is bridging the domains.
"""

from __future__ import annotations

import typing as _t

from repro.lint.config import LintConfig
from repro.lint.findings import Finding, TraceStep
from repro.lint.fixes import Edit, Fix
from repro.lint.program.model import (FunctionSummary, Program, TaskRec,
                                      WriteRec)
from repro.lint.program.taint import SinkHit, taint_result
from repro.lint.registry import ProgramChecker, register_program

__all__ = ["BlockingInCoroutine", "DroppedCoroutine",
           "CoroutineSharedWrite", "EngineSeamMixing", "async_stats"]


def _sink_site(program: Program, hit: SinkHit) -> str:
    function = program.functions[hit.function]
    return f"{function.path}:{hit.sink.line}"


def _coroutine_path(program: Program, config: LintConfig,
                    start: str) -> list[tuple[str, int]] | None:
    """Shortest caller chain from a coroutine down to ``start``.

    Returns ``[(function, call index), ...]`` where each entry's call
    invokes the next function in the chain (the last entry calls
    ``start``), beginning at the nearest coroutine.  Traversal never
    crosses an ``async-blocking-allow``-blessed function, and ties are
    broken lexicographically so the reported witness is deterministic.
    """
    parent: dict[str, tuple[str, int]] = {}
    seen = {start}
    frontier = [start]
    while frontier:
        next_frontier: list[str] = []
        found: list[str] = []
        for name in frontier:
            for caller, index in program.callers.get(name, ()):
                if caller in seen:
                    continue
                if config.allows_async_blocking(caller):
                    continue
                seen.add(caller)
                parent[caller] = (name, index)
                if program.functions[caller].is_coroutine:
                    found.append(caller)
                else:
                    next_frontier.append(caller)
        if found:
            hops: list[tuple[str, int]] = []
            node = min(found)
            while node != start:
                child, index = parent[node]
                hops.append((node, index))
                node = child
            return hops
        frontier = sorted(next_frontier)
    return None


@register_program
class BlockingInCoroutine(ProgramChecker):
    """ASYNC101: a blocking call executes on the event loop.

    Direct hits (the blocking site sits inside an ``async def``) need
    no trace; indirect hits carry the full coroutine→helper→site chain
    so the reader can see *which* await path stalls without re-deriving
    the call graph.
    """

    code = "ASYNC101"
    description = ("blocking call (time.sleep, socket, file IO, "
                   "subprocess, sync HTTP) inside a coroutine or "
                   "reachable from one through sync helpers; the "
                   "event loop stalls for its full duration")

    def check_program(self, program: Program,
                      config: LintConfig) -> _t.Iterator[Finding]:
        remedy = ("use the async API or loop.run_in_executor(...), or "
                  "bless the function under [tool.repro-lint] "
                  "async-blocking-allow")
        for name in sorted(program.functions):
            function = program.functions[name]
            if not function.blocking_calls:
                continue
            if config.allows_async_blocking(name):
                continue
            if function.is_coroutine:
                for rec in function.blocking_calls:
                    yield Finding(
                        path=function.path, line=rec.line, col=rec.col,
                        code=self.code,
                        message=(f"coroutine {name} makes a blocking "
                                 f"{rec.kind} call ({rec.detail}); "
                                 f"{remedy}"))
                continue
            hops = _coroutine_path(program, config, name)
            if hops is None:
                continue
            coroutine = hops[0][0]
            chain: list[TraceStep] = []
            for hop_name, index in hops:
                hop = program.functions[hop_name]
                call = hop.calls[index]
                role = "coroutine" if hop.is_coroutine else "sync helper"
                chain.append(TraceStep(
                    hop.path, call.line,
                    f"{role} {hop_name} calls {call.name}(...)"))
            for rec in function.blocking_calls:
                yield Finding(
                    path=function.path, line=rec.line, col=rec.col,
                    code=self.code,
                    message=(f"blocking {rec.kind} call ({rec.detail}) "
                             f"in {name} is reachable from coroutine "
                             f"{coroutine}; {remedy}"),
                    trace=tuple(chain) + (TraceStep(
                        function.path, rec.line,
                        f"blocking {rec.kind} call: {rec.detail}"),))


@register_program
class DroppedCoroutine(ProgramChecker):
    """ASYNC102: a coroutine or task handle is silently dropped.

    A bare ``coro_fn()`` statement builds the coroutine object and
    throws it away — the body never runs.  A bare
    ``asyncio.create_task(...)`` runs, but the event loop keeps only a
    weak reference, so a GC pass can collect the task mid-flight.  Both
    shapes are mechanical to repair, so both findings carry fixes.
    """

    code = "ASYNC102"
    description = ("coroutine called without await (the body never "
                   "runs), or create_task/ensure_future handle "
                   "dropped (the task can be garbage-collected "
                   "mid-flight)")

    def check_program(self, program: Program,
                      config: LintConfig) -> _t.Iterator[Finding]:
        heads = {module.path: module.head_line
                 for module in program.modules}
        for name in sorted(program.functions):
            function = program.functions[name]
            discarded = set(function.discarded_calls)
            awaited = set(function.awaited_calls)
            for index, callee in program.call_edges.get(name, ()):
                if index not in discarded or index in awaited:
                    continue
                target = program.functions[callee]
                if not target.is_coroutine:
                    continue
                call = function.calls[index]
                fix: Fix | None = None
                if function.is_coroutine:
                    fix = Fix(
                        description=(f"await the {call.name}(...) "
                                     f"coroutine"),
                        edits=(Edit(call.line, call.col,
                                    call.line, call.col, "await "),))
                    hint = "insert 'await'"
                else:
                    hint = ("drive it explicitly (asyncio.run(...) or "
                            "create_task(...) held in an owned set)")
                yield Finding(
                    path=function.path, line=call.line, col=call.col,
                    code=self.code,
                    message=(f"{call.name}(...) is a coroutine "
                             f"(defined at {target.path}:{target.line}) "
                             f"but its result is discarded unawaited — "
                             f"the body never runs; {hint}"),
                    trace=(TraceStep(target.path, target.line,
                                     f"{callee} is 'async def'"),
                           TraceStep(function.path, call.line,
                                     "called here; result discarded "
                                     "without await")),
                    fix=fix)
            for rec in function.task_drops:
                yield Finding(
                    path=function.path, line=rec.line, col=rec.col,
                    code=self.code,
                    message=(f"{rec.api}(...) handle is dropped; the "
                             f"event loop holds only a weak task "
                             f"reference, so the task can be "
                             f"garbage-collected mid-flight — anchor "
                             f"it in an owned set with a "
                             f"done-callback discard"),
                    fix=self._anchor_fix(function, rec, heads))

    @staticmethod
    def _anchor_fix(function: FunctionSummary, rec: TaskRec,
                    heads: dict[str, int]) -> Fix:
        """Strong-reference anchoring: bind, register, self-discard.

        Identical module-head insertions from several drops in one file
        dedupe inside ``apply_edits``, so the owning set is declared
        exactly once per module.
        """
        indent = " " * rec.indent
        head = heads.get(function.path, 1)
        return Fix(
            description=("anchor the task in a module-owned "
                         "strong-reference set"),
            edits=(
                Edit(head, 0, head, 0,
                     "_BACKGROUND_TASKS: set = set()\n"),
                Edit(rec.line, rec.col, rec.line, rec.col,
                     "_bg_task = "),
                Edit(rec.end_line, rec.end_col,
                     rec.end_line, rec.end_col,
                     f"\n{indent}_BACKGROUND_TASKS.add(_bg_task)\n"
                     f"{indent}_bg_task.add_done_callback("
                     f"_BACKGROUND_TASKS.discard)"),
            ))


@register_program
class CoroutineSharedWrite(ProgramChecker):
    """ASYNC103: unserialized shared state across coroutines.

    SIM101's twin for the live engine: generator processes interleave
    at ``yield``, coroutines at ``await``, and in both worlds the final
    value of an attribute written by two unserialized writers depends
    on scheduling.  A write under ``async with <lock>:`` (or after a
    ``yield lock.acquire()``) counts as serialized.  The same pass also
    flags the inverse discipline failure: a *synchronous* lock held
    across an ``await``, which parks every other task behind the lock
    while the holder is suspended.
    """

    code = "ASYNC103"
    description = ("attribute written by two or more coroutines with "
                   "no lock serializing the writes, or a synchronous "
                   "lock held across an await")

    def check_program(self, program: Program,
                      config: LintConfig) -> _t.Iterator[Finding]:
        groups: dict[tuple[str, str],
                     list[tuple[str, WriteRec]]] = {}
        for name in sorted(program.functions):
            function = program.functions[name]
            if function.is_coroutine:
                for write in function.writes:
                    if write.scope != "self" or write.after_acquire:
                        continue
                    owner = name.rpartition(".")[0]
                    groups.setdefault((owner, write.attr),
                                      []).append((name, write))
            for rec in function.lock_awaits:
                yield Finding(
                    path=function.path, line=rec.line, col=rec.col,
                    code=self.code,
                    message=(f"synchronous lock '{rec.detail}' is held "
                             f"across an await in {name}; every other "
                             f"task parks behind it while this "
                             f"coroutine is suspended — use 'async "
                             f"with asyncio.Lock()' instead"))
        for (owner, attr), writers in sorted(groups.items()):
            names = sorted({fn for fn, _w in writers})
            if len(names) < 2:
                continue
            ordered = sorted(
                writers,
                key=lambda item: (item[0], item[1].line, item[1].col))
            anchor_fn, anchor = ordered[0]
            yield Finding(
                path=program.functions[anchor_fn].path,
                line=anchor.line, col=anchor.col, code=self.code,
                message=(f"self.{attr} is written by {len(names)} "
                         f"coroutines ({', '.join(names)}) with no "
                         f"lock; interleaving at await points can "
                         f"reorder the writes — serialize them with "
                         f"'async with asyncio.Lock()' or funnel them "
                         f"through a single owner"),
                trace=tuple(
                    TraceStep(program.functions[fn].path, write.line,
                              f"coroutine {fn} writes self.{attr}")
                    for fn, write in ordered))


@register_program
class EngineSeamMixing(ProgramChecker):
    """ENG101: a value crosses the sim/wall time-domain seam.

    The lattice has exactly two points — ``sim`` (values derived from
    ``sim.now`` / ``engine.now``, i.e. virtual event time) and ``wall``
    (host-clock durations consumed by ``asyncio.sleep`` and
    ``loop.call_later``/``call_at``).  A sim-domain value used as a
    wall-time delay sleeps for a nonsense duration (simulated
    milliseconds read as host seconds); the reverse direction is
    DET101's clock branch.  The only functions allowed to join the
    domains are the blessed wall-clock engine modules
    (``engine-wallclock-allow``) — bridging them *is* their job.
    """

    code = "ENG101"
    description = ("sim-domain time value (sim.now / engine.now) "
                   "flows into a wall-time sink (asyncio.sleep, "
                   "loop.call_later/call_at) outside the blessed "
                   "wall-clock engine")

    def check_program(self, program: Program,
                      config: LintConfig) -> _t.Iterator[Finding]:
        for hit in taint_result(program).hits:
            kind, path, line, col, detail = hit.token
            if kind != "simtime" or hit.sink.kind != "wall":
                continue
            if config.allows_engine_wallclock(path):
                continue
            sink_path = program.functions[hit.function].path
            if config.allows_engine_wallclock(sink_path):
                continue
            yield Finding(
                path=path, line=line, col=col, code=self.code,
                message=(f"sim-domain time value ({detail}) reaches "
                         f"{hit.sink.detail} at "
                         f"{_sink_site(program, hit)}; the time-domain "
                         f"lattice only joins sim and wall inside the "
                         f"blessed wall-clock engine "
                         f"(engine-wallclock-allow) — convert through "
                         f"the scheduler seam instead"),
                trace=hit.trace)


def async_stats(program: Program) -> dict[str, int]:
    """The ``--stats`` "async" section: raw coroutine-fact counts."""
    coroutines = blocking = drops = locks = simtime = wall = 0
    for name in sorted(program.functions):
        function = program.functions[name]
        if function.is_coroutine:
            coroutines += 1
        blocking += len(function.blocking_calls)
        drops += len(function.task_drops)
        locks += len(function.lock_awaits)
        simtime += sum(1 for rec in function.sources
                       if rec.kind == "simtime")
        wall += sum(1 for rec in function.sinks if rec.kind == "wall")
    return {
        "coroutines": coroutines,
        "blocking_sites": blocking,
        "dropped_tasks": drops,
        "sync_locks_across_await": locks,
        "simtime_sources": simtime,
        "wall_sinks": wall,
    }
