"""``repro.lint.program`` — whole-program analysis beneath the linter.

The per-file checkers (DET001–DET004, SIM001–SIM003, CACHE001) can only
see one module at a time; this package builds a project-wide view and
runs inter-procedural passes on top of it:

* a **symbol table** and **call graph** across every scanned module,
  including ``module:function`` runner strings (the sweep engine's
  late-bound cell runners) and re-exported names;
* **determinism taint** (DET101/DET102): values born from unseeded
  RNGs, wall clocks, OS entropy, or raw dict/set iteration order are
  tracked through assignments, returns, and call edges until they reach
  a sim-visible sink — event scheduling, PACM utility, telemetry
  samples — and reported with the full source→sink trace;
* a **sim-race detector** (SIM101): attributes written by two or more
  distinct process generators with no intervening resource acquisition
  between them, reported with both write sites.

The pipeline is: :mod:`extract` turns one parsed module into a
serializable :class:`~repro.lint.program.model.ModuleSummary`
(optionally served from the incremental cache, :mod:`cache`);
:mod:`build` links summaries into a :class:`~repro.lint.program.model.
Program`; :mod:`passes` registers the program checkers the engine runs.

Everything here is deterministic by construction — sorted iteration
everywhere, no wall clocks, no hashing beyond content digests — so two
runs over the same tree produce byte-identical findings, cached or not.
"""

from __future__ import annotations

from repro.lint.program.build import build_program
from repro.lint.program.model import (FunctionSummary, ModuleSummary,
                                      Program)

__all__ = [
    "FunctionSummary",
    "ModuleSummary",
    "Program",
    "build_program",
]
