"""Serializable data model for the whole-program analysis.

Every per-file fact the inter-procedural passes consume lives in a
:class:`ModuleSummary` built from plain ints/strings/lists, so the
incremental cache can round-trip summaries through JSON with no loss —
a cache hit and a fresh extraction are *the same object graph*, which
is what makes cached and cold runs byte-identical.

Taint flows are encoded as ``(origin, destination)`` pairs over small
tagged tuples:

=============== ======================================================
``("source", i)``   value of the ``i``-th recorded nondeterminism source
``("param", i)``    value of the ``i``-th parameter
``("call", i)``     return value of the ``i``-th recorded call
``("global", i)``   value of the ``i``-th recorded module-global read
``("return",)``     the function's return value
``("sink", i)``     argument position of the ``i``-th recorded sink
``("arg", i, j)``   argument ``j`` of the ``i``-th recorded call
``("recv", i)``     receiver of the ``i``-th recorded (method) call
=============== ======================================================

The taint pass only interprets the origins/destinations it knows about
(sources, params, calls, returns, sinks, args); the ``global`` origin
and ``recv`` destination exist for the effects pass and are inert in
taint transfer.
"""

from __future__ import annotations

import dataclasses
import typing as _t

__all__ = ["SourceRec", "SinkRec", "CallRec", "WriteRec",
           "SpanStartRec", "GlobalRec", "EffectRec", "AllocRec",
           "LoadRec", "BlockRec", "TaskRec", "LockRec",
           "FunctionSummary", "ModuleSummary",
           "Program", "Origin", "Dest", "Flow", "MODULE_BODY"]

#: Pseudo-function name holding a module's top-level statements.
MODULE_BODY = "<module>"

Origin = _t.Tuple[str, int]
Dest = _t.Tuple[_t.Union[str, int], ...]
Flow = _t.Tuple[Origin, Dest]


@dataclasses.dataclass(frozen=True, order=True)
class SourceRec:
    """One nondeterminism source occurrence inside a function."""

    #: ``"rng"`` | ``"clock"`` | ``"entropy"`` | ``"order"``.
    kind: str
    line: int
    col: int
    #: Human-readable description, e.g. ``"random.Random() without a seed"``.
    detail: str

    def to_json(self) -> list[object]:
        return [self.kind, self.line, self.col, self.detail]

    @staticmethod
    def from_json(data: _t.Sequence[object]) -> "SourceRec":
        return SourceRec(str(data[0]), int(_t.cast(int, data[1])),
                         int(_t.cast(int, data[2])), str(data[3]))


@dataclasses.dataclass(frozen=True, order=True)
class SinkRec:
    """One sim-visible (or ordering-sensitive) sink occurrence."""

    #: ``"sim"`` | ``"telemetry"`` | ``"pacm"`` | ``"order"``.
    kind: str
    line: int
    col: int
    detail: str

    def to_json(self) -> list[object]:
        return [self.kind, self.line, self.col, self.detail]

    @staticmethod
    def from_json(data: _t.Sequence[object]) -> "SinkRec":
        return SinkRec(str(data[0]), int(_t.cast(int, data[1])),
                       int(_t.cast(int, data[2])), str(data[3]))


@dataclasses.dataclass(frozen=True, order=True)
class CallRec:
    """One call site whose callee could (maybe) be resolved.

    ``ref`` is the canonical dotted path as seen from the calling module
    (``"repro.sim.randomness.RandomStreams"``), or ``""`` when the
    callee is not a resolvable name.  The build step maps refs onto
    project functions; unresolved refs simply contribute no edge.
    """

    ref: str
    line: int
    col: int
    #: Display name for traces, e.g. ``"jitter"``.
    name: str

    def to_json(self) -> list[object]:
        return [self.ref, self.line, self.col, self.name]

    @staticmethod
    def from_json(data: _t.Sequence[object]) -> "CallRec":
        return CallRec(str(data[0]), int(_t.cast(int, data[1])),
                       int(_t.cast(int, data[2])), str(data[3]))


@dataclasses.dataclass(frozen=True, order=True)
class WriteRec:
    """One attribute write inside a function body.

    ``scope`` is ``"self"`` for ``self.attr = ...`` writes (the only
    scope the race detector currently correlates across functions).
    ``after_acquire`` is True when a ``yield <resource>.request()`` /
    ``yield <lock>.acquire()`` precedes the write in statement order —
    the write is then considered serialized by that resource.
    """

    scope: str
    attr: str
    line: int
    col: int
    after_acquire: bool

    def to_json(self) -> list[object]:
        return [self.scope, self.attr, self.line, self.col,
                self.after_acquire]

    @staticmethod
    def from_json(data: _t.Sequence[object]) -> "WriteRec":
        return WriteRec(str(data[0]), str(data[1]),
                        int(_t.cast(int, data[2])),
                        int(_t.cast(int, data[3])), bool(data[4]))


@dataclasses.dataclass(frozen=True, order=True)
class SpanStartRec:
    """One ``<receiver>.span(...)`` context-manager-API call site.

    ``receiver`` is the last identifier of the receiver chain
    (``self.telemetry.span(...)`` → ``"telemetry"``); the TEL002 pass
    decides whether it is telemetry-like via the configurable
    ``span-receiver-hints``, so summaries stay config-independent and
    cacheable.  ``usage`` records how the produced scope is consumed
    locally: ``"with"`` (entered), ``"returned"`` (responsibility hands
    to the caller — a factory), or ``"leaked"`` (neither).
    ``loop_line`` is the innermost enclosing loop statement's line, or
    0 when the start is not inside a loop (TEL003).
    """

    receiver: str
    line: int
    col: int
    usage: str
    loop_line: int = 0

    def to_json(self) -> list[object]:
        return [self.receiver, self.line, self.col, self.usage,
                self.loop_line]

    @staticmethod
    def from_json(data: _t.Sequence[object]) -> "SpanStartRec":
        return SpanStartRec(str(data[0]), int(_t.cast(int, data[1])),
                            int(_t.cast(int, data[2])), str(data[3]),
                            int(_t.cast(int, data[4])))


@dataclasses.dataclass(frozen=True, order=True)
class GlobalRec:
    """One module-global read or write site inside a function.

    ``name`` is the canonical ``module.global`` spelling, so the
    effects pass can match a read in one function against a write in
    another without re-deriving module context.
    """

    name: str
    line: int
    col: int

    def to_json(self) -> list[object]:
        return [self.name, self.line, self.col]

    @staticmethod
    def from_json(data: _t.Sequence[object]) -> "GlobalRec":
        return GlobalRec(str(data[0]), int(_t.cast(int, data[1])),
                         int(_t.cast(int, data[2])))


@dataclasses.dataclass(frozen=True, order=True)
class EffectRec:
    """One locally classified side effect the call graph cannot carry.

    ``kind`` is ``"io"`` (print/open/... builtins), ``"env-read"``
    (``os.environ`` access), or ``"unknown-call"`` (a call through a
    local variable or parameter whose target is statically unknowable).
    """

    kind: str
    line: int
    col: int
    detail: str

    def to_json(self) -> list[object]:
        return [self.kind, self.line, self.col, self.detail]

    @staticmethod
    def from_json(data: _t.Sequence[object]) -> "EffectRec":
        return EffectRec(str(data[0]), int(_t.cast(int, data[1])),
                         int(_t.cast(int, data[2])), str(data[3]))


@dataclasses.dataclass(frozen=True, order=True)
class AllocRec:
    """One per-iteration closure construction inside a loop (PERF101)."""

    #: ``"lambda"`` or ``"def <name>"``.
    desc: str
    line: int
    col: int

    def to_json(self) -> list[object]:
        return [self.desc, self.line, self.col]

    @staticmethod
    def from_json(data: _t.Sequence[object]) -> "AllocRec":
        return AllocRec(str(data[0]), int(_t.cast(int, data[1])),
                        int(_t.cast(int, data[2])))


@dataclasses.dataclass(frozen=True, order=True)
class LoadRec:
    """One attribute-chain load inside a loop body (PERF102 input).

    ``chain`` is the dotted spelling (``"self._sim.timeout"``) whose
    root identifier is *not* rebound anywhere in the loop, so hoisting
    the load to a pre-loop local is semantics-preserving.
    ``loop_line`` keys the innermost enclosing loop statement;
    ``in_test`` marks loads inside a ``while`` test expression.
    """

    chain: str
    loop_line: int
    line: int
    col: int
    in_test: bool

    def to_json(self) -> list[object]:
        return [self.chain, self.loop_line, self.line, self.col,
                self.in_test]

    @staticmethod
    def from_json(data: _t.Sequence[object]) -> "LoadRec":
        return LoadRec(str(data[0]), int(_t.cast(int, data[1])),
                       int(_t.cast(int, data[2])),
                       int(_t.cast(int, data[3])), bool(data[4]))


@dataclasses.dataclass(frozen=True, order=True)
class BlockRec:
    """One loop-blocking call site (ASYNC101 input).

    ``kind`` classifies the blocking family: ``"sleep"``
    (``time.sleep``), ``"socket"``, ``"subprocess"``, ``"file-io"``
    (builtin ``open``/``input``), or ``"http"`` (requests/urllib).
    Whether the site is actually a defect depends on reachability from
    a coroutine, which only the whole-program pass can decide.
    """

    kind: str
    line: int
    col: int
    detail: str

    def to_json(self) -> list[object]:
        return [self.kind, self.line, self.col, self.detail]

    @staticmethod
    def from_json(data: _t.Sequence[object]) -> "BlockRec":
        return BlockRec(str(data[0]), int(_t.cast(int, data[1])),
                        int(_t.cast(int, data[2])), str(data[3]))


@dataclasses.dataclass(frozen=True, order=True)
class TaskRec:
    """One task-spawn whose handle was dropped (ASYNC102 input).

    Records an ``asyncio.create_task(...)`` / ``ensure_future(...)``
    call standing alone as an expression statement — the loop holds
    only weak task references, so the spawned task is eligible for GC
    mid-flight.  ``end_line``/``end_col`` delimit the statement so the
    autofix can append the strong-reference anchoring; ``indent`` is
    the statement's column offset (the indentation to reuse).
    """

    api: str
    line: int
    col: int
    end_line: int
    end_col: int
    indent: int

    def to_json(self) -> list[object]:
        return [self.api, self.line, self.col, self.end_line,
                self.end_col, self.indent]

    @staticmethod
    def from_json(data: _t.Sequence[object]) -> "TaskRec":
        return TaskRec(str(data[0]), int(_t.cast(int, data[1])),
                       int(_t.cast(int, data[2])),
                       int(_t.cast(int, data[3])),
                       int(_t.cast(int, data[4])),
                       int(_t.cast(int, data[5])))


@dataclasses.dataclass(frozen=True, order=True)
class LockRec:
    """One *synchronous* lock held across an ``await`` (ASYNC103 input).

    A plain ``with <lock>:`` whose body awaits parks the whole event
    loop behind the lock; only ``async with asyncio.Lock()`` yields
    while blocked.
    """

    line: int
    col: int
    detail: str

    def to_json(self) -> list[object]:
        return [self.line, self.col, self.detail]

    @staticmethod
    def from_json(data: _t.Sequence[object]) -> "LockRec":
        return LockRec(int(_t.cast(int, data[0])),
                       int(_t.cast(int, data[1])), str(data[2]))


@dataclasses.dataclass
class FunctionSummary:
    """Everything the global passes need to know about one function."""

    #: Fully qualified name, ``module.Class.func`` or ``module.func``;
    #: the module body is ``module.<module>``.
    name: str
    path: str
    line: int
    params: tuple[str, ...] = ()
    is_generator: bool = False
    yields_event: bool = False
    has_sim_handle: bool = False
    #: Function contains a ``yield x.request()`` / ``yield x.acquire()``.
    acquires: bool = False
    sources: tuple[SourceRec, ...] = ()
    sinks: tuple[SinkRec, ...] = ()
    calls: tuple[CallRec, ...] = ()
    flows: tuple[Flow, ...] = ()
    writes: tuple[WriteRec, ...] = ()
    #: Dotted refs of generator functions this function registers as
    #: simulation processes (``sim.process(fn(...))``, runner strings).
    process_refs: tuple[tuple[str, int], ...] = ()
    #: ``.span(...)`` context-manager starts seen in this body (TEL002).
    span_starts: tuple[SpanStartRec, ...] = ()
    #: Indices into ``calls`` whose results were entered via ``with``.
    entered_calls: tuple[int, ...] = ()
    #: Module-global reads, indexed by ``("global", i)`` origins.
    global_reads: tuple[GlobalRec, ...] = ()
    #: Module-global write/mutation sites (canonical ``module.name``).
    global_writes: tuple[GlobalRec, ...] = ()
    #: ``(param index, line)`` pairs: this body mutates that parameter.
    param_mutations: tuple[tuple[int, int], ...] = ()
    #: Locally classified effects the call graph cannot represent.
    effects: tuple[EffectRec, ...] = ()
    #: Per-iteration closure constructions inside loops (PERF101).
    loop_allocs: tuple[AllocRec, ...] = ()
    #: Loop-invariant-rooted attribute loads inside loops (PERF102).
    loop_loads: tuple[LoadRec, ...] = ()
    #: ``async def`` (includes async generators).
    is_coroutine: bool = False
    #: Indices into ``calls`` that sit directly under an ``await``.
    awaited_calls: tuple[int, ...] = ()
    #: Indices into ``calls`` whose result is a whole discarded
    #: expression statement (``foo()`` on a line of its own).
    discarded_calls: tuple[int, ...] = ()
    #: Loop-blocking call sites (ASYNC101).
    blocking_calls: tuple[BlockRec, ...] = ()
    #: Dropped ``create_task``/``ensure_future`` handles (ASYNC102).
    task_drops: tuple[TaskRec, ...] = ()
    #: Sync locks held across an ``await`` (ASYNC103).
    lock_awaits: tuple[LockRec, ...] = ()

    def to_json(self) -> dict[str, object]:
        return {
            "name": self.name,
            "path": self.path,
            "line": self.line,
            "params": list(self.params),
            "is_generator": self.is_generator,
            "yields_event": self.yields_event,
            "has_sim_handle": self.has_sim_handle,
            "acquires": self.acquires,
            "sources": [rec.to_json() for rec in self.sources],
            "sinks": [rec.to_json() for rec in self.sinks],
            "calls": [rec.to_json() for rec in self.calls],
            "flows": [[list(origin), list(dest)]
                      for origin, dest in self.flows],
            "writes": [rec.to_json() for rec in self.writes],
            "process_refs": [list(ref) for ref in self.process_refs],
            "span_starts": [rec.to_json() for rec in self.span_starts],
            "entered_calls": list(self.entered_calls),
            "global_reads": [rec.to_json()
                             for rec in self.global_reads],
            "global_writes": [rec.to_json()
                              for rec in self.global_writes],
            "param_mutations": [list(pair)
                                for pair in self.param_mutations],
            "effects": [rec.to_json() for rec in self.effects],
            "loop_allocs": [rec.to_json() for rec in self.loop_allocs],
            "loop_loads": [rec.to_json() for rec in self.loop_loads],
            "is_coroutine": self.is_coroutine,
            "awaited_calls": list(self.awaited_calls),
            "discarded_calls": list(self.discarded_calls),
            "blocking_calls": [rec.to_json()
                               for rec in self.blocking_calls],
            "task_drops": [rec.to_json() for rec in self.task_drops],
            "lock_awaits": [rec.to_json() for rec in self.lock_awaits],
        }

    @staticmethod
    def from_json(data: _t.Mapping[str, _t.Any]) -> "FunctionSummary":
        return FunctionSummary(
            name=str(data["name"]),
            path=str(data["path"]),
            line=int(data["line"]),
            params=tuple(str(p) for p in data["params"]),
            is_generator=bool(data["is_generator"]),
            yields_event=bool(data["yields_event"]),
            has_sim_handle=bool(data["has_sim_handle"]),
            acquires=bool(data["acquires"]),
            sources=tuple(SourceRec.from_json(rec)
                          for rec in data["sources"]),
            sinks=tuple(SinkRec.from_json(rec) for rec in data["sinks"]),
            calls=tuple(CallRec.from_json(rec) for rec in data["calls"]),
            flows=tuple(
                ((str(origin[0]), int(origin[1])),
                 tuple(item if isinstance(item, int) else str(item)
                       for item in dest))
                for origin, dest in data["flows"]),
            writes=tuple(WriteRec.from_json(rec)
                         for rec in data["writes"]),
            process_refs=tuple((str(ref[0]), int(ref[1]))
                               for ref in data["process_refs"]),
            span_starts=tuple(SpanStartRec.from_json(rec)
                              for rec in data["span_starts"]),
            entered_calls=tuple(int(index)
                                for index in data["entered_calls"]),
            global_reads=tuple(GlobalRec.from_json(rec)
                               for rec in data["global_reads"]),
            global_writes=tuple(GlobalRec.from_json(rec)
                                for rec in data["global_writes"]),
            param_mutations=tuple(
                (int(_t.cast(int, pair[0])), int(_t.cast(int, pair[1])))
                for pair in data["param_mutations"]),
            effects=tuple(EffectRec.from_json(rec)
                          for rec in data["effects"]),
            loop_allocs=tuple(AllocRec.from_json(rec)
                              for rec in data["loop_allocs"]),
            loop_loads=tuple(LoadRec.from_json(rec)
                             for rec in data["loop_loads"]),
            is_coroutine=bool(data["is_coroutine"]),
            awaited_calls=tuple(int(index)
                                for index in data["awaited_calls"]),
            discarded_calls=tuple(int(index)
                                  for index in data["discarded_calls"]),
            blocking_calls=tuple(BlockRec.from_json(rec)
                                 for rec in data["blocking_calls"]),
            task_drops=tuple(TaskRec.from_json(rec)
                             for rec in data["task_drops"]),
            lock_awaits=tuple(LockRec.from_json(rec)
                              for rec in data["lock_awaits"]),
        )


@dataclasses.dataclass
class ModuleSummary:
    """Per-file extraction result; the unit of incremental caching."""

    #: Repo-relative POSIX path.
    path: str
    #: Dotted module name derived from the path (``repro.sim.kernel``).
    module: str
    #: SHA-256 of the file contents (the cache key).
    digest: str
    #: Module-level name → canonical dotted path (imports + local defs);
    #: this is what resolves re-exports across modules.
    exports: dict[str, str] = dataclasses.field(default_factory=dict)
    functions: list[FunctionSummary] = dataclasses.field(
        default_factory=list)
    #: Fully qualified names of top-level classes defined here; the
    #: effects pass treats a call to one as a (pure) allocation even
    #: when the class has no explicit ``__init__`` (dataclasses).
    classes: tuple[str, ...] = ()
    #: First line (1-based) where a module-level statement may be
    #: inserted: after the docstring and any ``from __future__``
    #: imports.  The ASYNC102 autofix anchors its module-level
    #: strong-reference set here.
    head_line: int = 1

    def to_json(self) -> dict[str, object]:
        return {
            "path": self.path,
            "module": self.module,
            "digest": self.digest,
            "exports": {name: self.exports[name]
                        for name in sorted(self.exports)},
            "functions": [fn.to_json() for fn in self.functions],
            "classes": list(self.classes),
            "head_line": self.head_line,
        }

    @staticmethod
    def from_json(data: _t.Mapping[str, _t.Any]) -> "ModuleSummary":
        return ModuleSummary(
            path=str(data["path"]),
            module=str(data["module"]),
            digest=str(data["digest"]),
            exports={str(key): str(value)
                     for key, value in data["exports"].items()},
            functions=[FunctionSummary.from_json(fn)
                       for fn in data["functions"]],
            classes=tuple(str(name) for name in data["classes"]),
            head_line=int(data["head_line"]),
        )


class Program:
    """The linked whole-program view handed to program checkers."""

    def __init__(self, modules: _t.Sequence[ModuleSummary]) -> None:
        #: Module summaries sorted by path (deterministic iteration).
        self.modules: list[ModuleSummary] = sorted(
            modules, key=lambda m: m.path)
        #: Qualified name → function summary.
        self.functions: dict[str, FunctionSummary] = {}
        #: Canonical ref → qualified function name (after re-exports).
        self._ref_targets: dict[str, str] = {}
        #: Caller qualname → sorted list of (call index, callee qualname).
        self.call_edges: dict[str, list[tuple[int, str]]] = {}
        #: Callee qualname → sorted list of (caller qualname, call index).
        self.callers: dict[str, list[tuple[str, int]]] = {}
        #: Fully qualified names of every top-level project class.
        self.classes: set[str] = set()
        #: Repo-relative path → content digest of that module.
        self.digests: dict[str, str] = {}
        #: Scratch space for passes that share expensive results (the
        #: taint fixpoint runs once per program, not once per checker).
        self.analysis_cache: dict[str, _t.Any] = {}
        self._link()

    # ------------------------------------------------------------------
    # Linking
    # ------------------------------------------------------------------
    def _link(self) -> None:
        alias: dict[str, str] = {}
        for module in self.modules:
            self.digests[module.path] = module.digest
            self.classes.update(module.classes)
            for function in module.functions:
                self.functions[function.name] = function
            for name in sorted(module.exports):
                alias[f"{module.module}.{name}"] = module.exports[name]
        # Short-circuit alias chains (bounded: chains cannot be longer
        # than the number of aliases).
        for key in sorted(alias):
            target = alias[key]
            hops = 0
            while target in alias and hops <= len(alias):
                target = alias[target]
                hops += 1
            alias[key] = target
        self._alias = alias
        for module in self.modules:
            for function in module.functions:
                edges: list[tuple[int, str]] = []
                for index, call in enumerate(function.calls):
                    callee = self.resolve_ref(call.ref)
                    if callee is not None:
                        edges.append((index, callee))
                if edges:
                    self.call_edges[function.name] = edges
                    for index, callee in edges:
                        self.callers.setdefault(callee, []).append(
                            (function.name, index))
        for callee in self.callers:
            self.callers[callee].sort()

    def canonical_ref(self, ref: str) -> str:
        """Follow re-export aliases without requiring a function target."""
        seen = 0
        while ref in self._alias and seen <= len(self._alias):
            ref = self._alias[ref]
            seen += 1
        return ref

    def resolve_ref(self, ref: str) -> str | None:
        """Map a canonical dotted ref onto a project function name."""
        if not ref:
            return None
        seen = 0
        while ref in self._alias and seen <= len(self._alias):
            ref = self._alias[ref]
            seen += 1
        if ref in self.functions:
            return ref
        # A class ref stands for its constructor.
        if f"{ref}.__init__" in self.functions:
            return f"{ref}.__init__"
        return None

    # ------------------------------------------------------------------
    # Introspection (used by --stats and the tests)
    # ------------------------------------------------------------------
    def function_count(self) -> int:
        return len(self.functions)

    def edge_count(self) -> int:
        return sum(len(edges) for edges in self.call_edges.values())

    def process_generators(self) -> list[str]:
        """Qualified names of functions that are simulation processes.

        A function qualifies when it is a generator that yields kernel
        events or holds a simulator handle, or when any function
        registers it via ``sim.process(...)`` / a runner string.
        """
        registered: set[str] = set()
        for name in sorted(self.functions):
            for ref, _line in self.functions[name].process_refs:
                target = self.resolve_ref(ref)
                if target is not None:
                    registered.add(target)
        names: list[str] = []
        for name in sorted(self.functions):
            function = self.functions[name]
            if not function.is_generator:
                continue
            if function.yields_event or function.has_sim_handle \
                    or name in registered:
                names.append(name)
        return names
