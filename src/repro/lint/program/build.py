"""Assemble a :class:`~repro.lint.program.model.Program` from files.

``build_program`` is the bridge between the engine's file discovery and
the inter-procedural passes: hash each file, serve its summary from the
incremental cache when the digest matches, extract otherwise, then link
everything into one :class:`Program`.  Files that fail to parse are
skipped here — the per-file engine already reports them as LINT999, and
a broken file cannot contribute sound summaries anyway.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import pathlib
import typing as _t

from repro.lint.program.cache import SummaryCache
from repro.lint.program.extract import extract_module
from repro.lint.program.model import ModuleSummary, Program

__all__ = ["BuildStats", "build_program", "file_digest"]


@dataclasses.dataclass
class BuildStats:
    """Accounting for one build, surfaced by ``repro.lint --stats``."""

    files: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    parse_failures: int = 0

    def to_json(self) -> dict[str, int]:
        return {
            "files": self.files,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "parse_failures": self.parse_failures,
        }


def file_digest(source: str) -> str:
    """Content digest used as the incremental-cache key."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def build_program(files: _t.Sequence[tuple[str, pathlib.Path]],
                  cache: SummaryCache | None = None,
                  ) -> tuple[Program, BuildStats]:
    """Build the linked program over ``(relpath, path)`` pairs.

    ``cache`` — when given — serves summaries for unchanged files and is
    updated in place with freshly extracted ones (the caller decides
    whether to persist it).  Returns the program plus build accounting.
    """
    stats = BuildStats()
    summaries: list[ModuleSummary] = []
    for relpath, path in sorted(files):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError:
            continue
        stats.files += 1
        digest = file_digest(source)
        summary: ModuleSummary | None = None
        if cache is not None:
            summary = cache.lookup(relpath, digest)
            if summary is not None:
                stats.cache_hits += 1
            else:
                stats.cache_misses += 1
        if summary is None:
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError:
                stats.parse_failures += 1
                continue
            summary = extract_module(relpath, tree, digest)
            if cache is not None:
                cache.store(summary)
        summaries.append(summary)
    if cache is not None:
        cache.prune(summary.path for summary in summaries)
    return Program(summaries), stats
