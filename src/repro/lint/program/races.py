"""SIM101: simulated-state races between process generators.

Two simulation processes interleave at every ``yield``; if both write
the same ``self.attr`` with no resource acquisition serializing them,
the attribute's final value depends on scheduler interleaving — which
the kernel keeps deterministic only as long as nobody perturbs event
insertion order.  Such shared writes are exactly the bugs that surface
as "the numbers changed when I reordered two arrivals".

A write is considered serialized when a ``<resource>.request()`` /
``<lock>.acquire()`` precedes it in the function (the extractor's
``after_acquire`` bit).  Reads are not tracked: a racy read pattern
always involves a companion write, and anchoring on writes keeps the
rule's false-positive surface small.
"""

from __future__ import annotations

import dataclasses

from repro.lint.findings import TraceStep
from repro.lint.program.model import Program, WriteRec

__all__ = ["Race", "find_races"]


@dataclasses.dataclass(frozen=True, order=True)
class Race:
    """One attribute written by ≥2 distinct process generators."""

    #: Qualified class name, e.g. ``repro.apps.server.OriginServer``.
    klass: str
    attr: str
    #: Sorted ``(function qualname, write)`` pairs, one per writer.
    writers: tuple[tuple[str, WriteRec], ...]

    def anchor(self) -> tuple[str, WriteRec]:
        """The (function, write) the finding is anchored at."""
        return self.writers[0]

    def trace(self, program: Program) -> tuple[TraceStep, ...]:
        steps = []
        for function, write in self.writers:
            path = program.functions[function].path
            steps.append(TraceStep(
                path, write.line,
                f"self.{self.attr} written by process generator "
                f"{function}()"))
        return tuple(steps)


def find_races(program: Program) -> list[Race]:
    """All unserialized multi-writer attributes, sorted."""
    generators = set(program.process_generators())
    writers: dict[tuple[str, str], list[tuple[str, WriteRec]]] = {}
    for name in sorted(generators):
        function = program.functions[name]
        klass, _, _method = name.rpartition(".")
        if not klass:
            continue
        for write in function.writes:
            if write.scope != "self" or write.after_acquire:
                continue
            writers.setdefault((klass, write.attr), []).append(
                (name, write))
    races: list[Race] = []
    for (klass, attr) in sorted(writers):
        entries = sorted(writers[(klass, attr)])
        distinct = {function for function, _write in entries}
        if len(distinct) < 2:
            continue
        races.append(Race(klass=klass, attr=attr,
                          writers=tuple(entries)))
    return sorted(races)
