"""Inter-procedural purity/effect analysis (the EFF101/memo engine).

Every function is classified into a six-level effect lattice::

    pure < reads-config < mutates-argument < mutates-global
         < performs-IO < unknown

by a summary-based fixpoint over the same call graph and flow facts the
DET101 taint pass uses.  Per function the fixpoint tracks

* ``io`` / ``env`` / ``unknown`` — locally observed effects plus
  anything a transitive callee does,
* ``reads`` / ``writes`` — canonical ``module.global`` names read and
  written (a callee's global traffic becomes the caller's),
* ``mutated`` — parameter indices this function (or a callee, mapped
  back through the call-site argument and receiver flows) mutates,
* ``sources`` — nondeterminism source kinds reachable from the body.

Call sites transfer callee facts context-sensitively: a callee that
mutates its parameter 0 taints exactly the caller origins that flowed
into the receiver slot, nothing else.  Constructor calls onto project
classes without an explicit ``__init__`` (dataclasses) are treated as
pure allocations, joined with ``__init__``/``__post_init__`` effects
when those exist.

**Certification** (``pure-modulo-seed``) is what the sweep-cell memo
cache consumes: a function is certified when it performs no IO, calls
nothing unknown, mutates no argument or global, reads no global that
any project function mutates, reads no environment, and reaches no
``rng``/``clock``/``entropy`` source.  *Order* sources are tolerated —
matching the repo-wide stance that iteration order only matters when it
escapes to a sink, which is DET102's job.  Seeded
``random.Random(seed)`` construction is deliberately pure here: the
memo key includes the seed, so seed-parameterized runners certify.

Known leniencies (documented in docs/linting.md): calls on opaque local
objects are assumed effect-free unless the method name is a known
mutator, and IO through such objects (``path.write_text(...)``) is not
seen — certification is a contract for runner closures, which funnel IO
through builtins and ``json.dump`` where the analysis does see it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import typing as _t

from repro.lint.program.extract import (SORTED_REF, _EXTRA_MUTATORS,
                                        _MUTATORS)
from repro.lint.program.model import (FunctionSummary, Origin, Program)

__all__ = ["EFFECTS_VERSION", "LEVELS", "FunctionEffects",
           "EffectsResult", "effects_result", "effects_manifest"]

#: Bump when the manifest schema or analysis semantics change.
EFFECTS_VERSION = 1

#: The lattice, least to most effectful.
LEVELS = ("pure", "reads-config", "mutates-argument", "mutates-global",
          "performs-io", "unknown")

#: Source kinds that block pure-modulo-seed certification ("order" is
#: deliberately absent — see the module docstring).
_IMPURE_SOURCE_KINDS = ("rng", "clock", "entropy")

#: Stdlib/third-party prefixes whose calls are effect-free on their
#: arguments.  ``random.`` is safe here: *unseeded* constructions were
#: already classified as sources during extraction, so only seeded ones
#: surface as call refs.
_PURE_PREFIXES = (
    "math.", "itertools.", "functools.", "operator.", "collections.",
    "heapq.", "bisect.", "statistics.", "hashlib.", "json.", "re.",
    "copy.", "dataclasses.", "enum.", "typing.", "abc.", "string.",
    "textwrap.", "fractions.", "decimal.", "numpy.", "random.",
    "pathlib.", "posixpath.", "ntpath.", "os.path.",
)

#: Exact refs / prefixes with externally visible effects.
_ENV_REFS = ("os.environ", "os.getenv", "os.getenvb")
_IO_PREFIXES = (
    "os.", "sys.", "io.", "shutil.", "subprocess.", "socket.",
    "logging.", "tempfile.", "http.", "urllib.", "sqlite3.",
    "atexit.", "signal.", "threading.", "multiprocessing.",
    "asyncio.", "time.sleep", "builtins.open", "pickle.dump",
)

#: Sink details bridged back onto their callee (see ``_PACM_SINKS`` in
#: extract.py: these calls are recorded as sinks, not call edges).
_PACM_DETAIL_PREFIX = "PACM utility "


@dataclasses.dataclass(frozen=True)
class FunctionEffects:
    """Final classification of one function."""

    name: str
    path: str
    line: int
    #: One of :data:`LEVELS`.
    level: str
    #: Pure-modulo-seed: safe to memoize keyed on inputs + seed.
    certified: bool
    #: Why certification failed (empty iff ``certified``), sorted.
    blockers: tuple[str, ...]
    #: Source kinds reachable from this function (transitively).
    sources: tuple[str, ...]
    mutated_params: tuple[int, ...]
    global_reads: tuple[str, ...]
    global_writes: tuple[str, ...]
    #: Repo-relative paths of this function's transitive code closure.
    closure_paths: tuple[str, ...]
    #: SHA-256 over the sorted ``path:digest`` lines of the closure —
    #: the content key the memo cache folds into cell hashes.
    closure_digest: str


@dataclasses.dataclass
class EffectsResult:
    """Fixpoint output shared by EFF101 and the manifest emitter."""

    functions: dict[str, FunctionEffects]
    #: Every global some project function mutates.
    mutated_globals: frozenset[str]
    #: Number of full passes until the fixpoint stabilized.
    rounds: int

    def certified_count(self) -> int:
        return sum(1 for effect in self.functions.values()
                   if effect.certified)

    def level_counts(self) -> dict[str, int]:
        counts = {level: 0 for level in LEVELS}
        for effect in self.functions.values():
            counts[effect.level] += 1
        return counts


def effects_result(program: Program) -> EffectsResult:
    """The (memoized) effects fixpoint for ``program``."""
    cached = program.analysis_cache.get("effects")
    if isinstance(cached, EffectsResult):
        return cached
    result = _Fixpoint(program).run()
    program.analysis_cache["effects"] = result
    return result


def effects_manifest(program: Program) -> dict[str, object]:
    """The deterministic ``build/effects.json`` document."""
    result = effects_result(program)
    functions: dict[str, object] = {}
    for name in sorted(result.functions):
        effect = result.functions[name]
        functions[name] = {
            "path": effect.path,
            "line": effect.line,
            "level": effect.level,
            "certified": effect.certified,
            "blockers": list(effect.blockers),
            "sources": list(effect.sources),
            "mutated_params": list(effect.mutated_params),
            "global_reads": list(effect.global_reads),
            "global_writes": list(effect.global_writes),
            "closure_paths": list(effect.closure_paths),
            "closure_digest": effect.closure_digest,
        }
    return {
        "version": EFFECTS_VERSION,
        "rounds": result.rounds,
        "mutated_globals": sorted(result.mutated_globals),
        "functions": functions,
        "generated_from": {path: program.digests[path]
                           for path in sorted(program.digests)},
    }


@dataclasses.dataclass
class _State:
    """Mutable per-function fixpoint state."""

    io: bool = False
    env: bool = False
    unknown: bool = False
    reads: set[str] = dataclasses.field(default_factory=set)
    writes: set[str] = dataclasses.field(default_factory=set)
    mutated: set[int] = dataclasses.field(default_factory=set)
    sources: set[str] = dataclasses.field(default_factory=set)


class _Fixpoint:
    def __init__(self, program: Program) -> None:
        self.program = program
        self.states: dict[str, _State] = {}
        #: function → extra (call_index, callee) edges: dataclass
        #: constructors resolved through the class index.
        self.ctor_edges: dict[str, list[tuple[int, str]]] = {}
        #: function → callee names bridged from PACM sink records
        #: (flag/set joins only; PACM entry points mutate nothing).
        self.sink_bridges: dict[str, list[str]] = {}
        self.changed = False
        for name in sorted(program.functions):
            self._seed(program.functions[name])

    # -- initialisation ---------------------------------------------------
    def _seed(self, summary: FunctionSummary) -> None:
        state = _State()
        state.reads.update(rec.name for rec in summary.global_reads)
        state.writes.update(rec.name for rec in summary.global_writes)
        state.mutated.update(index for index, _line
                             in summary.param_mutations)
        state.sources.update(rec.kind for rec in summary.sources)
        for effect in summary.effects:
            if effect.kind == "io":
                state.io = True
            elif effect.kind == "env-read":
                state.env = True
            elif effect.kind == "unknown-call":
                state.unknown = True
        self.states[summary.name] = state
        self._classify_unlinked(summary, state)
        self._bridge_pacm_sinks(summary)

    def _classify_unlinked(self, summary: FunctionSummary,
                           state: _State) -> None:
        """Static effects of call refs the linker found no edge for."""
        linked = {index for index, _callee
                  in self.program.call_edges.get(summary.name, ())}
        ctor: list[tuple[int, str]] = []
        for index, call in enumerate(summary.calls):
            if index in linked or not call.ref \
                    or call.ref == SORTED_REF:
                continue
            canonical = self.program.canonical_ref(call.ref)
            if canonical in self.program.classes:
                # Constructor without a source __init__ (a dataclass):
                # pure allocation, plus generated-init hooks if present.
                for hook in ("__init__", "__post_init__"):
                    target = f"{canonical}.{hook}"
                    if target in self.program.functions:
                        ctor.append((index, target))
                continue
            owner, _, method = canonical.rpartition(".")
            if owner in self.program.classes:
                # Inherited/generated method of a project class: lenient
                # unless the name is a known mutator.
                if method in _MUTATORS or method in _EXTRA_MUTATORS:
                    for origin in self._recv_origins(summary, index):
                        self._apply_mutation(state, summary, origin)
                continue
            if canonical.startswith(_ENV_REFS):
                state.env = True
                continue
            if canonical.startswith(_PURE_PREFIXES):
                continue
            if canonical.startswith(_IO_PREFIXES):
                state.io = True
                continue
            # Unlinked project ref or unmodelled third-party module.
            state.unknown = True
        if ctor:
            self.ctor_edges[summary.name] = ctor

    def _bridge_pacm_sinks(self, summary: FunctionSummary) -> None:
        for sink in summary.sinks:
            if sink.kind != "pacm" \
                    or not sink.detail.startswith(_PACM_DETAIL_PREFIX):
                continue
            ref = sink.detail[len(_PACM_DETAIL_PREFIX):].rstrip("()")
            target = self.program.resolve_ref(ref)
            if target is not None:
                self.sink_bridges.setdefault(
                    summary.name, []).append(target)

    # -- call-site helpers ------------------------------------------------
    @staticmethod
    def _param_index(target: FunctionSummary,
                     selector: _t.Union[str, int]) -> int | None:
        bound = bool(target.params) and target.params[0] in ("self",
                                                             "cls")
        if isinstance(selector, int):
            index = selector + (1 if bound else 0)
            return index if 0 <= index < len(target.params) else None
        try:
            return target.params.index(selector)
        except ValueError:
            return None

    @staticmethod
    def _arg_flows(summary: FunctionSummary, call_index: int,
                   ) -> _t.Iterator[tuple[Origin, _t.Union[str, int]]]:
        for origin, dest in summary.flows:
            if len(dest) == 3 and dest[1] == call_index \
                    and dest[0] in ("arg", "kwarg"):
                yield origin, dest[2]

    @staticmethod
    def _recv_origins(summary: FunctionSummary,
                      call_index: int) -> list[Origin]:
        return sorted(origin for origin, dest in summary.flows
                      if len(dest) == 2 and dest[0] == "recv"
                      and dest[1] == call_index)

    def _apply_mutation(self, state: _State, summary: FunctionSummary,
                        origin: Origin) -> None:
        tag, index = origin
        if tag == "param":
            if index not in state.mutated:
                state.mutated.add(index)
                self.changed = True
        elif tag == "global" and 0 <= index < len(summary.global_reads):
            name = summary.global_reads[index].name
            if name not in state.writes:
                state.writes.add(name)
                self.changed = True

    # -- transfer ---------------------------------------------------------
    def _join_flags(self, state: _State, callee: _State) -> None:
        if callee.io and not state.io:
            state.io, self.changed = True, True
        if callee.env and not state.env:
            state.env, self.changed = True, True
        if callee.unknown and not state.unknown:
            state.unknown, self.changed = True, True
        for field, incoming in (("reads", callee.reads),
                                ("writes", callee.writes),
                                ("sources", callee.sources)):
            mine: set[str] = getattr(state, field)
            if not incoming <= mine:
                mine.update(incoming)
                self.changed = True

    def _evaluate(self, summary: FunctionSummary) -> None:
        state = self.states[summary.name]
        edges = [*self.program.call_edges.get(summary.name, ()),
                 *self.ctor_edges.get(summary.name, ())]
        for call_index, callee in edges:
            callee_state = self.states[callee]
            self._join_flags(state, callee_state)
            if not callee_state.mutated:
                continue
            target = self.program.functions[callee]
            bound = bool(target.params) \
                and target.params[0] in ("self", "cls")
            for position in sorted(callee_state.mutated):
                if bound and position == 0:
                    for origin in self._recv_origins(summary,
                                                     call_index):
                        self._apply_mutation(state, summary, origin)
                for origin, selector in self._arg_flows(summary,
                                                        call_index):
                    if self._param_index(target, selector) == position:
                        self._apply_mutation(state, summary, origin)
        for callee in self.sink_bridges.get(summary.name, ()):
            self._join_flags(state, self.states[callee])

    # -- finalisation -----------------------------------------------------
    def _level(self, state: _State,
               mutated_globals: frozenset[str]) -> str:
        if state.unknown:
            return "unknown"
        if state.io:
            return "performs-io"
        if state.writes or (state.reads & mutated_globals):
            return "mutates-global"
        if state.mutated:
            return "mutates-argument"
        if state.reads or state.env:
            return "reads-config"
        return "pure"

    def _blockers(self, state: _State,
                  mutated_globals: frozenset[str]) -> tuple[str, ...]:
        blockers: list[str] = []
        if state.unknown:
            blockers.append("unknown-call")
        if state.io:
            blockers.append("performs-io")
        if state.env:
            blockers.append("env-read")
        blockers.extend(f"mutates-global:{name}"
                        for name in sorted(state.writes))
        blockers.extend(f"mutates-argument:{index}"
                        for index in sorted(state.mutated))
        blockers.extend(f"reads-mutated-global:{name}"
                        for name in sorted(state.reads
                                           & mutated_globals))
        blockers.extend(f"source:{kind}"
                        for kind in _IMPURE_SOURCE_KINDS
                        if kind in state.sources)
        return tuple(sorted(blockers))

    def _closure(self, name: str,
                 edges: dict[str, list[str]]) -> tuple[str, ...]:
        seen = {name}
        queue = [name]
        while queue:
            current = queue.pop()
            for callee in edges.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    queue.append(callee)
        return tuple(sorted({self.program.functions[member].path
                             for member in seen}))

    def run(self) -> EffectsResult:
        names = sorted(self.program.functions)
        rounds = 0
        while True:
            rounds += 1
            self.changed = False
            for name in names:
                self._evaluate(self.program.functions[name])
            if not self.changed:
                break
            if rounds > len(names) + 64:  # pragma: no cover - safety
                break
        mutated_globals = frozenset(
            name for state in self.states.values()
            for name in state.writes)
        plain_edges: dict[str, list[str]] = {}
        for name in names:
            callees = [callee for _index, callee in
                       [*self.program.call_edges.get(name, ()),
                        *self.ctor_edges.get(name, ())]]
            callees.extend(self.sink_bridges.get(name, ()))
            if callees:
                plain_edges[name] = sorted(set(callees))
        functions: dict[str, FunctionEffects] = {}
        for name in names:
            summary = self.program.functions[name]
            state = self.states[name]
            closure_paths = self._closure(name, plain_edges)
            digest = hashlib.sha256("\n".join(
                f"{path}:{self.program.digests.get(path, '')}"
                for path in closure_paths).encode()).hexdigest()
            blockers = self._blockers(state, mutated_globals)
            functions[name] = FunctionEffects(
                name=name, path=summary.path, line=summary.line,
                level=self._level(state, mutated_globals),
                certified=not blockers, blockers=blockers,
                sources=tuple(sorted(state.sources)),
                mutated_params=tuple(sorted(state.mutated)),
                global_reads=tuple(sorted(state.reads)),
                global_writes=tuple(sorted(state.writes)),
                closure_paths=closure_paths,
                closure_digest=digest)
        return EffectsResult(functions=functions,
                             mutated_globals=mutated_globals,
                             rounds=rounds)
