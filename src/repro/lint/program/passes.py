"""The registered whole-program checkers: DET101, DET102, SIM101.

These consume the shared taint fixpoint (:mod:`repro.lint.program.taint`)
and the race analysis (:mod:`repro.lint.program.races`); the expensive
work runs once per :class:`Program` regardless of how many passes ask
for it.  Findings are anchored at the *source* (where the fix belongs)
and carry the full source→sink trace so a reader can follow the value
across files without re-deriving the call graph.
"""

from __future__ import annotations

import typing as _t

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.program.model import Program
from repro.lint.program.races import find_races
from repro.lint.program.taint import SinkHit, taint_result
from repro.lint.registry import ProgramChecker, register_program

__all__ = ["DeterminismTaint", "OrderTaint", "SimRace"]


def _sink_location(program: Program, hit: SinkHit) -> str:
    function = program.functions[hit.function]
    return f"{function.path}:{hit.sink.line}"


@register_program
class DeterminismTaint(ProgramChecker):
    """DET101: RNG / clock / entropy taint reaching a sim-visible sink.

    The per-file rules (DET001/DET002) flag the *construction* of a
    nondeterministic value; this pass follows the value itself — through
    assignments, returns, and call edges — and fires only when it
    actually lands in event scheduling, a PACM utility computation, or a
    telemetry sample.  The one sanctioned flow is host profiling:
    wall-clock values born in a ``wallclock-allow`` file may feed
    telemetry samples (that is what ``repro.perf`` / the profiling hook
    exist for), but never the simulation or PACM math.
    """

    code = "DET101"
    description = ("nondeterministic value (unseeded RNG, wall clock, "
                   "OS entropy) flows into a sim-visible sink "
                   "(event scheduling, PACM utility, telemetry)")

    _SOURCE_KINDS = frozenset({"rng", "clock", "entropy"})
    _SINK_KINDS = frozenset({"sim", "telemetry", "pacm"})

    def check_program(self, program: Program,
                      config: LintConfig) -> _t.Iterator[Finding]:
        for hit in taint_result(program).hits:
            kind, path, line, col, detail = hit.token
            if kind not in self._SOURCE_KINDS:
                continue
            if hit.sink.kind not in self._SINK_KINDS:
                continue
            if kind == "clock" and hit.sink.kind == "telemetry" \
                    and config.allows_wallclock(path):
                continue  # the blessed host-profiling path
            yield Finding(
                path=path, line=line, col=col, code=self.code,
                message=(f"nondeterministic value ({detail}) reaches "
                         f"{hit.sink.detail} at "
                         f"{_sink_location(program, hit)}; thread a "
                         f"seeded stream or sim.now-derived value "
                         f"instead"),
                trace=hit.trace)


@register_program
class OrderTaint(ProgramChecker):
    """DET102: iteration order escaping across a function boundary.

    DET003 catches ``min(d.keys())`` inside one function; it is blind
    the moment the unordered value is returned or passed along.  This
    pass follows order taint across call edges and fires when it
    reaches an ordering-sensitive sink (heap push, serialization,
    min/max, ``str.join``) or event scheduling in *another* function —
    same-function flows are left to DET003 so each defect has exactly
    one code.
    """

    code = "DET102"
    description = ("dict/set iteration order crosses a function "
                   "boundary and feeds an ordering-sensitive or "
                   "sim-visible sink without sorted()")

    _SINK_KINDS = frozenset({"order", "sim"})

    def check_program(self, program: Program,
                      config: LintConfig) -> _t.Iterator[Finding]:
        for hit in taint_result(program).hits:
            kind, path, line, col, detail = hit.token
            if kind != "order" or hit.sink.kind not in self._SINK_KINDS:
                continue
            if len(hit.trace) < 3:
                continue  # same-function flow: DET003 territory
            yield Finding(
                path=path, line=line, col=col, code=self.code,
                message=(f"iteration order of a {detail} escapes this "
                         f"function and reaches {hit.sink.detail} at "
                         f"{_sink_location(program, hit)}; wrap it in "
                         f"sorted() before it crosses the boundary"),
                trace=hit.trace)


@register_program
class SimRace(ProgramChecker):
    """SIM101: one attribute, several process generators, no lock.

    See :mod:`repro.lint.program.races` for the model.  The finding is
    anchored at the first write site and its trace lists every writer,
    so the report shows both halves of the race, not just one.
    """

    code = "SIM101"
    description = ("attribute written by two or more simulation "
                   "process generators with no resource acquisition "
                   "serializing the writes")

    def check_program(self, program: Program,
                      config: LintConfig) -> _t.Iterator[Finding]:
        for race in find_races(program):
            function, write = race.anchor()
            path = program.functions[function].path
            names = ", ".join(sorted({fn for fn, _w in race.writers}))
            yield Finding(
                path=path, line=write.line, col=write.col,
                code=self.code,
                message=(f"self.{race.attr} is written by "
                         f"{len({fn for fn, _w in race.writers})} "
                         f"process generators ({names}) with no "
                         f"resource acquisition; the final value "
                         f"depends on scheduler interleaving — guard "
                         f"the writes with a Resource or funnel them "
                         f"through one owner process"),
                trace=race.trace(program))
